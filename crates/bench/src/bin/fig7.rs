//! Regenerates the paper's Figure 7: histograms of the longest-path delays
//! of s27 and s208 from the Monte-Carlo and Gradient-Analysis methods
//! (under DL and VT variations, std 0.33 each).
//!
//! The GA histogram is the normal distribution implied by the GA
//! (mean, σ), sampled on equal-probability strata so the two histograms
//! have the same sample count.
//!
//! Flags: `--checkpoint <prefix>` / `--resume <prefix>` /
//! `--deadline <secs>` run the Monte-Carlo portion as a durable campaign
//! (one snapshot per circuit). Completed circuits print a deterministic
//! `mc …` line with the statistics as raw `f64` bit patterns.
//! `--shards <N>` routes the campaigns through the shard supervisor
//! (`mc` lines byte-identical to the unsharded run); with
//! `--shard-index <K> --checkpoint <prefix>` this process evaluates
//! only shard K and leaves its snapshot for a later `--resume` merge.
//!
//! Run with `cargo run --release -p linvar-bench --bin fig7`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::{bits_hex, BenchArgs, BenchError, BenchMeter};
use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_core::{CampaignVerdict, RecoveryPolicy};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar_stats::sampling::inverse_normal_cdf;
use linvar_stats::{resolve_threads, Histogram};
use std::time::Instant;

fn main() {
    if let Err(e) = run() {
        eprintln!("fig7: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    if args.quick {
        return Err(BenchError::Usage("fig7 has no --quick mode".into()));
    }
    let mut meter = BenchMeter::start("fig7");
    let run_start = Instant::now();
    let threads = resolve_threads(0);
    println!("==== Figure 7: MC vs GA delay histograms (DL, VT variations) ====");
    println!("(Monte-Carlo on {threads} worker thread(s); set LINVAR_THREADS to change)\n");
    let tech = tech_018();
    let wire = WireTech::m018();
    let sources = VariationSources::example3(0.33, 0.33);
    let mut truncated = 0usize;
    for circuit in ["s27", "s208"] {
        if args.deadline_exhausted(run_start) {
            truncated += 1;
            eprintln!("deadline: skipping {circuit} (no budget left)");
            continue;
        }
        let bench = benchmark(circuit).ok_or("unknown benchmark")?;
        let report = longest_path(&bench.netlist)?;
        let stages = decompose_to_primitives(&bench.netlist, &report)?;
        let spec = PathSpec {
            cells: stages.into_iter().map(|s| s.cell).collect(),
            linear_elements_between_stages: 10,
            input_slew: 60e-12,
        };
        let model = PathModel::build(&spec, &tech, &wire)?;
        let shard_cfg = args.shard_config(circuit)?;
        if let (Some(cfg), Some(k)) = (&shard_cfg, args.shard_index) {
            // Worker mode: evaluate only shard k, leave its snapshot as
            // the output (merged later by `--shards N --resume`).
            let worker = model.monte_carlo_shard_worker(
                &sources,
                100,
                7,
                threads,
                RecoveryPolicy::default(),
                cfg,
                k,
            )?;
            println!(
                "shard {k}/{}: {circuit} completed={} evaluated={} failures={}",
                cfg.n_shards, worker.completed, worker.evaluated, worker.failures
            );
            continue;
        }
        let t0 = Instant::now();
        // Sharded and unsharded drivers feed the same deterministic
        // `mc` line and histogram — byte-identical at any shard count.
        let (delays, summary, failures, evaluated) = match &shard_cfg {
            Some(cfg) => {
                let mc = model.monte_carlo_sharded(
                    &sources,
                    100,
                    7,
                    threads,
                    RecoveryPolicy::default(),
                    cfg,
                )?;
                (mc.delays, mc.summary, mc.failures, mc.evaluated)
            }
            None => {
                let config = args.campaign_config(circuit, run_start);
                let mc = model.monte_carlo_campaign(
                    &sources,
                    100,
                    7,
                    threads,
                    RecoveryPolicy::default(),
                    &config,
                )?;
                if let CampaignVerdict::Truncated { remaining } = mc.verdict {
                    truncated += 1;
                    eprintln!(
                        "deadline: {circuit} truncated with {remaining}/100 samples pending; \
                         resume with --resume to finish"
                    );
                    continue;
                }
                (mc.delays, mc.summary, mc.failures, mc.evaluated)
            }
        };
        println!(
            "mc {circuit}: n={} mean={} std={} failures={}",
            summary.n,
            bits_hex(summary.mean),
            bits_hex(summary.std),
            failures
        );
        if evaluated > 0 {
            eprintln!(
                "{circuit}: {:.1} samples/sec",
                evaluated as f64 / t0.elapsed().as_secs_f64()
            );
        } else {
            eprintln!("{circuit}: restored from snapshot");
        }
        let ga = model.gradient_analysis(&sources)?;
        // Stratified normal sample implied by the GA statistics.
        let n = delays.len();
        let ga_sample: Vec<f64> = (0..n)
            .map(|k| {
                let u = (k as f64 + 0.5) / n as f64;
                ga.nominal_delay + ga.std * inverse_normal_cdf(u)
            })
            .collect();
        let (h_mc, h_ga) = Histogram::pair(&delays, &ga_sample, 12)?;
        println!(
            "{circuit}: MC mean {:.2} ps std {:.2} ps | GA mean {:.2} ps std {:.2} ps",
            summary.mean * 1e12,
            summary.std * 1e12,
            ga.nominal_delay * 1e12,
            ga.std * 1e12
        );
        print!("{}", h_mc.render_pair(&h_ga, "MC", "GA", 1e12, "ps"));
        println!();
    }
    if truncated > 0 {
        println!(
            "note: {truncated} circuit(s) hit the deadline; rerun with --resume \
             to finish from the snapshots"
        );
    }
    meter.set("truncated_circuits", truncated as u64);
    eprintln!("{}", linvar_bench::workspace_note());
    meter.finish(&args)?;
    Ok(())
}
