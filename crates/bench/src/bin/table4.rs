//! Regenerates the paper's Table 4: framework speedup over the SPICE
//! baseline on ISCAS-89 critical paths, at 10 and 500 linear elements
//! between stages.
//!
//! Per circuit/configuration, the per-sample Monte-Carlo cost of each
//! engine is measured (the framework on several samples through the
//! deterministic parallel driver, the baseline on one — its per-sample
//! cost is deterministic) and the ratio reported. Framework throughput is
//! reported as samples/sec at the worker count selected by
//! `LINVAR_THREADS` (default: all available cores). Pass `--quick` to
//! skip the 500-element column of the two largest circuits.
//!
//! Run with `cargo run --release -p linvar-bench --bin table4`
//! (`LINVAR_THREADS=4 cargo run …` to pin the worker count).

use linvar_bench::render_table;
use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar_stats::resolve_threads;
use std::time::Instant;

fn path_cells(circuit: &str) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let bench = benchmark(circuit).ok_or_else(|| format!("unknown benchmark {circuit}"))?;
    let report = longest_path(&bench.netlist)?;
    let stages = decompose_to_primitives(&bench.netlist, &report)?;
    Ok(stages.into_iter().map(|s| s.cell).collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = resolve_threads(0);
    println!("==== Table 4: speedup of the framework vs the SPICE baseline ====");
    println!(
        "(framework Monte-Carlo on {threads} worker thread(s); set LINVAR_THREADS to change)\n"
    );
    let tech = tech_018();
    let wire = WireTech::m018();
    let sources = VariationSources::example3_table4();
    let circuits = ["s27", "s208", "s444", "s1423", "s9234"];
    let master_seed = 4;
    let mut rows = Vec::new();
    for circuit in circuits {
        let cells = path_cells(circuit)?;
        for &n_elem in &[10usize, 500] {
            if quick && n_elem == 500 && (circuit == "s1423" || circuit == "s9234") {
                continue;
            }
            let spec = PathSpec {
                cells: cells.clone(),
                linear_elements_between_stages: n_elem,
                input_slew: 60e-12,
            };
            let t_build = Instant::now();
            let model = PathModel::build(&spec, &tech, &wire)?;
            let build_s = t_build.elapsed().as_secs_f64();
            let n_teta = if n_elem == 500 { 3 } else { 5 };
            let t0 = Instant::now();
            let mc = model.monte_carlo_par(&sources, n_teta, master_seed, threads)?;
            let elapsed = t0.elapsed().as_secs_f64();
            if mc.failures > 0 {
                eprintln!(
                    "warning: {circuit}@{n_elem}: {}/{n_teta} samples failed (first: {})",
                    mc.failures,
                    mc.first_error.as_deref().unwrap_or("unknown"),
                );
            }
            let teta_ms = elapsed * 1e3 / n_teta as f64;
            let sps = n_teta as f64 / elapsed;
            let mut sample_rng = linvar_stats::rng_from_seed(master_seed);
            let samples = model.draw_samples(&sources, 1, &mut sample_rng);
            let t0 = Instant::now();
            model.evaluate_sample_spice(&samples[0])?;
            let spice_ms = t0.elapsed().as_secs_f64() * 1e3;
            rows.push(vec![
                circuit.to_string(),
                format!("{}", model.stage_count()),
                format!("{n_elem}"),
                format!("{teta_ms:.1}"),
                format!("{sps:.1}"),
                format!("{spice_ms:.1}"),
                format!("{:.2}", spice_ms / teta_ms),
                format!("{build_s:.2}"),
            ]);
            eprintln!("done: {circuit} @ {n_elem} elements");
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "stages",
                "lin. elements",
                "framework ms/sample",
                "samples/sec",
                "SPICE ms/sample",
                "speedup",
                "build s",
            ],
            &rows
        )
    );
    println!("(speedup = per-sample Monte-Carlo cost ratio; the framework's");
    println!(" one-time construction cost is amortized over the sample set)");
    Ok(())
}
