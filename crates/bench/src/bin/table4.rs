//! Regenerates the paper's Table 4: framework speedup over the SPICE
//! baseline on ISCAS-89 critical paths, at 10 and 500 linear elements
//! between stages.
//!
//! Per circuit/configuration, the per-sample Monte-Carlo cost of each
//! engine is measured (the framework on several samples through the
//! durable campaign driver, the baseline on one — its per-sample cost is
//! deterministic) and the ratio reported. Framework throughput is
//! reported as samples/sec at the worker count selected by
//! `LINVAR_THREADS` (default: all available cores).
//!
//! Flags: `--quick` skips the 500-element column of the two largest
//! circuits; `--checkpoint <prefix>` / `--resume <prefix>` /
//! `--deadline <secs>` run the Monte-Carlo portions as durable campaigns
//! (one snapshot per circuit/configuration under the prefix). Completed
//! configurations print a deterministic `mc <circuit>@<elements>: …`
//! line with the statistics as raw `f64` bit patterns — identical
//! between a clean run and any interrupted-and-resumed schedule.
//!
//! `--shards <N>` routes each campaign through the shard supervisor
//! (fault-tolerant, per-shard snapshots under `--checkpoint`); the `mc`
//! lines stay byte-identical to the unsharded run at any shard count.
//! `--shards <N> --shard-index <K> --checkpoint <prefix>` instead runs
//! only shard K of every campaign in this process, leaving its snapshot
//! as the output — a later `--shards N --resume <prefix>` run merges
//! the per-shard snapshots without re-evaluating any sample.
//!
//! `--engine gpc|sobol` switches to the engine-comparison mode: per
//! circuit at 10 linear elements, an MC reference runs next to the
//! requested engine and the agreement (plus, for gPC, the
//! solves-to-tolerance ratio) is recorded in `BENCH_table4.json`. The
//! gPC refinement runs as a durable campaign, so the campaign flags
//! apply to it; `--shards` does not combine with a spectral engine.
//!
//! Run with `cargo run --release -p linvar-bench --bin table4`
//! (`LINVAR_THREADS=4 cargo run …` to pin the worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::{
    bits_hex, quantile_at, render_table, BenchArgs, BenchError, BenchMeter, Engine,
};
use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_core::{CampaignVerdict, RecoveryPolicy};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar_metrics::Json;
use linvar_stats::{resolve_threads, SpectralConfig};
use std::time::Instant;

/// MC reference sample count for the engine-comparison modes.
const ENGINE_MC_REF_N: usize = 60;

/// Documented gPC/Sobol-vs-MC budgets (see DESIGN.md, "Stochastic
/// spectral engines"): the mean must agree to 2 % plus four MC standard
/// errors; the std to 25 % plus four of the MC std's own standard
/// errors (an n-sample MC std carries ~`1/√(2(n−1))` relative noise).
const MEAN_BUDGET_REL: f64 = 0.02;
const STD_BUDGET_REL: f64 = 0.25;

/// `--engine gpc|sobol`: per circuit at 10 linear elements, run an MC
/// reference plus the requested engine, print the engine's deterministic
/// statistics rows, and record the agreement + solves-to-tolerance
/// metrics in `BENCH_table4.json`.
///
/// The gPC mode runs the stochastic-testing grid twice — order 1 (the
/// cheap estimate) and order 2 (the refined one, as a durable campaign
/// honoring `--checkpoint`/`--resume`/`--deadline`). The spread between
/// the two is the achieved tolerance; the number of MC samples needed to
/// pin the mean to that same tolerance (`(σ/(tol·μ))²`) is the
/// solves-to-tolerance denominator the acceptance ratio divides by.
fn run_engine_mode(args: &BenchArgs) -> Result<(), BenchError> {
    let mut meter = BenchMeter::start("table4");
    let mut configs = Json::obj();
    let run_start = Instant::now();
    let threads = resolve_threads(0);
    let engine = args.engine.name();
    println!("==== Table 4 ({engine} engine): agreement with the MC reference ====");
    println!("(MC reference n={ENGINE_MC_REF_N}; {threads} worker thread(s))\n");
    let tech = tech_018();
    let wire = WireTech::m018();
    let sources = VariationSources::example3_table4();
    let circuits: &[&str] = if args.quick {
        &["s27", "s208"]
    } else {
        &["s27", "s208", "s444", "s1423", "s9234"]
    };
    let master_seed = 4;
    let n_elem = 10usize;
    let mut rows = Vec::new();
    let mut truncated = 0usize;
    let mut all_within = true;
    for &circuit in circuits {
        if args.deadline_exhausted(run_start) {
            truncated += 1;
            eprintln!("deadline: skipping {circuit}@{n_elem} (no budget left)");
            continue;
        }
        let spec = PathSpec {
            cells: path_cells(circuit)?,
            linear_elements_between_stages: n_elem,
            input_slew: 60e-12,
        };
        let model = PathModel::build(&spec, &tech, &wire)?;
        let mc = model.monte_carlo_par(&sources, ENGINE_MC_REF_N, master_seed, threads)?;
        let mc_n = mc.summary.n as f64;
        let mean_budget =
            MEAN_BUDGET_REL * mc.summary.mean.abs() + 4.0 * mc.summary.std / mc_n.sqrt();
        let std_budget =
            STD_BUDGET_REL * mc.summary.std + 4.0 * mc.summary.std / (2.0 * (mc_n - 1.0)).sqrt();
        let mut cfg = Json::obj();
        cfg.set("engine", engine);
        cfg.set("mc_ref_n", mc.summary.n as u64);
        cfg.set("mc_mean_bits", bits_hex(mc.summary.mean));
        cfg.set("mc_std_bits", bits_hex(mc.summary.std));
        let (mean, std, solves) = match args.engine {
            Engine::Sobol => {
                let config = args.campaign_config(&format!("sobol.{circuit}.{n_elem}"), run_start);
                let qmc = model.monte_carlo_campaign_sobol(
                    &sources,
                    ENGINE_MC_REF_N,
                    master_seed,
                    threads,
                    RecoveryPolicy::default(),
                    &config,
                )?;
                if let CampaignVerdict::Truncated { remaining } = qmc.verdict {
                    truncated += 1;
                    eprintln!(
                        "deadline: {circuit}@{n_elem} truncated with {remaining} samples \
                         pending; resume with --resume to finish"
                    );
                    continue;
                }
                println!(
                    "sobol {circuit}@{n_elem}: n={} mean={} std={} failures={}",
                    qmc.summary.n,
                    bits_hex(qmc.summary.mean),
                    bits_hex(qmc.summary.std),
                    qmc.failures
                );
                cfg.set("sobol_mean_bits", bits_hex(qmc.summary.mean));
                cfg.set("sobol_std_bits", bits_hex(qmc.summary.std));
                cfg.set("failures", qmc.failures as u64);
                (qmc.summary.mean, qmc.summary.std, qmc.summary.n)
            }
            _ => {
                // Cheap estimate: stochastic-testing order 1 (d+1 solves).
                let lo = model.polynomial_chaos(
                    &sources,
                    SpectralConfig::stochastic_testing(1),
                    master_seed,
                    threads,
                    RecoveryPolicy::default(),
                )?;
                // Refined estimate: order 2, as a durable campaign.
                let config = args.campaign_config(&format!("gpc.{circuit}.{n_elem}"), run_start);
                let pc = model.polynomial_chaos_campaign(
                    &sources,
                    SpectralConfig::stochastic_testing(2),
                    master_seed,
                    threads,
                    RecoveryPolicy::default(),
                    &config,
                )?;
                let Some(hi) = pc.result else {
                    truncated += 1;
                    eprintln!(
                        "deadline: {circuit}@{n_elem} truncated mid-grid ({} nodes done); \
                         resume with --resume to finish",
                        pc.completed
                    );
                    continue;
                };
                println!(
                    "gpc {circuit}@{n_elem}: nodes={} mean={} std={} q05={} q50={} q95={}",
                    hi.nodes_evaluated,
                    bits_hex(hi.mean),
                    bits_hex(hi.std),
                    bits_hex(quantile_at(&hi.quantiles, 0.05)),
                    bits_hex(quantile_at(&hi.quantiles, 0.5)),
                    bits_hex(quantile_at(&hi.quantiles, 0.95)),
                );
                let gpc_solves = lo.nodes_evaluated + hi.nodes_evaluated;
                // Achieved tolerance: the relative mean spread between
                // the two orders (floored to keep the MC-equivalence
                // finite when they coincide).
                let tol_achieved = ((lo.mean - hi.mean).abs() / hi.mean.abs()).max(1e-6);
                let mc_solves_to_tol = (hi.std / (tol_achieved * hi.mean.abs()))
                    .powi(2)
                    .ceil()
                    .max(1.0);
                let solves_ratio = gpc_solves as f64 / mc_solves_to_tol;
                cfg.set("gpc_solves_lo", lo.nodes_evaluated as u64);
                cfg.set("gpc_solves_hi", hi.nodes_evaluated as u64);
                cfg.set("gpc_solves", gpc_solves as u64);
                cfg.set("gpc_mean_bits", bits_hex(hi.mean));
                cfg.set("gpc_std_bits", bits_hex(hi.std));
                cfg.set("tol_achieved", tol_achieved);
                cfg.set("mc_solves_to_tol", mc_solves_to_tol);
                cfg.set("solves_ratio", solves_ratio);
                cfg.set("solves_ratio_ok", solves_ratio <= 0.1);
                if solves_ratio > 0.1 {
                    all_within = false;
                }
                (hi.mean, hi.std, gpc_solves)
            }
        };
        let mean_err = (mean - mc.summary.mean).abs();
        let std_err = (std - mc.summary.std).abs();
        let within = mean_err <= mean_budget && std_err <= std_budget;
        all_within = all_within && within;
        cfg.set("mean_abs_err", mean_err);
        cfg.set("mean_budget", mean_budget);
        cfg.set("std_abs_err", std_err);
        cfg.set("std_budget", std_budget);
        cfg.set("within_budget", within);
        configs.set(&format!("{circuit}@{n_elem}"), cfg);
        rows.push(vec![
            circuit.to_string(),
            format!("{solves}"),
            format!("{}", mc.summary.n),
            format!("{:.2}%", 1e2 * mean_err / mc.summary.mean.abs()),
            format!("{:.1}%", 1e2 * std_err / mc.summary.std.abs()),
            if within { "yes" } else { "NO" }.to_string(),
        ]);
        eprintln!("done: {circuit} @ {n_elem} elements ({engine})");
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "engine solves",
                "MC ref n",
                "Δmean vs MC",
                "Δstd vs MC",
                "within budget",
            ],
            &rows
        )
    );
    println!("(budgets: mean 2% + 4·SE, std 25% + 4·SE of the MC reference; the gPC");
    println!(" solves-to-tolerance ratio in BENCH_table4.json must stay ≤ 0.1)");
    if truncated > 0 {
        println!(
            "note: {truncated} configuration(s) hit the deadline; rerun with \
             --resume to finish from the snapshots"
        );
    }
    if !all_within && truncated == 0 {
        return Err(BenchError::Msg(format!(
            "{engine} engine left the documented agreement budget (see table above)"
        )));
    }
    meter.set("engine", engine);
    meter.set("configs", configs);
    meter.set("truncated_configs", truncated as u64);
    meter.set("all_within_budget", all_within);
    eprintln!("{}", linvar_bench::workspace_note());
    meter.finish(args)?;
    Ok(())
}

fn path_cells(circuit: &str) -> Result<Vec<String>, BenchError> {
    let bench = benchmark(circuit).ok_or_else(|| format!("unknown benchmark {circuit}"))?;
    let report = longest_path(&bench.netlist)?;
    let stages = decompose_to_primitives(&bench.netlist, &report)?;
    Ok(stages.into_iter().map(|s| s.cell).collect())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("table4: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.validate_engine("table4", true)?;
    if args.engine != Engine::Mc {
        return run_engine_mode(&args);
    }
    let mut meter = BenchMeter::start("table4");
    let mut configs = Json::obj();
    let run_start = Instant::now();
    let threads = resolve_threads(0);
    println!("==== Table 4: speedup of the framework vs the SPICE baseline ====");
    println!(
        "(framework Monte-Carlo on {threads} worker thread(s); set LINVAR_THREADS to change)\n"
    );
    let tech = tech_018();
    let wire = WireTech::m018();
    let sources = VariationSources::example3_table4();
    let circuits = ["s27", "s208", "s444", "s1423", "s9234"];
    let master_seed = 4;
    let mut rows = Vec::new();
    let mut truncated = 0usize;
    for circuit in circuits {
        let cells = path_cells(circuit)?;
        for &n_elem in &[10usize, 500] {
            if args.quick && n_elem == 500 && (circuit == "s1423" || circuit == "s9234") {
                continue;
            }
            if args.deadline_exhausted(run_start) {
                // No budget left even to build the model — leave this
                // configuration entirely to a resumed run.
                truncated += 1;
                eprintln!("deadline: skipping {circuit}@{n_elem} (no budget left)");
                continue;
            }
            let spec = PathSpec {
                cells: cells.clone(),
                linear_elements_between_stages: n_elem,
                input_slew: 60e-12,
            };
            let t_build = Instant::now();
            let model = PathModel::build(&spec, &tech, &wire)?;
            let build_s = t_build.elapsed().as_secs_f64();
            let n_teta = if n_elem == 500 { 3 } else { 5 };
            let config_tag = format!("{circuit}.{n_elem}");
            let shard_cfg = args.shard_config(&config_tag)?;
            if let (Some(cfg), Some(k)) = (&shard_cfg, args.shard_index) {
                // Process-per-shard worker: evaluate only shard k of
                // this configuration and leave its snapshot as the
                // output. A later `--shards N --resume <prefix>` run
                // merges the snapshots without re-evaluating anything.
                let worker = model.monte_carlo_shard_worker(
                    &sources,
                    n_teta,
                    master_seed,
                    threads,
                    RecoveryPolicy::default(),
                    cfg,
                    k,
                )?;
                println!(
                    "shard {k}/{}: {circuit}@{n_elem} completed={} evaluated={} failures={}",
                    cfg.n_shards, worker.completed, worker.evaluated, worker.failures
                );
                eprintln!("done: {circuit} @ {n_elem} elements (shard {k} only)");
                continue;
            }
            let t0 = Instant::now();
            // The sharded supervisor and the plain campaign driver feed
            // the same `mc` line below — the rows are byte-identical at
            // any shard count, which ci.sh's shard smoke diffs.
            let (summary, failures, first_error, evaluated) = match &shard_cfg {
                Some(cfg) => {
                    let mc = model.monte_carlo_sharded(
                        &sources,
                        n_teta,
                        master_seed,
                        threads,
                        RecoveryPolicy::default(),
                        cfg,
                    )?;
                    (mc.summary, mc.failures, mc.first_error, mc.evaluated)
                }
                None => {
                    let config = args.campaign_config(&config_tag, run_start);
                    let mc = model.monte_carlo_campaign(
                        &sources,
                        n_teta,
                        master_seed,
                        threads,
                        RecoveryPolicy::default(),
                        &config,
                    )?;
                    if let CampaignVerdict::Truncated { remaining } = mc.verdict {
                        truncated += 1;
                        eprintln!(
                            "deadline: {circuit}@{n_elem} truncated with {remaining}/{n_teta} \
                             samples pending ({} completed this run); resume with --resume to \
                             finish",
                            mc.evaluated
                        );
                        continue;
                    }
                    (mc.summary, mc.failures, mc.first_error, mc.evaluated)
                }
            };
            let elapsed = t0.elapsed().as_secs_f64();
            if failures > 0 {
                eprintln!(
                    "warning: {circuit}@{n_elem}: {failures}/{n_teta} samples failed (first: {})",
                    first_error.as_deref().unwrap_or("unknown"),
                );
            }
            // Deterministic statistics line: bit patterns, not timings —
            // identical between clean and interrupted-resumed schedules.
            println!(
                "mc {circuit}@{n_elem}: n={} mean={} std={} failures={}",
                summary.n,
                bits_hex(summary.mean),
                bits_hex(summary.std),
                failures
            );
            if args.deadline_exhausted(run_start) {
                // The campaign finished (e.g. entirely from the resume
                // snapshot) but there is no budget left for the SPICE
                // measurement; skip the timing row rather than run over.
                truncated += 1;
                eprintln!("deadline: skipping the {circuit}@{n_elem} SPICE measurement");
                continue;
            }
            // Throughput of the samples evaluated in *this* run; a fully
            // resumed campaign evaluates none, so no rate is measurable.
            let timing = if evaluated > 0 {
                Some((elapsed * 1e3 / evaluated as f64, evaluated as f64 / elapsed))
            } else {
                None
            };
            let mut sample_rng = linvar_stats::rng_from_seed(master_seed);
            let samples = model.draw_samples(&sources, 1, &mut sample_rng);
            let t0 = Instant::now();
            model.evaluate_sample_spice(&samples[0])?;
            let spice_ms = t0.elapsed().as_secs_f64() * 1e3;
            let (teta_ms, sps) = match timing {
                Some((ms, sps)) => (format!("{ms:.1}"), format!("{sps:.1}")),
                None => ("resumed".to_string(), "-".to_string()),
            };
            let speedup = match timing {
                Some((ms, _)) => format!("{:.2}", spice_ms / ms),
                None => "-".to_string(),
            };
            rows.push(vec![
                circuit.to_string(),
                format!("{}", model.stage_count()),
                format!("{n_elem}"),
                teta_ms,
                sps,
                format!("{spice_ms:.1}"),
                speedup,
                format!("{build_s:.2}"),
            ]);
            let mut cfg = Json::obj();
            cfg.set("stages", model.stage_count() as u64);
            cfg.set("linear_elements", n_elem as u64);
            cfg.set("spice_ms_per_sample", spice_ms);
            if let Some((ms, sps)) = timing {
                cfg.set("framework_ms_per_sample", ms);
                cfg.set("samples_per_sec", sps);
                cfg.set("speedup", spice_ms / ms);
            }
            cfg.set("mc_mean_bits", bits_hex(summary.mean));
            cfg.set("mc_std_bits", bits_hex(summary.std));
            cfg.set("failures", failures as u64);
            configs.set(&format!("{circuit}@{n_elem}"), cfg);
            eprintln!("done: {circuit} @ {n_elem} elements");
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "stages",
                "lin. elements",
                "framework ms/sample",
                "samples/sec",
                "SPICE ms/sample",
                "speedup",
                "build s",
            ],
            &rows
        )
    );
    println!("(speedup = per-sample Monte-Carlo cost ratio; the framework's");
    println!(" one-time construction cost is amortized over the sample set)");
    if truncated > 0 {
        println!(
            "note: {truncated} configuration(s) hit the deadline; rerun with \
             --resume to finish from the snapshots"
        );
    }
    meter.set("configs", configs);
    meter.set("truncated_configs", truncated as u64);
    eprintln!("{}", linvar_bench::workspace_note());
    meter.finish(&args)?;
    Ok(())
}
