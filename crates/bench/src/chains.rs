//! Shared evaluation logic for the `chains` large-circuit benchmark.
//!
//! Lives in the library (not the bin) so the golden-fixture test at the
//! workspace root drives exactly the code the benchmark runs: one
//! Monte-Carlo delay campaign over a [`ChainCase`], with the linear
//! solver backend pinned per run. The `mc` rows round their statistics
//! to `%.6e`, coarse enough that the dense and sparse backends (which
//! agree to ~1e-10 relative) print byte-identical lines — that is the
//! property `ci.sh` diffs and `tests/golden_chains.rs` pins.

use crate::BenchError;
use linvar_interconnect::ChainCase;
use linvar_numeric::SolverChoice;
use linvar_spice::{crossing_time, Transient, TransientOptions};
use linvar_stats::sampling::lhs_normal_streamed;
use linvar_stats::{
    fingerprint_str, fingerprint_words, monte_carlo_par, run_sharded_campaign, CampaignFingerprint,
    MonteCarloResult, RecoveryPolicy, SampleStatus, ShardConfig, ShardedCampaignResult, Summary,
};

/// Master seed of the chains campaigns (fixtures depend on it).
pub const CHAINS_SEED: u64 = 0x00c4a15;

/// Per-parameter sigma of the W/T/S/H/ρ fluctuations (normalized units,
/// same 0.33 the paper's examples use).
pub const CHAINS_SIGMA: f64 = 0.33;

/// Deterministic variation samples for a chains campaign: `n` draws of
/// the five normalized wire parameters. Streamed LHS, so the set depends
/// only on the seed — never on thread count or evaluation order.
pub fn sample_set(n: usize) -> Vec<Vec<f64>> {
    lhs_normal_streamed(CHAINS_SEED, n, 5, CHAINS_SIGMA)
}

/// Evaluates one Monte-Carlo sample: freeze the variational netlist at
/// `w`, run the transient on the requested backend, and measure the 50 %
/// crossing of the probe node.
///
/// # Errors
///
/// Returns [`BenchError`] if the transient fails or the waveform never
/// crosses 50 % inside the case's window.
pub fn delay_for_sample(
    case: &ChainCase,
    w: &[f64],
    solver: SolverChoice,
) -> Result<f64, BenchError> {
    let frozen = case.netlist.frozen_at(w);
    let mut opts = TransientOptions::new(case.tstop, case.dt);
    opts.probes.push(case.probe.clone());
    opts.solver = solver;
    let res = Transient::new(&frozen, &opts)?.run()?;
    let wave = res
        .probe(&case.probe)
        .ok_or_else(|| BenchError::Msg(format!("probe {} missing", case.probe)))?;
    crossing_time(&res.times, wave, 0.5, true, 0.0)
        .ok_or_else(|| BenchError::Msg(format!("{}: no 50% crossing in window", case.name)))
}

/// Runs the delay campaign for one case on one backend.
///
/// # Errors
///
/// Returns [`BenchError`] if every sample fails (per-sample failures are
/// reported in the result, not raised).
pub fn run_case(
    case: &ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
) -> Result<MonteCarloResult, BenchError> {
    let mc = monte_carlo_par(samples, threads, |w: &Vec<f64>| {
        delay_for_sample(case, w, solver)
    });
    if mc.summary.n == 0 {
        return Err(BenchError::Msg(format!(
            "{}: all {} samples failed ({})",
            case.name,
            samples.len(),
            mc.first_error.as_deref().unwrap_or("no error recorded")
        )));
    }
    Ok(mc)
}

/// Campaign fingerprint of one chains case: seed, sample-set shape, and
/// the case name folded into the model hash. Shard snapshots taken under
/// one case refuse to resume another.
pub fn chains_fingerprint(case_name: &str, n_samples: usize) -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: CHAINS_SEED,
        n_samples,
        policy: RecoveryPolicy::strict(),
        model: fingerprint_words([fingerprint_str(case_name), n_samples as u64, 5]),
    }
}

/// Runs the delay campaign for one case under the shard supervisor.
///
/// The merged statistics are bitwise-identical to [`run_case`] over the
/// same samples — the property `ci.sh`'s shard smoke byte-diffs — while
/// gaining per-shard checkpoints, retry, and straggler re-dispatch.
///
/// # Errors
///
/// Returns [`BenchError`] on a shard-plan problem or if every sample
/// failed (shard deaths surface as failed samples, not errors).
pub fn run_case_sharded(
    case: &ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    config: &ShardConfig,
) -> Result<ShardedCampaignResult, BenchError> {
    let fp = chains_fingerprint(&case.name, samples.len());
    let sharded = run_sharded_campaign(
        samples,
        threads,
        RecoveryPolicy::strict(),
        config,
        &fp,
        |w: &Vec<f64>, _attempt| {
            delay_for_sample(case, w, solver)
                .map(|d| (d, SampleStatus::Clean))
                .map_err(|e| e.to_string())
        },
    )
    .map_err(|e| BenchError::Core(e.into()))?;
    if sharded.summary.n == 0 {
        return Err(BenchError::Msg(format!(
            "{}: all {} samples failed ({})",
            case.name,
            samples.len(),
            sharded
                .first_error
                .as_deref()
                .unwrap_or("no error recorded")
        )));
    }
    Ok(sharded)
}

/// The deterministic `mc` row for one completed campaign. Statistics are
/// rounded to `%.6e` so both backends and any worker count print the
/// same bytes (the solver name is deliberately absent). Takes the
/// summary and failure count rather than a result struct so the plain
/// ([`MonteCarloResult`]) and sharded ([`ShardedCampaignResult`])
/// drivers print through the same formatter — identity of the two rows
/// is a CI invariant, not a coincidence.
pub fn mc_line(case_name: &str, summary: &Summary, failures: usize) -> String {
    format!(
        "mc {case_name}: n={} mean={:.6e} std={:.6e} min={:.6e} max={:.6e} failures={}",
        summary.n, summary.mean, summary.std, summary.min, summary.max, failures
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_interconnect::rc_chain_case;

    #[test]
    fn samples_are_thread_independent_and_seeded() {
        let a = sample_set(8);
        let b = sample_set(8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|w| w.len() == 5));
        assert!(a.iter().flatten().any(|&v| v != 0.0));
    }

    #[test]
    fn nominal_delay_is_positive_and_backend_invariant_text() {
        let case = rc_chain_case(50).unwrap();
        let w = vec![0.0; 5];
        let dense = delay_for_sample(&case, &w, SolverChoice::Dense).unwrap();
        let sparse = delay_for_sample(&case, &w, SolverChoice::Sparse).unwrap();
        assert!(dense > 0.0);
        assert!(
            (dense - sparse).abs() <= 1e-9 * dense,
            "backends disagree: dense {dense:e} vs sparse {sparse:e}"
        );
        assert_eq!(format!("{dense:.6e}"), format!("{sparse:.6e}"));
    }

    #[test]
    fn mc_rows_match_across_backends() {
        let case = rc_chain_case(50).unwrap();
        let samples = sample_set(4);
        let d = run_case(&case, &samples, 1, SolverChoice::Dense).unwrap();
        let s = run_case(&case, &samples, 2, SolverChoice::Sparse).unwrap();
        assert_eq!(
            mc_line(&case.name, &d.summary, d.failures),
            mc_line(&case.name, &s.summary, s.failures)
        );
        assert_eq!(d.failures, 0);
    }

    #[test]
    fn sharded_rows_match_unsharded() {
        let case = rc_chain_case(50).unwrap();
        let samples = sample_set(6);
        let base = run_case(&case, &samples, 1, SolverChoice::Sparse).unwrap();
        let base_line = mc_line(&case.name, &base.summary, base.failures);
        for n_shards in [1, 3] {
            let cfg = ShardConfig {
                n_shards,
                ..ShardConfig::default()
            };
            let sharded = run_case_sharded(&case, &samples, 2, SolverChoice::Sparse, &cfg).unwrap();
            assert_eq!(
                mc_line(&case.name, &sharded.summary, sharded.failures),
                base_line,
                "{n_shards} shards"
            );
        }
    }
}
