//! Shared evaluation logic for the `chains` large-circuit benchmark.
//!
//! Lives in the library (not the bin) so the golden-fixture test at the
//! workspace root drives exactly the code the benchmark runs: one
//! Monte-Carlo delay campaign over a [`ChainCase`], with the linear
//! solver backend pinned per run. The `mc` rows round their statistics
//! to `%.6e`, coarse enough that the dense and sparse backends (which
//! agree to ~1e-10 relative) print byte-identical lines — that is the
//! property `ci.sh` diffs and `tests/golden_chains.rs` pins.

use crate::BenchError;
use linvar_interconnect::ChainCase;
use linvar_numeric::SolverChoice;
use linvar_spice::{ac_analysis_with, crossing_time, Transient, TransientOptions};
use linvar_stats::sampling::lhs_normal_streamed;
use linvar_stats::{
    fingerprint_str, fingerprint_words, monte_carlo_par, run_sharded_campaign, run_spectral,
    sobol_normal_streamed, AnalysisKind, CampaignFingerprint, MonteCarloResult, RecoveryPolicy,
    SampleStatus, ShardConfig, ShardedCampaignResult, SpectralConfig, SpectralPlan, SpectralResult,
    Summary,
};

/// Master seed of the chains campaigns (fixtures depend on it).
pub const CHAINS_SEED: u64 = 0x00c4a15;

/// Per-parameter sigma of the W/T/S/H/ρ fluctuations (normalized units,
/// same 0.33 the paper's examples use).
pub const CHAINS_SIGMA: f64 = 0.33;

/// Deterministic variation samples for a chains campaign: `n` draws of
/// the five normalized wire parameters. Streamed LHS, so the set depends
/// only on the seed — never on thread count or evaluation order.
pub fn sample_set(n: usize) -> Vec<Vec<f64>> {
    lhs_normal_streamed(CHAINS_SEED, n, 5, CHAINS_SIGMA)
}

/// The Sobol quasi-MC counterpart of [`sample_set`]: same seed, same
/// dimensions and σ, drawn from the digitally-shifted Sobol sequence.
/// Each sample is a pure function of `(CHAINS_SEED, index)`.
pub fn sample_set_sobol(n: usize) -> Vec<Vec<f64>> {
    sobol_normal_streamed(CHAINS_SEED, n, 5, CHAINS_SIGMA)
}

/// Evaluates one Monte-Carlo sample: freeze the variational netlist at
/// `w`, run the transient on the requested backend, and measure the 50 %
/// crossing of the probe node.
///
/// # Errors
///
/// Returns [`BenchError`] if the transient fails or the waveform never
/// crosses 50 % inside the case's window.
pub fn delay_for_sample(
    case: &ChainCase,
    w: &[f64],
    solver: SolverChoice,
) -> Result<f64, BenchError> {
    let frozen = case.netlist.frozen_at(w);
    let mut opts = TransientOptions::new(case.tstop, case.dt);
    opts.probes.push(case.probe.clone());
    opts.solver = solver;
    let res = Transient::new(&frozen, &opts)?.run()?;
    let wave = res
        .probe(&case.probe)
        .ok_or_else(|| BenchError::Msg(format!("probe {} missing", case.probe)))?;
    crossing_time(&res.times, wave, 0.5, true, 0.0)
        .ok_or_else(|| BenchError::Msg(format!("{}: no 50% crossing in window", case.name)))
}

/// Runs the delay campaign for one case on one backend.
///
/// # Errors
///
/// Returns [`BenchError`] if every sample fails (per-sample failures are
/// reported in the result, not raised).
pub fn run_case(
    case: &ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
) -> Result<MonteCarloResult, BenchError> {
    let mc = monte_carlo_par(samples, threads, |w: &Vec<f64>| {
        delay_for_sample(case, w, solver)
    });
    if mc.summary.n == 0 {
        return Err(BenchError::Msg(format!(
            "{}: all {} samples failed ({})",
            case.name,
            samples.len(),
            mc.first_error.as_deref().unwrap_or("no error recorded")
        )));
    }
    Ok(mc)
}

/// The fixed AC measurement frequency of one case (`--analysis ac`): a
/// pure function of the case's transient window (`tstop ≈ 8τ`), placed
/// near the knee of its nominal response so the gain magnitude is
/// neither ~1 nor ~0 and the wire fluctuations move it measurably —
/// a near-unity gain would leave the sample std small enough for the
/// dense/sparse backends to disagree inside the `%.6e` row rounding.
pub fn ac_frequency(case: &ChainCase) -> f64 {
    2.0 / case.tstop
}

/// The `--analysis ac` row name of a case: the case name with an `.ac`
/// suffix, so AC rows can never be confused with (or diffed against)
/// the transient delay rows of the same circuit.
pub fn ac_case_name(case: &ChainCase) -> String {
    format!("{}.ac", case.name)
}

/// Evaluates one AC Monte-Carlo sample: freeze the variational netlist
/// at `w`, run a single-point AC sweep with a unit stimulus on the
/// `Vdrv` driver, and return the gain magnitude |V(probe)| at
/// [`ac_frequency`].
///
/// # Errors
///
/// Returns [`BenchError`] if the AC solve fails.
pub fn ac_mag_for_sample(
    case: &ChainCase,
    w: &[f64],
    solver: SolverChoice,
) -> Result<f64, BenchError> {
    let frozen = case.netlist.frozen_at(w);
    let res = ac_analysis_with(
        &frozen,
        "Vdrv",
        &[&case.probe],
        &[ac_frequency(case)],
        solver,
    )?;
    let mags = res
        .magnitude(&case.probe)
        .ok_or_else(|| BenchError::Msg(format!("probe {} missing", case.probe)))?;
    mags.first()
        .copied()
        .ok_or_else(|| BenchError::Msg(format!("{}: empty AC sweep", case.name)))
}

/// Runs the AC gain campaign for one case on one backend — the
/// `--analysis ac` counterpart of [`run_case`].
///
/// # Errors
///
/// Returns [`BenchError`] if every sample fails.
pub fn run_case_ac(
    case: &ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
) -> Result<MonteCarloResult, BenchError> {
    let mc = monte_carlo_par(samples, threads, |w: &Vec<f64>| {
        ac_mag_for_sample(case, w, solver)
    });
    if mc.summary.n == 0 {
        return Err(BenchError::Msg(format!(
            "{}: all {} samples failed ({})",
            ac_case_name(case),
            samples.len(),
            mc.first_error.as_deref().unwrap_or("no error recorded")
        )));
    }
    Ok(mc)
}

/// Campaign fingerprint of one chains case: seed, sample-set shape, and
/// the case name folded into the model hash. Shard snapshots taken under
/// one case refuse to resume another.
pub fn chains_fingerprint(case_name: &str, n_samples: usize) -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: CHAINS_SEED,
        n_samples,
        policy: RecoveryPolicy::strict(),
        model: fingerprint_words([fingerprint_str(case_name), n_samples as u64, 5]),
    }
}

/// Runs the delay campaign for one case under the shard supervisor.
///
/// The merged statistics are bitwise-identical to [`run_case`] over the
/// same samples — the property `ci.sh`'s shard smoke byte-diffs — while
/// gaining per-shard checkpoints, retry, and straggler re-dispatch.
///
/// # Errors
///
/// Returns [`BenchError`] on a shard-plan problem or if every sample
/// failed (shard deaths surface as failed samples, not errors).
pub fn run_case_sharded(
    case: &ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    config: &ShardConfig,
) -> Result<ShardedCampaignResult, BenchError> {
    let fp = chains_fingerprint(&case.name, samples.len());
    let sharded = run_sharded_campaign(
        samples,
        threads,
        RecoveryPolicy::strict(),
        config,
        &fp,
        |w: &Vec<f64>, _attempt| {
            delay_for_sample(case, w, solver)
                .map(|d| (d, SampleStatus::Clean))
                .map_err(|e| e.to_string())
        },
    )
    .map_err(|e| BenchError::Core(e.into()))?;
    if sharded.summary.n == 0 {
        return Err(BenchError::Msg(format!(
            "{}: all {} samples failed ({})",
            case.name,
            samples.len(),
            sharded
                .first_error
                .as_deref()
                .unwrap_or("no error recorded")
        )));
    }
    Ok(sharded)
}

/// [`chains_fingerprint`] for the AC gain campaigns: folds
/// [`AnalysisKind::Ac`] into the model hash, so an AC snapshot refuses
/// to resume a transient campaign of the same case and shape. (The
/// transient fingerprint predates analysis tagging and stays untouched
/// for checkpoint compatibility.)
pub fn chains_ac_fingerprint(case_name: &str, n_samples: usize) -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: CHAINS_SEED,
        n_samples,
        policy: RecoveryPolicy::strict(),
        model: fingerprint_words([
            fingerprint_str(case_name),
            AnalysisKind::Ac.fingerprint_word(),
            n_samples as u64,
            5,
        ]),
    }
}

/// Runs the AC gain campaign for one case under the shard supervisor —
/// the `--analysis ac` counterpart of [`run_case_sharded`], merged
/// statistics bitwise-identical to [`run_case_ac`].
///
/// # Errors
///
/// Returns [`BenchError`] on a shard-plan problem or if every sample
/// failed.
pub fn run_case_ac_sharded(
    case: &ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    config: &ShardConfig,
) -> Result<ShardedCampaignResult, BenchError> {
    let fp = chains_ac_fingerprint(&case.name, samples.len());
    let sharded = run_sharded_campaign(
        samples,
        threads,
        RecoveryPolicy::strict(),
        config,
        &fp,
        |w: &Vec<f64>, _attempt| {
            ac_mag_for_sample(case, w, solver)
                .map(|m| (m, SampleStatus::Clean))
                .map_err(|e| e.to_string())
        },
    )
    .map_err(|e| BenchError::Core(e.into()))?;
    if sharded.summary.n == 0 {
        return Err(BenchError::Msg(format!(
            "{}: all {} samples failed ({})",
            ac_case_name(case),
            samples.len(),
            sharded
                .first_error
                .as_deref()
                .unwrap_or("no error recorded")
        )));
    }
    Ok(sharded)
}

/// The spectral grid every chains gPC run uses: Smolyak sparse level 1
/// over the five wire parameters at total degree 2 — 11 transient
/// solves per case instead of a sample campaign.
pub const CHAINS_GPC_CONFIG: SpectralConfig = SpectralConfig {
    order: 2,
    level: 1,
    grid: linvar_stats::GridKind::Smolyak,
};

/// Runs the gPC delay analysis for one case on one backend: the
/// [`CHAINS_GPC_CONFIG`] Smolyak plan over the five normalized wire
/// parameters (germ scaled by [`CHAINS_SIGMA`]), each node evaluated by
/// [`delay_for_sample`]. Deterministic at any thread count, like the
/// MC campaigns.
///
/// # Errors
///
/// Returns [`BenchError`] on a plan failure, a failed node, or a failed
/// coefficient solve (a spectral rule cannot quarantine nodes).
pub fn run_case_spectral(
    case: &ChainCase,
    threads: usize,
    solver: SolverChoice,
) -> Result<SpectralResult, BenchError> {
    let plan = SpectralPlan::build(5, CHAINS_GPC_CONFIG)
        .map_err(|e| BenchError::Msg(format!("{}: {e}", case.name)))?;
    run_spectral(
        &plan,
        threads,
        RecoveryPolicy::strict(),
        CHAINS_SEED,
        |node, _attempt| {
            let w: Vec<f64> = node.iter().map(|x| x * CHAINS_SIGMA).collect();
            delay_for_sample(case, &w, solver)
                .map(|d| (d, SampleStatus::Clean))
                .map_err(|e| e.to_string())
        },
    )
    .map_err(|e| BenchError::Msg(format!("{}: {e}", case.name)))
}

/// The deterministic statistics row for one completed campaign under
/// `engine` (`mc` or `sobol` — the row prefix, which `ci.sh` greps per
/// engine). Statistics are rounded to `%.6e` so both backends and any
/// worker count print the same bytes (the solver name is deliberately
/// absent). Takes the summary and failure count rather than a result
/// struct so the plain ([`MonteCarloResult`]) and sharded
/// ([`ShardedCampaignResult`]) drivers print through the same formatter
/// — identity of the two rows is a CI invariant, not a coincidence.
pub fn engine_line(engine: &str, case_name: &str, summary: &Summary, failures: usize) -> String {
    format!(
        "{engine} {case_name}: n={} mean={:.6e} std={:.6e} min={:.6e} max={:.6e} failures={}",
        summary.n, summary.mean, summary.std, summary.min, summary.max, failures
    )
}

/// [`engine_line`] for the default Monte-Carlo engine.
pub fn mc_line(case_name: &str, summary: &Summary, failures: usize) -> String {
    engine_line("mc", case_name, summary, failures)
}

/// The deterministic `gpc` row for one completed spectral run: node
/// count, surrogate moments and quantiles at the same `%.6e` rounding
/// as the MC rows (backend- and thread-count-invariant bytes).
pub fn gpc_line(case_name: &str, res: &SpectralResult) -> String {
    let q = |p: f64| {
        res.quantiles
            .iter()
            .find(|(prob, _)| *prob == p)
            .map_or(f64::NAN, |(_, v)| *v)
    };
    format!(
        "gpc {case_name}: nodes={} mean={:.6e} std={:.6e} q05={:.6e} q50={:.6e} q95={:.6e}",
        res.nodes_evaluated,
        res.mean,
        res.std,
        q(0.05),
        q(0.5),
        q(0.95)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_interconnect::rc_chain_case;

    #[test]
    fn samples_are_thread_independent_and_seeded() {
        let a = sample_set(8);
        let b = sample_set(8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|w| w.len() == 5));
        assert!(a.iter().flatten().any(|&v| v != 0.0));
    }

    #[test]
    fn nominal_delay_is_positive_and_backend_invariant_text() {
        let case = rc_chain_case(50).unwrap();
        let w = vec![0.0; 5];
        let dense = delay_for_sample(&case, &w, SolverChoice::Dense).unwrap();
        let sparse = delay_for_sample(&case, &w, SolverChoice::Sparse).unwrap();
        assert!(dense > 0.0);
        assert!(
            (dense - sparse).abs() <= 1e-9 * dense,
            "backends disagree: dense {dense:e} vs sparse {sparse:e}"
        );
        assert_eq!(format!("{dense:.6e}"), format!("{sparse:.6e}"));
    }

    #[test]
    fn mc_rows_match_across_backends() {
        let case = rc_chain_case(50).unwrap();
        let samples = sample_set(4);
        let d = run_case(&case, &samples, 1, SolverChoice::Dense).unwrap();
        let s = run_case(&case, &samples, 2, SolverChoice::Sparse).unwrap();
        assert_eq!(
            mc_line(&case.name, &d.summary, d.failures),
            mc_line(&case.name, &s.summary, s.failures)
        );
        assert_eq!(d.failures, 0);
    }

    #[test]
    fn sobol_samples_are_seeded_and_distinct_from_lhs() {
        let a = sample_set_sobol(8);
        let b = sample_set_sobol(8);
        assert_eq!(a, b);
        assert!(a.iter().all(|w| w.len() == 5));
        assert_ne!(a, sample_set(8), "sobol and LHS streams must differ");
    }

    #[test]
    fn gpc_rows_match_across_backends_and_threads() {
        let case = rc_chain_case(50).unwrap();
        let dense = run_case_spectral(&case, 1, SolverChoice::Dense).unwrap();
        let sparse = run_case_spectral(&case, 2, SolverChoice::Sparse).unwrap();
        assert_eq!(dense.nodes_evaluated, 11, "smolyak level-1 grid in 5 dims");
        assert_eq!(
            gpc_line(&case.name, &dense),
            gpc_line(&case.name, &sparse),
            "gpc rows must be backend- and thread-count-invariant"
        );
        assert!(dense.mean > 0.0 && dense.std >= 0.0);
    }

    #[test]
    fn ac_gain_is_physical_and_backend_invariant() {
        let case = rc_chain_case(50).unwrap();
        let w = vec![0.0; 5];
        let dense = ac_mag_for_sample(&case, &w, SolverChoice::Dense).unwrap();
        let sparse = ac_mag_for_sample(&case, &w, SolverChoice::Sparse).unwrap();
        assert!(
            dense > 0.05 && dense < 0.999,
            "measurement frequency should sit near the knee, got |H| = {dense}"
        );
        assert_eq!(format!("{dense:.6e}"), format!("{sparse:.6e}"));
    }

    #[test]
    fn ac_rows_are_distinct_from_transient_rows() {
        let case = rc_chain_case(50).unwrap();
        let samples = sample_set(4);
        let ac = run_case_ac(&case, &samples, 2, SolverChoice::Sparse).unwrap();
        let tran = run_case(&case, &samples, 2, SolverChoice::Sparse).unwrap();
        let ac_row = mc_line(&ac_case_name(&case), &ac.summary, ac.failures);
        let tran_row = mc_line(&case.name, &tran.summary, tran.failures);
        assert!(ac_row.starts_with(&format!("mc {}.ac:", case.name)));
        assert_ne!(ac_row, tran_row);
        assert_eq!(ac.failures, 0);
    }

    #[test]
    fn ac_fingerprint_differs_from_transient() {
        let tran = chains_fingerprint("chain50", 8);
        let ac = chains_ac_fingerprint("chain50", 8);
        assert_eq!(tran.master_seed, ac.master_seed);
        assert_ne!(
            tran.model, ac.model,
            "AC must not resume transient snapshots"
        );
    }

    #[test]
    fn ac_sharded_rows_match_unsharded() {
        let case = rc_chain_case(50).unwrap();
        let samples = sample_set(6);
        let base = run_case_ac(&case, &samples, 1, SolverChoice::Sparse).unwrap();
        let cfg = ShardConfig {
            n_shards: 3,
            ..ShardConfig::default()
        };
        let sharded = run_case_ac_sharded(&case, &samples, 2, SolverChoice::Sparse, &cfg).unwrap();
        assert_eq!(
            mc_line(&ac_case_name(&case), &sharded.summary, sharded.failures),
            mc_line(&ac_case_name(&case), &base.summary, base.failures)
        );
    }

    #[test]
    fn sharded_rows_match_unsharded() {
        let case = rc_chain_case(50).unwrap();
        let samples = sample_set(6);
        let base = run_case(&case, &samples, 1, SolverChoice::Sparse).unwrap();
        let base_line = mc_line(&case.name, &base.summary, base.failures);
        for n_shards in [1, 3] {
            let cfg = ShardConfig {
                n_shards,
                ..ShardConfig::default()
            };
            let sharded = run_case_sharded(&case, &samples, 2, SolverChoice::Sparse, &cfg).unwrap();
            assert_eq!(
                mc_line(&case.name, &sharded.summary, sharded.failures),
                base_line,
                "{n_shards} shards"
            );
        }
    }
}
