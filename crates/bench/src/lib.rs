//! Shared helpers for the paper-reproduction benchmark binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the DATE
//! 2002 paper (see `DESIGN.md` for the experiment index). This library crate
//! holds the table-formatting helpers they share.

/// Renders a simple fixed-width text table with a header row.
///
/// # Example
///
/// ```
/// let t = linvar_bench::render_table(
///     &["circuit", "speedup"],
///     &[vec!["s27".to_string(), "8.1".to_string()]],
/// );
/// assert!(t.contains("s27"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (j, cell) in row.iter().enumerate().take(ncols) {
            widths[j] = widths[j].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&format!("+{sep}+\n"));
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:w$} |", w = w));
    }
    out.push('\n');
    out.push_str(&format!("+{sep}+\n"));
    for row in rows {
        out.push('|');
        for (j, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(j).unwrap_or(&empty);
            out.push_str(&format!(" {cell:w$} |", w = w));
        }
        out.push('\n');
    }
    out.push_str(&format!("+{sep}+\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_cells() {
        let t = render_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        for needle in ["a", "b", "1", "2", "333", "4"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn table_handles_short_rows() {
        let t = render_table(&["x", "y"], &[vec!["only".into()]]);
        assert!(t.contains("only"));
    }
}
