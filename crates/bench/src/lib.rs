//! Shared helpers for the paper-reproduction benchmark binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the DATE
//! 2002 paper (see `DESIGN.md` for the experiment index). This library crate
//! holds what they share: the table formatter, the [`BenchError`] type
//! (typed errors + process exit codes instead of panics), the
//! [`BenchArgs`] parser for the campaign flags
//! (`--checkpoint`/`--resume`/`--deadline`/`--metrics`), and the
//! [`BenchMeter`] observability harness that emits the machine-readable
//! `BENCH_<bin>.json` trajectory.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod chains;
pub mod grid;
mod meter;

pub use meter::BenchMeter;

use linvar_circuit::CircuitError;
use linvar_core::CoreError;
use linvar_numeric::NumericError;
use linvar_spice::SpiceError;
use linvar_stats::{
    AnalysisKind, CampaignConfig, CheckpointError, HistogramError, ShardConfig, ShardFault,
};
use linvar_teta::TetaError;
use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Error type of the benchmark binaries.
///
/// Every user-reachable failure — bad flags, missing benchmark data, a
/// solver error, a rejected checkpoint — surfaces as a variant here and
/// maps to a process exit code via [`BenchError::exit_code`], instead of
/// an `unwrap`/`expect` panic.
#[derive(Debug)]
pub enum BenchError {
    /// Bad command-line usage (exit code 2).
    Usage(String),
    /// A campaign checkpoint was rejected or could not be written (exit
    /// code 3) — distinct so wrappers can tell "stale/corrupt snapshot"
    /// from a simulation failure.
    Checkpoint(CheckpointError),
    /// A framework-layer failure.
    Core(CoreError),
    /// Netlist construction failed.
    Circuit(CircuitError),
    /// Linear algebra failed.
    Numeric(NumericError),
    /// A TETA evaluation failed.
    Teta(TetaError),
    /// A SPICE reference run failed.
    Spice(SpiceError),
    /// Anything else (benchmark data lookups, measurement probes, …).
    Msg(String),
}

impl BenchError {
    /// Process exit code for this failure: 2 for usage errors, 3 for
    /// checkpoint problems, 1 otherwise.
    pub fn exit_code(&self) -> i32 {
        match self {
            BenchError::Usage(_) => 2,
            BenchError::Checkpoint(_) => 3,
            _ => 1,
        }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Usage(msg) => write!(f, "usage: {msg}"),
            BenchError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            BenchError::Core(e) => write!(f, "{e}"),
            BenchError::Circuit(e) => write!(f, "circuit: {e}"),
            BenchError::Numeric(e) => write!(f, "numeric: {e}"),
            BenchError::Teta(e) => write!(f, "teta: {e}"),
            BenchError::Spice(e) => write!(f, "spice: {e}"),
            BenchError::Msg(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Checkpoint(e) => Some(e),
            BenchError::Core(e) => Some(e),
            BenchError::Circuit(e) => Some(e),
            BenchError::Numeric(e) => Some(e),
            BenchError::Teta(e) => Some(e),
            BenchError::Spice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for BenchError {
    fn from(e: CoreError) -> Self {
        // Surface checkpoint rejections under their own exit code even
        // when they arrive wrapped by the framework layer.
        match e {
            CoreError::Checkpoint(c) => BenchError::Checkpoint(c),
            other => BenchError::Core(other),
        }
    }
}

impl From<CheckpointError> for BenchError {
    fn from(e: CheckpointError) -> Self {
        BenchError::Checkpoint(e)
    }
}

impl From<CircuitError> for BenchError {
    fn from(e: CircuitError) -> Self {
        BenchError::Circuit(e)
    }
}

impl From<NumericError> for BenchError {
    fn from(e: NumericError) -> Self {
        BenchError::Numeric(e)
    }
}

impl From<TetaError> for BenchError {
    fn from(e: TetaError) -> Self {
        BenchError::Teta(e)
    }
}

impl From<SpiceError> for BenchError {
    fn from(e: SpiceError) -> Self {
        BenchError::Spice(e)
    }
}

impl From<HistogramError> for BenchError {
    fn from(e: HistogramError) -> Self {
        BenchError::Msg(format!("histogram: {e}"))
    }
}

impl From<String> for BenchError {
    fn from(msg: String) -> Self {
        BenchError::Msg(msg)
    }
}

impl From<&str> for BenchError {
    fn from(msg: &str) -> Self {
        BenchError::Msg(msg.to_string())
    }
}

/// Statistics engine selected with `--engine` on the multi-engine bins
/// (`table4`, `fig7`, `chains`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Monte Carlo over the LHS sample stream (the default).
    #[default]
    Mc,
    /// Hermite-basis polynomial chaos (stochastic testing / collocation).
    Gpc,
    /// Monte Carlo over the Sobol quasi-MC sample stream.
    Sobol,
}

impl Engine {
    /// Stable engine name — also the prefix of the engine's
    /// deterministic output rows (`mc …`, `gpc …`, `sobol …`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Mc => "mc",
            Engine::Gpc => "gpc",
            Engine::Sobol => "sobol",
        }
    }

    fn parse(raw: &str) -> Result<Engine, BenchError> {
        match raw {
            "mc" => Ok(Engine::Mc),
            "gpc" => Ok(Engine::Gpc),
            "sobol" => Ok(Engine::Sobol),
            other => Err(BenchError::Usage(format!(
                "--engine wants mc, gpc or sobol, got {other:?}"
            ))),
        }
    }
}

/// Command-line arguments shared by the campaign-capable bins
/// (`table4`, `table5`, `fig7`, `example2`).
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--quick`: reduced sample counts / skipped configurations.
    pub quick: bool,
    /// `--checkpoint <prefix>`: write per-run snapshots under this path
    /// prefix (each campaign appends `.<tag>.ckpt`).
    pub checkpoint: Option<PathBuf>,
    /// `--resume <prefix>`: resume campaigns whose snapshot under this
    /// prefix exists (missing snapshots start fresh).
    pub resume: Option<PathBuf>,
    /// `--deadline <secs>`: wall-clock budget for the whole process.
    pub deadline: Option<Duration>,
    /// `--metrics <path>`: also write the machine-readable metrics
    /// report (the `BENCH_<bin>.json` content) to this path.
    pub metrics: Option<PathBuf>,
    /// `--shards <N>`: run the Monte-Carlo campaigns through the
    /// sharded supervisor with `N` shards (output stays byte-identical
    /// to an unsharded run).
    pub shards: Option<usize>,
    /// `--shard-index <K>`: process-per-shard mode — run only shard `K`
    /// of the `--shards` plan and write its snapshot (requires
    /// `--checkpoint`); a later `--shards N --resume <prefix>` run
    /// merges the snapshots.
    pub shard_index: Option<usize>,
    /// `--engine <mc|gpc|sobol>`: statistics engine for the
    /// multi-engine bins.
    pub engine: Engine,
    /// `--analysis <tran|ac>`: per-sample analysis on the bins that have
    /// a frequency-domain mode (`chains`). Default is transient.
    pub analysis: AnalysisKind,
}

impl BenchArgs {
    /// Parses `argv` (without the program name). Unknown flags are a
    /// [`BenchError::Usage`] error.
    pub fn parse<I: Iterator<Item = String>>(mut argv: I) -> Result<BenchArgs, BenchError> {
        fn value<I: Iterator<Item = String>>(
            argv: &mut I,
            flag: &str,
        ) -> Result<String, BenchError> {
            argv.next()
                .ok_or_else(|| BenchError::Usage(format!("{flag} requires a value")))
        }
        let mut out = BenchArgs::default();
        while let Some(arg) = argv.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--checkpoint" => {
                    out.checkpoint = Some(PathBuf::from(value(&mut argv, "--checkpoint")?));
                }
                "--resume" => {
                    out.resume = Some(PathBuf::from(value(&mut argv, "--resume")?));
                }
                "--metrics" => {
                    out.metrics = Some(PathBuf::from(value(&mut argv, "--metrics")?));
                }
                "--deadline" => {
                    let raw = value(&mut argv, "--deadline")?;
                    let secs: f64 = raw.parse().map_err(|_| {
                        BenchError::Usage(format!("--deadline wants seconds, got {raw:?}"))
                    })?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(BenchError::Usage(format!(
                            "--deadline wants a non-negative number of seconds, got {raw:?}"
                        )));
                    }
                    out.deadline = Some(Duration::from_secs_f64(secs));
                }
                "--shards" => {
                    let raw = value(&mut argv, "--shards")?;
                    let n: usize = raw.parse().unwrap_or(0);
                    if n == 0 {
                        return Err(BenchError::Usage(format!(
                            "--shards wants a positive shard count, got {raw:?}"
                        )));
                    }
                    out.shards = Some(n);
                }
                "--shard-index" => {
                    let raw = value(&mut argv, "--shard-index")?;
                    let k: usize = raw.parse().map_err(|_| {
                        BenchError::Usage(format!(
                            "--shard-index wants a shard number, got {raw:?}"
                        ))
                    })?;
                    out.shard_index = Some(k);
                }
                "--engine" => {
                    out.engine = Engine::parse(&value(&mut argv, "--engine")?)?;
                }
                "--analysis" => {
                    let raw = value(&mut argv, "--analysis")?;
                    out.analysis = AnalysisKind::parse(&raw).ok_or_else(|| {
                        BenchError::Usage(format!("--analysis wants tran or ac, got {raw:?}"))
                    })?;
                    if out.analysis == AnalysisKind::IrDrop {
                        return Err(BenchError::Usage(
                            "--analysis irdrop is the acgrid bin's workload, not a chains mode"
                                .into(),
                        ));
                    }
                }
                other => {
                    return Err(BenchError::Usage(format!(
                        "unknown argument {other:?} (expected --quick, --checkpoint <prefix>, \
                         --resume <prefix>, --deadline <secs>, --metrics <path>, --shards <N>, \
                         --shard-index <K>, --engine <mc|gpc|sobol>, --analysis <tran|ac>)"
                    )));
                }
            }
        }
        Ok(out)
    }

    /// Snapshot path for one campaign: `<prefix>.<tag>.ckpt`.
    fn snapshot_path(prefix: &std::path::Path, tag: &str) -> PathBuf {
        let mut os = prefix.as_os_str().to_owned();
        os.push(format!(".{tag}.ckpt"));
        PathBuf::from(os)
    }

    /// Builds the [`CampaignConfig`] for one campaign of this run.
    ///
    /// * the checkpoint file is `<prefix>.<tag>.ckpt`;
    /// * a resume snapshot is used only if it exists (first runs of a
    ///   `--resume`d invocation start fresh);
    /// * the process-wide `--deadline` is converted to this campaign's
    ///   remaining budget, measured from `run_start` — an exhausted
    ///   budget yields a zero deadline, so later campaigns truncate
    ///   immediately (writing empty, resumable snapshots) instead of
    ///   running over.
    pub fn campaign_config(&self, tag: &str, run_start: Instant) -> CampaignConfig {
        CampaignConfig {
            checkpoint: self
                .checkpoint
                .as_ref()
                .map(|p| Self::snapshot_path(p, tag)),
            resume: self
                .resume
                .as_ref()
                .map(|p| Self::snapshot_path(p, tag))
                .filter(|p| p.exists()),
            deadline: self.deadline.map(|d| d.saturating_sub(run_start.elapsed())),
            ..CampaignConfig::default()
        }
    }

    /// `true` once the process-wide `--deadline` has elapsed — bins use
    /// this to skip auxiliary measurements (e.g. SPICE baselines) that
    /// are not checkpointable.
    pub fn deadline_exhausted(&self, run_start: Instant) -> bool {
        self.deadline.is_some_and(|d| run_start.elapsed() >= d)
    }

    /// Rejects the campaign flags for bins that have no campaign driver
    /// (`ablation`, `example1`): accepting `--checkpoint` and silently
    /// doing nothing would be worse than a usage error.
    pub fn reject_campaign_flags(&self, bin: &str) -> Result<(), BenchError> {
        if self.checkpoint.is_some() || self.resume.is_some() || self.deadline.is_some() {
            return Err(BenchError::Usage(format!(
                "{bin} has no campaign mode (--checkpoint/--resume/--deadline unsupported)"
            )));
        }
        Ok(())
    }

    /// Rejects the shard flags for bins without a sharded driver
    /// (`table5`, `example2`, `ablation`, `example1`).
    pub fn reject_shard_flags(&self, bin: &str) -> Result<(), BenchError> {
        if self.shards.is_some() || self.shard_index.is_some() {
            return Err(BenchError::Usage(format!(
                "{bin} has no sharded mode (--shards/--shard-index unsupported)"
            )));
        }
        Ok(())
    }

    /// Rejects a non-default `--analysis` for bins without a
    /// frequency-domain mode (every bin except `chains`).
    pub fn reject_analysis_flag(&self, bin: &str) -> Result<(), BenchError> {
        if self.analysis != AnalysisKind::Transient {
            return Err(BenchError::Usage(format!(
                "{bin} has no AC mode (--analysis unsupported)"
            )));
        }
        Ok(())
    }

    /// Rejects a non-default `--engine` for single-engine bins, and the
    /// shard flags for the spectral/Sobol engines on multi-engine bins
    /// (only the MC/LHS driver has a sharded supervisor).
    pub fn validate_engine(&self, bin: &str, multi_engine: bool) -> Result<(), BenchError> {
        if !multi_engine && self.engine != Engine::Mc {
            return Err(BenchError::Usage(format!(
                "{bin} has a single statistics engine (--engine unsupported)"
            )));
        }
        if self.engine != Engine::Mc && (self.shards.is_some() || self.shard_index.is_some()) {
            return Err(BenchError::Usage(format!(
                "--shards/--shard-index support only --engine mc (got --engine {})",
                self.engine.name()
            )));
        }
        Ok(())
    }

    /// Builds the [`ShardConfig`] for one campaign of this run, or
    /// `None` when `--shards` was not given.
    ///
    /// * shard snapshots live under `<prefix>.<tag>.shard<k>of<N>.ckpt`
    ///   (the campaign prefix narrowed by the tag, then by the shard
    ///   coordinates);
    /// * `--resume` resumes each shard from its own snapshot — this is
    ///   also how per-process `--shard-index` outputs are merged;
    /// * faults can be injected from the environment for smoke tests
    ///   (see [`shard_faults_from_env`]);
    /// * `--deadline` is refused in sharded mode: the supervisor's
    ///   retry/backoff ladder owns the clock.
    pub fn shard_config(&self, tag: &str) -> Result<Option<ShardConfig>, BenchError> {
        let Some(n_shards) = self.shards else {
            if self.shard_index.is_some() {
                return Err(BenchError::Usage(
                    "--shard-index requires --shards <N>".into(),
                ));
            }
            return Ok(None);
        };
        if self.deadline.is_some() {
            return Err(BenchError::Usage(
                "--deadline is not supported with --shards (the shard supervisor \
                 owns the retry/backoff clock)"
                    .into(),
            ));
        }
        if self.shard_index.is_some() && self.checkpoint.is_none() {
            return Err(BenchError::Usage(
                "--shard-index requires --checkpoint <prefix> (the shard snapshot is \
                 the worker's output)"
                    .into(),
            ));
        }
        let prefix = self.checkpoint.as_ref().or(self.resume.as_ref());
        Ok(Some(ShardConfig {
            n_shards,
            checkpoint: prefix.map(|p| {
                let mut os = p.as_os_str().to_owned();
                os.push(format!(".{tag}"));
                PathBuf::from(os)
            }),
            resume: self.resume.is_some(),
            faults: shard_faults_from_env()?,
            ..ShardConfig::default()
        }))
    }
}

/// Parses `LINVAR_SHARD_FAULT=<shard>:<kind>` into an injected-fault
/// list for the sharded bench runs (the ci.sh shard smoke kills one
/// shard and byte-diffs the recovered output against a clean run).
/// Kinds: `kill` (before checkpoint), `killmid` (mid checkpoint write),
/// `corrupt`, `stall:<millis>`, `dup`.
pub fn shard_faults_from_env() -> Result<Vec<(usize, ShardFault)>, BenchError> {
    let Ok(raw) = std::env::var("LINVAR_SHARD_FAULT") else {
        return Ok(Vec::new());
    };
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    let bad = || {
        BenchError::Usage(format!(
            "LINVAR_SHARD_FAULT wants <shard>:<kill|killmid|corrupt|stall:<millis>|dup>, \
             got {raw:?}"
        ))
    };
    let (shard, kind) = raw.split_once(':').ok_or_else(bad)?;
    let shard: usize = shard.trim().parse().map_err(|_| bad())?;
    let fault = match kind.trim() {
        "kill" => ShardFault::KillBeforeCheckpoint,
        "killmid" => ShardFault::KillMidWrite,
        "corrupt" => ShardFault::CorruptCheckpoint,
        "dup" => ShardFault::DuplicateCompletion,
        stall => {
            let millis = stall
                .strip_prefix("stall:")
                .and_then(|m| m.trim().parse().ok())
                .ok_or_else(bad)?;
            ShardFault::Stall { millis }
        }
    };
    Ok(vec![(shard, fault)])
}

/// `f64` as its 16-hex-digit bit pattern — the bins print Monte-Carlo
/// statistics this way on their deterministic `mc` lines, so a resumed
/// run can be string-compared against a clean one (see `ci.sh`).
pub fn bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Looks up a named probability in a spectral result's `(p, value)`
/// quantile list (NaN if the surrogate was not asked for it).
pub fn quantile_at(quantiles: &[(f64, f64)], p: f64) -> f64 {
    quantiles
        .iter()
        .find(|(q, _)| (q - p).abs() < 1e-12)
        .map(|&(_, v)| v)
        .unwrap_or(f64::NAN)
}

/// One-line summary of the per-worker workspace arenas' effect, read
/// from the `ws.*` gauges. The bins print this to stderr next to their
/// timing notes; hit counts depend on scheduling (how samples landed on
/// workers), so this line never goes on a deterministic `mc` line or
/// into the byte-diffed counters section.
pub fn workspace_note() -> String {
    use linvar_metrics::Gauge;
    let hits = linvar_metrics::gauge_value(Gauge::WsHits);
    let misses = linvar_metrics::gauge_value(Gauge::WsMisses);
    let held = linvar_metrics::gauge_value(Gauge::WsBytesHeld);
    let takes = hits + misses;
    if takes == 0 {
        return "workspace arenas: unused".to_string();
    }
    #[allow(clippy::cast_precision_loss)]
    let rate = 100.0 * hits as f64 / takes as f64;
    format!(
        "workspace arenas: {hits} hits / {misses} misses ({rate:.1}% hit rate), \
         peak {:.1} KiB held per run",
        held as f64 / 1024.0
    )
}

/// Renders a simple fixed-width text table with a header row.
///
/// # Example
///
/// ```
/// let t = linvar_bench::render_table(
///     &["circuit", "speedup"],
///     &[vec!["s27".to_string(), "8.1".to_string()]],
/// );
/// assert!(t.contains("s27"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (j, cell) in row.iter().enumerate().take(ncols) {
            widths[j] = widths[j].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&format!("+{sep}+\n"));
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:w$} |", w = w));
    }
    out.push('\n');
    out.push_str(&format!("+{sep}+\n"));
    for row in rows {
        out.push('|');
        for (j, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(j).unwrap_or(&empty);
            out.push_str(&format!(" {cell:w$} |", w = w));
        }
        out.push('\n');
    }
    out.push_str(&format!("+{sep}+\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_cells() {
        let t = render_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        for needle in ["a", "b", "1", "2", "333", "4"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn table_handles_short_rows() {
        let t = render_table(&["x", "y"], &[vec!["only".into()]]);
        assert!(t.contains("only"));
    }

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn args_parse_roundtrip() {
        let a = BenchArgs::parse(argv(&[
            "--quick",
            "--checkpoint",
            "/tmp/t4",
            "--resume",
            "/tmp/t4",
            "--deadline",
            "2.5",
            "--metrics",
            "/tmp/m.json",
        ]))
        .unwrap();
        assert!(a.quick);
        assert_eq!(
            a.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/t4"))
        );
        assert_eq!(a.resume.as_deref(), Some(std::path::Path::new("/tmp/t4")));
        assert_eq!(a.deadline, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(
            a.metrics.as_deref(),
            Some(std::path::Path::new("/tmp/m.json"))
        );
        let none = BenchArgs::parse(argv(&[])).unwrap();
        assert!(!none.quick && none.deadline.is_none() && none.metrics.is_none());
        assert!(none.shards.is_none() && none.shard_index.is_none());
        let sharded = BenchArgs::parse(argv(&["--shards", "4", "--shard-index", "2"])).unwrap();
        assert_eq!(sharded.shards, Some(4));
        assert_eq!(sharded.shard_index, Some(2));
    }

    #[test]
    fn args_reject_bad_usage() {
        for bad in [
            vec!["--frobnicate"],
            vec!["--checkpoint"],
            vec!["--metrics"],
            vec!["--deadline", "soon"],
            vec!["--deadline", "-1"],
            vec!["--shards"],
            vec!["--shards", "0"],
            vec!["--shards", "four"],
            vec!["--shard-index"],
            vec!["--shard-index", "two"],
        ] {
            let err = BenchArgs::parse(argv(&bad)).unwrap_err();
            assert!(matches!(err, BenchError::Usage(_)), "{bad:?} → {err}");
            assert_eq!(err.exit_code(), 2);
        }
    }

    #[test]
    fn campaign_config_derivation() {
        let a =
            BenchArgs::parse(argv(&["--checkpoint", "/tmp/pfx", "--resume", "/tmp/pfx"])).unwrap();
        let cfg = a.campaign_config("s27.10", Instant::now());
        assert_eq!(
            cfg.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/pfx.s27.10.ckpt"))
        );
        // The resume snapshot does not exist, so the campaign starts
        // fresh instead of failing.
        assert!(cfg.resume.is_none());
        assert!(cfg.deadline.is_none());
    }

    #[test]
    fn campaign_flags_rejected_for_non_campaign_bins() {
        let plain = BenchArgs::parse(argv(&["--quick", "--metrics", "/tmp/m.json"])).unwrap();
        assert!(plain.reject_campaign_flags("example1").is_ok());
        for flags in [
            vec!["--checkpoint", "/tmp/p"],
            vec!["--resume", "/tmp/p"],
            vec!["--deadline", "1"],
        ] {
            let a = BenchArgs::parse(argv(&flags)).unwrap();
            let err = a.reject_campaign_flags("example1").unwrap_err();
            assert_eq!(err.exit_code(), 2, "{flags:?}");
        }
    }

    #[test]
    fn shard_config_derivation_and_validation() {
        // No --shards → no sharded mode.
        let plain = BenchArgs::parse(argv(&["--quick"])).unwrap();
        assert!(plain.shard_config("s27.10").unwrap().is_none());
        // --shard-index without --shards is a usage error even when the
        // bin would otherwise run unsharded.
        let orphan = BenchArgs::parse(argv(&["--shard-index", "1"])).unwrap();
        assert_eq!(orphan.shard_config("t").unwrap_err().exit_code(), 2);
        // --deadline belongs to the unsharded campaign driver.
        let clash = BenchArgs::parse(argv(&["--shards", "2", "--deadline", "1"])).unwrap();
        assert_eq!(clash.shard_config("t").unwrap_err().exit_code(), 2);
        // A per-process shard worker's snapshot IS its output.
        let worker = BenchArgs::parse(argv(&["--shards", "2", "--shard-index", "0"])).unwrap();
        assert_eq!(worker.shard_config("t").unwrap_err().exit_code(), 2);
        // The shard prefix narrows the campaign prefix by the tag;
        // --resume flips resume on and can supply the prefix alone.
        let cfg = BenchArgs::parse(argv(&["--shards", "4", "--checkpoint", "/tmp/pfx"]))
            .unwrap()
            .shard_config("s27.10")
            .unwrap()
            .unwrap();
        assert_eq!(cfg.n_shards, 4);
        assert!(!cfg.resume);
        assert_eq!(
            cfg.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/pfx.s27.10"))
        );
        let resumed = BenchArgs::parse(argv(&["--shards", "4", "--resume", "/tmp/pfx"]))
            .unwrap()
            .shard_config("s27.10")
            .unwrap()
            .unwrap();
        assert!(resumed.resume);
        assert_eq!(
            resumed.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/pfx.s27.10"))
        );
    }

    #[test]
    fn shard_fault_env_parsing() {
        // One test owns the env var end to end so parallel tests never
        // observe a transient value.
        std::env::remove_var("LINVAR_SHARD_FAULT");
        assert!(shard_faults_from_env().unwrap().is_empty());
        let cases: &[(&str, (usize, ShardFault))] = &[
            ("1:kill", (1, ShardFault::KillBeforeCheckpoint)),
            ("0:killmid", (0, ShardFault::KillMidWrite)),
            ("2:corrupt", (2, ShardFault::CorruptCheckpoint)),
            ("3:stall:250", (3, ShardFault::Stall { millis: 250 })),
            ("1:dup", (1, ShardFault::DuplicateCompletion)),
        ];
        for (raw, want) in cases {
            std::env::set_var("LINVAR_SHARD_FAULT", raw);
            assert_eq!(shard_faults_from_env().unwrap(), vec![*want], "{raw}");
        }
        for bad in ["nonsense", "x:kill", "1:stab", "1:stall:", "1:stall:soon"] {
            std::env::set_var("LINVAR_SHARD_FAULT", bad);
            let err = shard_faults_from_env().unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad}");
        }
        std::env::remove_var("LINVAR_SHARD_FAULT");
    }

    #[test]
    fn shard_flags_rejected_for_unsharded_bins() {
        let plain = BenchArgs::parse(argv(&["--quick"])).unwrap();
        assert!(plain.reject_shard_flags("table5").is_ok());
        for flags in [
            vec!["--shards", "2"],
            vec!["--shards", "2", "--shard-index", "0"],
        ] {
            let a = BenchArgs::parse(argv(&flags)).unwrap();
            let err = a.reject_shard_flags("table5").unwrap_err();
            assert_eq!(err.exit_code(), 2, "{flags:?}");
        }
    }

    #[test]
    fn engine_flag_parsing_and_validation() {
        assert_eq!(BenchArgs::parse(argv(&[])).unwrap().engine, Engine::Mc);
        for (raw, want) in [
            ("mc", Engine::Mc),
            ("gpc", Engine::Gpc),
            ("sobol", Engine::Sobol),
        ] {
            let a = BenchArgs::parse(argv(&["--engine", raw])).unwrap();
            assert_eq!(a.engine, want, "{raw}");
            assert_eq!(a.engine.name(), raw);
        }
        let bad = BenchArgs::parse(argv(&["--engine", "qmc"])).unwrap_err();
        assert_eq!(bad.exit_code(), 2);
        // Single-engine bins refuse a non-default engine; multi-engine
        // bins refuse sharding for non-MC engines.
        let gpc = BenchArgs::parse(argv(&["--engine", "gpc"])).unwrap();
        assert_eq!(
            gpc.validate_engine("table5", false)
                .unwrap_err()
                .exit_code(),
            2
        );
        assert!(gpc.validate_engine("table4", true).is_ok());
        let sharded = BenchArgs::parse(argv(&["--engine", "gpc", "--shards", "2"])).unwrap();
        assert_eq!(
            sharded
                .validate_engine("table4", true)
                .unwrap_err()
                .exit_code(),
            2
        );
        let mc_sharded = BenchArgs::parse(argv(&["--shards", "2"])).unwrap();
        assert!(mc_sharded.validate_engine("table4", true).is_ok());
    }

    #[test]
    fn analysis_flag_parsing_and_rejection() {
        assert_eq!(
            BenchArgs::parse(argv(&[])).unwrap().analysis,
            AnalysisKind::Transient
        );
        let ac = BenchArgs::parse(argv(&["--analysis", "ac"])).unwrap();
        assert_eq!(ac.analysis, AnalysisKind::Ac);
        assert_eq!(
            ac.reject_analysis_flag("table4").unwrap_err().exit_code(),
            2
        );
        let tran = BenchArgs::parse(argv(&["--analysis", "tran"])).unwrap();
        assert!(tran.reject_analysis_flag("table4").is_ok());
        for bad in [["--analysis", "dc"], ["--analysis", "irdrop"]] {
            assert_eq!(BenchArgs::parse(argv(&bad)).unwrap_err().exit_code(), 2);
        }
    }

    #[test]
    fn exit_codes_by_class() {
        use linvar_stats::CheckpointError;
        assert_eq!(BenchError::Usage("x".into()).exit_code(), 2);
        assert_eq!(
            BenchError::Checkpoint(CheckpointError::Malformed { reason: "x".into() }).exit_code(),
            3
        );
        assert_eq!(BenchError::Msg("x".into()).exit_code(), 1);
        // Core-wrapped checkpoint errors keep the checkpoint exit code.
        let wrapped: BenchError =
            linvar_core::CoreError::Checkpoint(CheckpointError::ChecksumMismatch {
                expected: 1,
                found: 2,
            })
            .into();
        assert_eq!(wrapped.exit_code(), 3);
    }

    #[test]
    fn bits_hex_is_deterministic_text() {
        assert_eq!(bits_hex(1.0), "3ff0000000000000");
        assert_eq!(bits_hex(0.0), "0000000000000000");
    }
}
