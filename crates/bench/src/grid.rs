//! Shared evaluation logic for the `acgrid` IR-drop benchmark.
//!
//! Mirrors [`crate::chains`], with the transient delay metric replaced
//! by the worst-case DC IR drop of a stochastic power grid
//! ([`linvar_interconnect::grid`]). Lives in the library so the golden
//! fixture at the workspace root drives exactly the code the benchmark
//! runs. The `mc` rows round to `%.6e`, coarse enough that the dense and
//! sparse backends print byte-identical lines — the property `ci.sh`
//! diffs and `tests/golden_fixtures.rs` pins. Fingerprints fold
//! [`AnalysisKind::IrDrop`], so grid checkpoints refuse to resume a
//! transient or AC campaign of the same shape.

use crate::BenchError;
use linvar_interconnect::{ir_drop_for_sample, GridCase};
use linvar_numeric::SolverChoice;
use linvar_stats::sampling::lhs_normal_streamed;
use linvar_stats::{
    fingerprint_str, fingerprint_words, monte_carlo_par, run_sharded_campaign, run_spectral,
    sobol_normal_streamed, AnalysisKind, CampaignFingerprint, MonteCarloResult, RecoveryPolicy,
    SampleStatus, ShardConfig, ShardedCampaignResult, SpectralConfig, SpectralPlan, SpectralResult,
};

/// Master seed of the grid campaigns (fixtures depend on it).
pub const GRID_SEED: u64 = 0x00961d;

/// Per-parameter sigma of the W/T/S/H/ρ fluctuations (normalized units,
/// same 0.33 as the chains workload so the engines share a germ scale).
pub const GRID_SIGMA: f64 = 0.33;

/// Deterministic variation samples for a grid campaign: `n` streamed-LHS
/// draws of the five normalized wire parameters, a pure function of the
/// seed — never of thread count or evaluation order.
pub fn sample_set(n: usize) -> Vec<Vec<f64>> {
    lhs_normal_streamed(GRID_SEED, n, 5, GRID_SIGMA)
}

/// The Sobol quasi-MC counterpart of [`sample_set`]: same seed, same
/// dimensions and σ, drawn from the digitally-shifted Sobol sequence.
pub fn sample_set_sobol(n: usize) -> Vec<Vec<f64>> {
    sobol_normal_streamed(GRID_SEED, n, 5, GRID_SIGMA)
}

/// Evaluates one Monte-Carlo sample: freeze the grid at `w`, solve the
/// DC operating point on the requested backend, and return the worst IR
/// drop over the loaded nodes.
///
/// # Errors
///
/// Returns [`BenchError`] if the DC solve fails or produces a
/// non-finite node voltage.
pub fn drop_for_sample(
    case: &GridCase,
    w: &[f64],
    solver: SolverChoice,
) -> Result<f64, BenchError> {
    ir_drop_for_sample(case, w, solver).map_err(|e| BenchError::Msg(format!("{}: {e}", case.name)))
}

/// Runs the IR-drop campaign for one case on one backend.
///
/// # Errors
///
/// Returns [`BenchError`] if every sample fails (per-sample failures
/// are reported in the result, not raised).
pub fn run_case(
    case: &GridCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
) -> Result<MonteCarloResult, BenchError> {
    let mc = monte_carlo_par(samples, threads, |w: &Vec<f64>| {
        drop_for_sample(case, w, solver)
    });
    if mc.summary.n == 0 {
        return Err(BenchError::Msg(format!(
            "{}: all {} samples failed ({})",
            case.name,
            samples.len(),
            mc.first_error.as_deref().unwrap_or("no error recorded")
        )));
    }
    Ok(mc)
}

/// Campaign fingerprint of one grid case: seed, sample-set shape, the
/// case name, and [`AnalysisKind::IrDrop`] folded into the model hash —
/// a grid snapshot refuses to resume a transient or AC campaign even if
/// every other coordinate matches.
pub fn grid_fingerprint(case_name: &str, n_samples: usize) -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: GRID_SEED,
        n_samples,
        policy: RecoveryPolicy::strict(),
        model: fingerprint_words([
            fingerprint_str(case_name),
            AnalysisKind::IrDrop.fingerprint_word(),
            n_samples as u64,
            5,
        ]),
    }
}

/// Runs the IR-drop campaign for one case under the shard supervisor.
/// The merged statistics are bitwise-identical to [`run_case`] over the
/// same samples.
///
/// # Errors
///
/// Returns [`BenchError`] on a shard-plan problem or if every sample
/// failed.
pub fn run_case_sharded(
    case: &GridCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    config: &ShardConfig,
) -> Result<ShardedCampaignResult, BenchError> {
    let fp = grid_fingerprint(&case.name, samples.len());
    let sharded = run_sharded_campaign(
        samples,
        threads,
        RecoveryPolicy::strict(),
        config,
        &fp,
        |w: &Vec<f64>, _attempt| {
            drop_for_sample(case, w, solver)
                .map(|d| (d, SampleStatus::Clean))
                .map_err(|e| e.to_string())
        },
    )
    .map_err(|e| BenchError::Core(e.into()))?;
    if sharded.summary.n == 0 {
        return Err(BenchError::Msg(format!(
            "{}: all {} samples failed ({})",
            case.name,
            samples.len(),
            sharded
                .first_error
                .as_deref()
                .unwrap_or("no error recorded")
        )));
    }
    Ok(sharded)
}

/// The spectral grid every acgrid gPC run uses — same Smolyak level-1,
/// degree-2 plan over five parameters as the chains workload (11 DC
/// solves per case).
pub const GRID_GPC_CONFIG: SpectralConfig = SpectralConfig {
    order: 2,
    level: 1,
    grid: linvar_stats::GridKind::Smolyak,
};

/// Runs the gPC IR-drop analysis for one case on one backend:
/// [`GRID_GPC_CONFIG`] with the germ scaled by [`GRID_SIGMA`], each
/// node evaluated by [`drop_for_sample`]. Deterministic at any thread
/// count.
///
/// # Errors
///
/// Returns [`BenchError`] on a plan failure, a failed node, or a failed
/// coefficient solve.
pub fn run_case_spectral(
    case: &GridCase,
    threads: usize,
    solver: SolverChoice,
) -> Result<SpectralResult, BenchError> {
    let plan = SpectralPlan::build(5, GRID_GPC_CONFIG)
        .map_err(|e| BenchError::Msg(format!("{}: {e}", case.name)))?;
    run_spectral(
        &plan,
        threads,
        RecoveryPolicy::strict(),
        GRID_SEED,
        |node, _attempt| {
            let w: Vec<f64> = node.iter().map(|x| x * GRID_SIGMA).collect();
            drop_for_sample(case, &w, solver)
                .map(|d| (d, SampleStatus::Clean))
                .map_err(|e| e.to_string())
        },
    )
    .map_err(|e| BenchError::Msg(format!("{}: {e}", case.name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::{gpc_line, mc_line};
    use linvar_interconnect::{power_grid_case, PowerGridSpec, WireTech};

    fn quick_case() -> GridCase {
        power_grid_case(&PowerGridSpec::new(8, 8, WireTech::m018())).unwrap()
    }

    #[test]
    fn samples_are_seeded_and_distinct_from_chains() {
        let a = sample_set(8);
        assert_eq!(a, sample_set(8));
        assert!(a.iter().all(|w| w.len() == 5));
        assert_ne!(
            a,
            crate::chains::sample_set(8),
            "grid and chains streams must differ (different master seeds)"
        );
        let s = sample_set_sobol(8);
        assert_eq!(s, sample_set_sobol(8));
        assert_ne!(s, a, "sobol and LHS streams must differ");
    }

    #[test]
    fn mc_rows_match_across_backends_and_threads() {
        let case = quick_case();
        let samples = sample_set(6);
        let d = run_case(&case, &samples, 1, SolverChoice::Dense).unwrap();
        let s = run_case(&case, &samples, 2, SolverChoice::Sparse).unwrap();
        assert_eq!(
            mc_line(&case.name, &d.summary, d.failures),
            mc_line(&case.name, &s.summary, s.failures)
        );
        assert_eq!(d.failures, 0);
        assert!(d.summary.mean > 0.0);
    }

    #[test]
    fn sharded_rows_match_unsharded() {
        let case = quick_case();
        let samples = sample_set(6);
        let base = run_case(&case, &samples, 1, SolverChoice::Sparse).unwrap();
        let base_line = mc_line(&case.name, &base.summary, base.failures);
        let cfg = ShardConfig {
            n_shards: 3,
            ..ShardConfig::default()
        };
        let sharded = run_case_sharded(&case, &samples, 2, SolverChoice::Sparse, &cfg).unwrap();
        assert_eq!(
            mc_line(&case.name, &sharded.summary, sharded.failures),
            base_line
        );
    }

    #[test]
    fn gpc_rows_match_across_backends_and_threads() {
        let case = quick_case();
        let dense = run_case_spectral(&case, 1, SolverChoice::Dense).unwrap();
        let sparse = run_case_spectral(&case, 2, SolverChoice::Sparse).unwrap();
        assert_eq!(dense.nodes_evaluated, 11, "smolyak level-1 grid in 5 dims");
        assert_eq!(gpc_line(&case.name, &dense), gpc_line(&case.name, &sparse));
        assert!(dense.mean > 0.0 && dense.std >= 0.0);
    }

    #[test]
    fn fingerprint_separates_analyses_and_cases() {
        let ir = grid_fingerprint("grid8x8", 16);
        let other_case = grid_fingerprint("grid16x16", 16);
        assert_ne!(ir.model, other_case.model);
        let chains = crate::chains::chains_fingerprint("grid8x8", 16);
        assert_ne!(
            ir.model, chains.model,
            "IR-drop campaigns must not resume transient snapshots"
        );
    }
}
