//! The machine-readable bench trajectory: every benchmark binary wraps
//! its run in a [`BenchMeter`], which enables the [`linvar_metrics`]
//! sink, lets the bin attach run-level facts (accuracy deltas, speedup
//! ratios, sample counts), and on completion writes a canonical-JSON
//! report — `BENCH_<bin>.json` next to the process, plus a copy at
//! `--metrics <path>` when given.
//!
//! The report has four top-level sections (keys sorted, 2-space indent):
//!
//! * `"bench"` — bin name, wall time, and whatever the bin attached via
//!   [`BenchMeter::set`];
//! * `"counters"` — the deterministic work counts (identical for the
//!   same seed at any thread count, modulo the fail-fast/deadline
//!   caveats documented in `linvar_metrics`) — this is the section CI
//!   diffs between same-seed runs;
//! * `"gauges"` — run-dependent scalars (wall seconds, samples/sec);
//! * `"timers"` — per-phase call counts, total nanoseconds, and log2-ns
//!   histograms.

use crate::{BenchArgs, BenchError};
use linvar_metrics::Json;
use std::path::PathBuf;
use std::time::Instant;

/// Observability harness for one benchmark binary run.
///
/// Construct with [`BenchMeter::start`] as the first act of `run()`
/// (it resets and enables the metrics sink), attach run-level facts
/// with [`BenchMeter::set`], and call [`BenchMeter::finish`] last.
#[derive(Debug)]
pub struct BenchMeter {
    bin: &'static str,
    start: Instant,
    extra: Json,
}

impl BenchMeter {
    /// Resets and enables the process-wide metrics sink and starts the
    /// wall clock. `bin` names the output file: `BENCH_<bin>.json`.
    pub fn start(bin: &'static str) -> BenchMeter {
        linvar_metrics::reset();
        linvar_metrics::enable();
        BenchMeter {
            bin,
            start: Instant::now(),
            extra: Json::obj(),
        }
    }

    /// Attaches a bin-specific entry to the report's `bench` section
    /// (accuracy deltas, speedup ratios, configuration names, …).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.extra.set(key, value);
        self
    }

    /// Finalizes the trajectory: folds this thread's local buffers into
    /// the sink, snapshots it, derives run-level gauges, and writes the
    /// report to `BENCH_<bin>.json` (and to `--metrics <path>` if set).
    ///
    /// # Errors
    ///
    /// [`BenchError::Msg`] if a report file cannot be written.
    pub fn finish(self, args: &BenchArgs) -> Result<(), BenchError> {
        linvar_metrics::flush_local();
        let wall = self.start.elapsed().as_secs_f64();
        let mut report = linvar_metrics::snapshot();
        report.set_gauge("wall_seconds", wall);
        let completed = report
            .counters
            .get("mc.samples_completed")
            .copied()
            .unwrap_or(0);
        if completed > 0 && wall > 0.0 {
            report.set_gauge("mc.samples_per_sec", completed as f64 / wall);
        }
        let mut bench = self.extra;
        bench.set("bin", self.bin);
        bench.set("quick", args.quick);
        bench.set("wall_seconds", wall);
        let mut top = report.to_json_value();
        top.set("bench", bench);
        let text = top.render();
        let default_path = PathBuf::from(format!("BENCH_{}.json", self.bin));
        write_report(&default_path, &text)?;
        if let Some(path) = &args.metrics {
            write_report(path, &text)?;
        }
        Ok(())
    }
}

fn write_report(path: &std::path::Path, text: &str) -> Result<(), BenchError> {
    std::fs::write(path, text)
        .map_err(|e| BenchError::Msg(format!("cannot write metrics report {path:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_writes_canonical_report_with_bench_section() {
        let _guard = linvar_metrics::test_lock();
        let dir = std::env::temp_dir().join("linvar_meter_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("meter.json");
        let mut meter = BenchMeter::start("metertest");
        linvar_metrics::incr(linvar_metrics::Counter::McSamplesCompleted);
        meter.set("speedup", 8.5);
        let args = BenchArgs {
            metrics: Some(out.clone()),
            ..BenchArgs::default()
        };
        // finish() also writes BENCH_metertest.json into the CWD; point
        // the CWD-relative default at the temp dir via the --metrics copy
        // and check both exist.
        let cwd = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let res = meter.finish(&args);
        std::env::set_current_dir(cwd).unwrap();
        res.unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let default = std::fs::read_to_string(dir.join("BENCH_metertest.json")).unwrap();
        assert_eq!(text, default, "--metrics copy must match the default");
        for needle in [
            "\"bench\"",
            "\"bin\": \"metertest\"",
            "\"speedup\": 8.5",
            "\"counters\"",
            "\"mc.samples_completed\": 1",
            "\"gauges\"",
            "\"wall_seconds\"",
            "\"timers\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(text.ends_with('\n'));
        linvar_metrics::disable();
        linvar_metrics::reset();
    }
}
