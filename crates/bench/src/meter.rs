//! The machine-readable bench trajectory: every benchmark binary wraps
//! its run in a [`BenchMeter`], which enables the [`linvar_metrics`]
//! sink, lets the bin attach run-level facts (accuracy deltas, speedup
//! ratios, sample counts), and on completion writes a canonical-JSON
//! report — `BENCH_<bin>.json` next to the process, plus a copy at
//! `--metrics <path>` when given.
//!
//! The report has four top-level sections (keys sorted, 2-space indent):
//!
//! * `"bench"` — bin name, wall time, and whatever the bin attached via
//!   [`BenchMeter::set`];
//! * `"counters"` — the deterministic work counts (identical for the
//!   same seed at any thread count, modulo the fail-fast/deadline
//!   caveats documented in `linvar_metrics`) — this is the section CI
//!   diffs between same-seed runs;
//! * `"gauges"` — run-dependent scalars (wall seconds, samples/sec);
//! * `"timers"` — per-phase call counts, total nanoseconds, and log2-ns
//!   histograms.

use crate::{BenchArgs, BenchError};
use linvar_metrics::Json;
use std::path::PathBuf;
use std::time::Instant;

/// Observability harness for one benchmark binary run.
///
/// Construct with [`BenchMeter::start`] as the first act of `run()`
/// (it resets and enables the metrics sink), attach run-level facts
/// with [`BenchMeter::set`], and call [`BenchMeter::finish`] last.
#[derive(Debug)]
pub struct BenchMeter {
    bin: &'static str,
    start: Instant,
    extra: Json,
}

impl BenchMeter {
    /// Resets and enables the process-wide metrics sink and starts the
    /// wall clock. `bin` names the output file: `BENCH_<bin>.json`.
    pub fn start(bin: &'static str) -> BenchMeter {
        linvar_metrics::reset();
        linvar_metrics::enable();
        BenchMeter {
            bin,
            start: Instant::now(),
            extra: Json::obj(),
        }
    }

    /// Attaches a bin-specific entry to the report's `bench` section
    /// (accuracy deltas, speedup ratios, configuration names, …).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.extra.set(key, value);
        self
    }

    /// Finalizes the trajectory: folds this thread's local buffers into
    /// the sink, snapshots it, derives run-level gauges, and writes the
    /// report to `BENCH_<bin>.json` (and to `--metrics <path>` if set).
    ///
    /// # Errors
    ///
    /// [`BenchError::Msg`] if a report file cannot be written.
    pub fn finish(self, args: &BenchArgs) -> Result<(), BenchError> {
        linvar_metrics::flush_local();
        let wall = self.start.elapsed().as_secs_f64();
        let mut report = linvar_metrics::snapshot();
        report.set_gauge("wall_seconds", wall);
        let completed = report
            .counters
            .get("mc.samples_completed")
            .copied()
            .unwrap_or(0);
        if completed > 0 && wall > 0.0 {
            report.set_gauge("mc.samples_per_sec", completed as f64 / wall);
        }
        self.append_trajectory(args, wall, &report)?;
        let mut bench = self.extra;
        bench.set("bin", self.bin);
        bench.set("quick", args.quick);
        bench.set("wall_seconds", wall);
        let mut top = report.to_json_value();
        top.set("bench", bench);
        let text = top.render();
        let default_path = PathBuf::from(format!("BENCH_{}.json", self.bin));
        write_report(&default_path, &text)?;
        if let Some(path) = &args.metrics {
            write_report(path, &text)?;
        }
        Ok(())
    }

    /// Appends a compact perf entry to the trajectory file named by
    /// `LINVAR_TRAJECTORY` (no-op when unset). The file is a JSON array;
    /// a missing or empty file starts as `[]`. `LINVAR_TRAJECTORY_LABEL`
    /// tags the entry (e.g. `before-workspace` / `after-workspace`) so
    /// consecutive comparable entries can be diffed by CI.
    fn append_trajectory(
        &self,
        args: &BenchArgs,
        wall: f64,
        report: &linvar_metrics::MetricsReport,
    ) -> Result<(), BenchError> {
        let Ok(path) = std::env::var("LINVAR_TRAJECTORY") else {
            return Ok(());
        };
        if path.is_empty() {
            return Ok(());
        }
        let label = std::env::var("LINVAR_TRAJECTORY_LABEL").unwrap_or_default();
        let mut entry = Json::obj();
        entry.set("bin", self.bin);
        entry.set("label", label);
        entry.set("quick", args.quick);
        entry.set("wall_seconds", wall);
        for key in [
            "mc.samples_per_sec",
            "ws.hits",
            "ws.misses",
            "ws.bytes_held",
        ] {
            if let Some(&v) = report.gauges.get(key) {
                entry.set(key, v);
            }
        }
        if let Some(&n) = report.counters.get("mc.samples_completed") {
            entry.set("mc.samples_completed", n);
        }
        // Record the worker count when pinned, so trajectory consumers
        // (e.g. the ci.sh regression gate) only compare like-for-like runs.
        if let Some(t) = std::env::var("LINVAR_THREADS")
            .ok()
            .and_then(|t| t.parse::<u64>().ok())
        {
            entry.set("threads", t);
        }
        // Indent the rendered entry one array level deep.
        let rendered = entry.render();
        let indented: String = rendered
            .trim_end()
            .lines()
            .map(|l| format!("  {l}\n"))
            .collect();
        let indented = indented.trim_end();
        let path = std::path::Path::new(&path);
        let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "[]".to_string());
        let body = existing.trim_end();
        let body = body.strip_suffix(']').ok_or_else(|| {
            BenchError::Msg(format!(
                "trajectory file {path:?} is not a JSON array (missing trailing ']')"
            ))
        })?;
        let body = body.trim_end();
        let updated = if body == "[" {
            format!("[\n{indented}\n]\n")
        } else {
            format!("{body},\n{indented}\n]\n")
        };
        std::fs::write(path, updated)
            .map_err(|e| BenchError::Msg(format!("cannot append trajectory {path:?}: {e}")))
    }
}

fn write_report(path: &std::path::Path, text: &str) -> Result<(), BenchError> {
    std::fs::write(path, text)
        .map_err(|e| BenchError::Msg(format!("cannot write metrics report {path:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_writes_canonical_report_with_bench_section() {
        let _guard = linvar_metrics::test_lock();
        let dir = std::env::temp_dir().join("linvar_meter_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("meter.json");
        let mut meter = BenchMeter::start("metertest");
        linvar_metrics::incr(linvar_metrics::Counter::McSamplesCompleted);
        meter.set("speedup", 8.5);
        let args = BenchArgs {
            metrics: Some(out.clone()),
            ..BenchArgs::default()
        };
        // finish() also writes BENCH_metertest.json into the CWD; point
        // the CWD-relative default at the temp dir via the --metrics copy
        // and check both exist.
        let cwd = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let res = meter.finish(&args);
        std::env::set_current_dir(cwd).unwrap();
        res.unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let default = std::fs::read_to_string(dir.join("BENCH_metertest.json")).unwrap();
        assert_eq!(text, default, "--metrics copy must match the default");
        for needle in [
            "\"bench\"",
            "\"bin\": \"metertest\"",
            "\"speedup\": 8.5",
            "\"counters\"",
            "\"mc.samples_completed\": 1",
            "\"gauges\"",
            "\"wall_seconds\"",
            "\"timers\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(text.ends_with('\n'));
        linvar_metrics::disable();
        linvar_metrics::reset();
    }

    #[test]
    fn trajectory_appends_labeled_entries_in_order() {
        let _guard = linvar_metrics::test_lock();
        let dir = std::env::temp_dir().join("linvar_trajectory_test");
        std::fs::create_dir_all(&dir).unwrap();
        let traj = dir.join("BENCH_trajectory.json");
        let _ = std::fs::remove_file(&traj);
        std::env::set_var("LINVAR_TRAJECTORY", &traj);
        let args = BenchArgs::default();
        let cwd = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let run = |label: &str| {
            std::env::set_var("LINVAR_TRAJECTORY_LABEL", label);
            let meter = BenchMeter::start("trajtest");
            linvar_metrics::incr(linvar_metrics::Counter::McSamplesCompleted);
            meter.finish(&args).unwrap();
        };
        run("before");
        run("after");
        std::env::set_current_dir(cwd).unwrap();
        std::env::remove_var("LINVAR_TRAJECTORY");
        std::env::remove_var("LINVAR_TRAJECTORY_LABEL");
        let text = std::fs::read_to_string(&traj).unwrap();
        let before = text.find("\"label\": \"before\"").expect("first entry");
        let after = text.find("\"label\": \"after\"").expect("second entry");
        assert!(before < after, "entries must append in run order:\n{text}");
        assert!(text.trim_end().ends_with(']'), "file stays a JSON array");
        assert_eq!(text.matches("\"bin\": \"trajtest\"").count(), 2);
        linvar_metrics::disable();
        linvar_metrics::reset();
    }
}
