//! Criterion benchmark of the Figure-5 comparison: one Monte-Carlo sample
//! of a logic stage through the linear-centric engine vs the SPICE
//! baseline, as a function of interconnect size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linvar_core::path::{PathModel, PathSample, PathSpec};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use std::hint::black_box;

fn build(n_elem: usize) -> PathModel {
    let spec = PathSpec {
        cells: vec!["inv".into()],
        linear_elements_between_stages: n_elem,
        input_slew: 50e-12,
    };
    PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds")
}

fn bench_stage_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_sample");
    group.sample_size(10);
    let sample = PathSample {
        wire: [0.2, -0.1, 0.3, -0.2, 0.1],
        device: Default::default(),
    };
    for &n_elem in &[10usize, 100, 500] {
        let model = build(n_elem);
        group.bench_with_input(BenchmarkId::new("framework", n_elem), &n_elem, |b, _| {
            b.iter(|| {
                model
                    .evaluate_sample(black_box(&sample))
                    .expect("evaluates")
            });
        });
        // The baseline at 500 elements takes ~1.3 s per call; keep it in
        // the benchmark — that gap IS the result.
        group.bench_with_input(BenchmarkId::new("spice", n_elem), &n_elem, |b, _| {
            b.iter(|| {
                model
                    .evaluate_sample_spice(black_box(&sample))
                    .expect("evaluates")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stage_sample);
criterion_main!(benches);
