//! Criterion microbenchmarks of the model-order-reduction pipeline:
//! PRIMA/PACT reduction, variational-library characterization, per-sample
//! ROM evaluation, pole/residue extraction and stabilization.
//!
//! These quantify the framework's construction-vs-evaluation cost split:
//! the per-sample steps must be orders of magnitude cheaper than the
//! one-time characterization for the Monte-Carlo flow to pay off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linvar_circuit::VariationalMna;
use linvar_interconnect::{builder::build_coupled_lines, CoupledLineSpec, WireTech};
use linvar_mor::{
    extract_pole_residue, pact_reduce, prima_reduce, stabilize, ReductionMethod, VariationalRom,
};
use std::hint::black_box;

fn line_var(n_segments: usize) -> VariationalMna {
    let spec = CoupledLineSpec::new(2, n_segments as f64 * 1e-6, WireTech::m018());
    let built = build_coupled_lines(&spec).expect("valid spec");
    let mut var = built.netlist.assemble_variational().expect("assembles");
    // Fold a driver conductance so G is nonsingular.
    for k in 0..2 {
        let idx = var.port_indices[k];
        var.add_grounded_conductance(idx, 1e-3).expect("in range");
    }
    var
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    group.sample_size(10);
    for &segs in &[25usize, 100, 250] {
        let var = line_var(segs);
        let b = var.port_incidence();
        group.bench_with_input(BenchmarkId::new("prima_order8", segs), &segs, |bch, _| {
            bch.iter(|| prima_reduce(&var.g0, &var.c0, &b, 8).expect("reduces"));
        });
        group.bench_with_input(BenchmarkId::new("pact_4modes", segs), &segs, |bch, _| {
            bch.iter(|| pact_reduce(&var.g0, &var.c0, &var.port_indices, 4).expect("reduces"));
        });
    }
    group.finish();
}

fn bench_variational(c: &mut Criterion) {
    let mut group = c.benchmark_group("variational");
    group.sample_size(10);
    let var = line_var(100);
    group.bench_function("characterize_5params", |b| {
        b.iter(|| {
            VariationalRom::characterize(&var, ReductionMethod::Prima { order: 8 }, 0.02)
                .expect("characterizes")
        });
    });
    let vrom = VariationalRom::characterize(&var, ReductionMethod::Prima { order: 8 }, 0.02)
        .expect("characterizes");
    let w = [0.3, -0.2, 0.1, 0.4, -0.5];
    group.bench_function("evaluate_sample", |b| {
        b.iter(|| vrom.evaluate(black_box(&w)));
    });
    group.bench_function("evaluate_exact_sample", |b| {
        b.iter(|| vrom.evaluate_exact(&var, black_box(&w)).expect("reduces"));
    });
    group.finish();
}

fn bench_poleres(c: &mut Criterion) {
    let mut group = c.benchmark_group("poleres");
    group.sample_size(20);
    let var = line_var(100);
    let vrom = VariationalRom::characterize(&var, ReductionMethod::Prima { order: 8 }, 0.02)
        .expect("characterizes");
    let rom = vrom
        .evaluate(&[0.5, 0.5, -0.5, 0.5, 0.5])
        .expect("evaluates");
    group.bench_function("extract_order8", |b| {
        b.iter(|| extract_pole_residue(black_box(&rom)).expect("extracts"));
    });
    let pr = extract_pole_residue(&rom).expect("extracts");
    group.bench_function("stabilize", |b| {
        b.iter(|| stabilize(black_box(&pr)));
    });
    group.finish();
}

criterion_group!(benches, bench_reduction, bench_variational, bench_poleres);
criterion_main!(benches);
