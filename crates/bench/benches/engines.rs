//! Criterion microbenchmarks of the two simulation engines' kernels:
//! the SPICE transient on an RC ladder, the TETA recursive-convolution
//! step, and the numeric primitives they lean on (LU, eigensolver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linvar_circuit::{Netlist, SourceWaveform};
use linvar_numeric::{eigen_decompose, LuFactor, Matrix};
use linvar_spice::{Transient, TransientOptions};
use std::hint::black_box;

fn rc_ladder(n: usize) -> Netlist {
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    nl.add_vsource(
        "V1",
        inp,
        Netlist::GROUND,
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.0,
            t0: 10e-12,
            tr: 50e-12,
        },
    )
    .expect("adds");
    let mut prev = inp;
    for k in 0..n {
        let next = nl.node(&format!("n{k}"));
        nl.add_resistor(&format!("R{k}"), prev, next, 10.0)
            .expect("adds");
        nl.add_capacitor(&format!("C{k}"), next, Netlist::GROUND, 5e-15)
            .expect("adds");
        prev = next;
    }
    nl
}

fn bench_spice_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("spice_transient");
    group.sample_size(10);
    for &n in &[25usize, 100, 250] {
        let nl = rc_ladder(n);
        group.bench_with_input(BenchmarkId::new("rc_ladder_1ns", n), &n, |b, _| {
            b.iter(|| {
                let opts = TransientOptions::new(1e-9, 1e-12);
                Transient::new(&nl, &opts)
                    .expect("builds")
                    .run()
                    .expect("runs")
            });
        });
    }
    group.finish();
}

fn bench_numeric(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric");
    group.sample_size(20);
    for &n in &[50usize, 150, 300] {
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 8.0 } else { 0.0 });
        group.bench_with_input(BenchmarkId::new("lu_factor", n), &n, |b, _| {
            b.iter(|| LuFactor::new(black_box(&a)).expect("factors"));
        });
    }
    // The eigensolver runs on reduced models only (order ≤ ~40).
    for &n in &[8usize, 16, 32] {
        let mut state = 11u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        group.bench_with_input(BenchmarkId::new("eigen_decompose", n), &n, |b, _| {
            b.iter(|| eigen_decompose(black_box(&a)).expect("decomposes"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spice_transient, bench_numeric);
criterion_main!(benches);
