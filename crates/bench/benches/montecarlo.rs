//! Criterion benchmark of the Monte-Carlo execution engine: the serial
//! driver vs the deterministic parallel driver at 1/2/4/8 worker threads
//! on the Table-4 s27 workload (longest path, 10 linear elements between
//! stages, 100 samples, the example3_table4 variation sources).
//!
//! On a multi-core host the parallel driver should scale close to
//! linearly until the core count is exhausted (the workload is
//! embarrassingly parallel and per-sample cost is milliseconds); on a
//! single-core host all rows collapse to the serial cost plus negligible
//! scheduling overhead. Either way the outputs are bitwise-identical —
//! asserted here before timing starts.
//!
//! Run with `cargo bench -p linvar-bench --bench montecarlo`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar_stats::{monte_carlo, monte_carlo_par, rng_from_seed};

const N_SAMPLES: usize = 100;
const MASTER_SEED: u64 = 4;

fn s27_model() -> PathModel {
    let bench = benchmark("s27").expect("embedded benchmark");
    let report = longest_path(&bench.netlist).expect("has a path");
    let stages = decompose_to_primitives(&bench.netlist, &report).expect("decomposes");
    let spec = PathSpec {
        cells: stages.into_iter().map(|s| s.cell).collect(),
        linear_elements_between_stages: 10,
        input_slew: 60e-12,
    };
    PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds")
}

fn bench_mc_drivers(c: &mut Criterion) {
    let model = s27_model();
    let sources = VariationSources::example3_table4();
    let mut rng = rng_from_seed(MASTER_SEED);
    let samples = model.draw_samples(&sources, N_SAMPLES, &mut rng);

    // Determinism sanity before timing: every parallel configuration must
    // reproduce the serial values bitwise.
    let serial = monte_carlo(&samples, |s| model.evaluate_sample(s));
    for threads in [2usize, 8] {
        let par = monte_carlo_par(&samples, threads, |s| model.evaluate_sample(s));
        assert_eq!(par.values, serial.values, "{threads}-thread run diverged");
    }

    let mut group = c.benchmark_group("monte_carlo_s27_100samples");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| monte_carlo(&samples, |s| model.evaluate_sample(s)))
    });
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| monte_carlo_par(&samples, threads, |s| model.evaluate_sample(s)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mc_drivers);
criterion_main!(benches);
