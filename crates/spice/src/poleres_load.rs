//! Stamping a one-port pole/residue macromodel into the MNA system.
//!
//! This is the "SPICE-subcircuit created from the reduced order
//! macromodel" of the paper's Example 1: the impedance
//! `Z(s) = d + Σ_k r_k/(s - p_k)` is realized as state equations
//!
//! ```text
//! dx_k/dt = p_k·x_k + i(t)          (one state per real pole)
//! v_port  = d·i + Σ_k r_k·x_k
//! ```
//!
//! with complex conjugate pairs folded into real second-order sections.
//! A right-half-plane pole makes `x_k` grow without bound, which is
//! exactly how a non-passive macromodel wrecks a conventional transient
//! analysis — the engine's overflow detection then reports divergence,
//! reproducing SPICE's behaviour in the paper.

use crate::error::SpiceError;
use linvar_mor::PoleResidueModel;
use linvar_numeric::Matrix;

/// One realized section of the impedance.
#[derive(Debug, Clone)]
enum Section {
    /// Real pole `p` with real residue `r`: one state.
    Real { p: f64, r: f64 },
    /// Conjugate pair `p = pr ± j·pi`, residue `r = rr ± j·ri`: two states.
    Pair { pr: f64, pi: f64, rr: f64, ri: f64 },
}

impl Section {
    fn state_count(&self) -> usize {
        match self {
            Section::Real { .. } => 1,
            Section::Pair { .. } => 2,
        }
    }
}

/// A one-port pole/residue load bound to a circuit node.
///
/// Extra unknowns appended to the MNA system: the port current first, then
/// the section states in order.
#[derive(Debug, Clone)]
pub struct OnePortPoleResidue {
    node_index: usize,
    direct: f64,
    sections: Vec<Section>,
    /// Section states at the last accepted time point.
    x_prev: Vec<f64>,
    /// Port current at the last accepted time point.
    i_prev: f64,
}

impl OnePortPoleResidue {
    /// Builds the load from a single-port [`PoleResidueModel`], attached at
    /// the node with MNA index `node_index`.
    ///
    /// Conjugate pole pairs are detected by matching each pole with
    /// positive imaginary part to its conjugate; unpaired complex poles are
    /// rejected (a real impedance requires conjugate symmetry).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadCircuit`] if the model is not one-port or
    /// has unpaired complex poles.
    pub fn from_model(model: &PoleResidueModel, node_index: usize) -> Result<Self, SpiceError> {
        if model.port_count() != 1 {
            return Err(SpiceError::BadCircuit(format!(
                "pole/residue load must be one-port, got {} ports",
                model.port_count()
            )));
        }
        let mut sections = Vec::new();
        let mut used = vec![false; model.poles.len()];
        let scale = model
            .poles
            .iter()
            .fold(0.0_f64, |m, p| m.max(p.abs()))
            .max(1e-300);
        for k in 0..model.poles.len() {
            if used[k] {
                continue;
            }
            let p = model.poles[k];
            let r = model.residues[k][(0, 0)];
            if p.im.abs() <= 1e-9 * scale {
                used[k] = true;
                sections.push(Section::Real { p: p.re, r: r.re });
            } else {
                // Find the conjugate partner.
                let partner = (0..model.poles.len()).find(|&j| {
                    !used[j] && j != k && (model.poles[j] - p.conj()).abs() <= 1e-6 * scale
                });
                match partner {
                    Some(j) => {
                        used[k] = true;
                        used[j] = true;
                        // Use the member with positive imaginary part.
                        let (pp, rr_) = if p.im > 0.0 {
                            (p, r)
                        } else {
                            (model.poles[j], model.residues[j][(0, 0)])
                        };
                        sections.push(Section::Pair {
                            pr: pp.re,
                            pi: pp.im,
                            rr: rr_.re,
                            ri: rr_.im,
                        });
                    }
                    None => {
                        return Err(SpiceError::BadCircuit(format!(
                            "unpaired complex pole {p} in impedance model"
                        )));
                    }
                }
            }
        }
        let n_states: usize = sections.iter().map(Section::state_count).sum();
        Ok(OnePortPoleResidue {
            node_index,
            direct: model.direct[(0, 0)],
            sections,
            x_prev: vec![0.0; n_states],
            i_prev: 0.0,
        })
    }

    /// MNA index of the attached node.
    pub fn node_index(&self) -> usize {
        self.node_index
    }

    /// Number of extra unknowns (port current + states).
    pub fn extra_unknowns(&self) -> usize {
        1 + self.x_prev.len()
    }

    /// Stamps the constant rows: port KCL coupling, the branch (voltage)
    /// equation and the state equations (trapezoidal for timestep `h`,
    /// steady-state for `None`).
    ///
    /// `base` is the index of the first extra unknown.
    pub fn stamp(&self, a: &mut Matrix, base: usize, h: Option<f64>) {
        let i_cur = base; // port current unknown
        let node = self.node_index;
        // KCL at the node: + i (current flows from node into the load).
        a[(node, i_cur)] += 1.0;
        // Branch equation: v_node - d·i - Σ c·x = 0.
        a[(i_cur, node)] += 1.0;
        a[(i_cur, i_cur)] -= self.direct;
        let mut st = base + 1;
        for sec in &self.sections {
            match sec {
                Section::Real { p, r } => {
                    a[(i_cur, st)] -= r;
                    // State row: trap: x(1 - h·p/2) - (h/2)·i = rhs
                    // steady:    -p·x - i = 0.
                    match h {
                        Some(h) => {
                            a[(st, st)] += 1.0 - h * p / 2.0;
                            a[(st, i_cur)] -= h / 2.0;
                        }
                        None => {
                            a[(st, st)] -= p;
                            a[(st, i_cur)] -= 1.0;
                        }
                    }
                    st += 1;
                }
                Section::Pair { pr, pi, rr, ri } => {
                    // v contribution: 2(rr·xr - ri·xi).
                    a[(i_cur, st)] -= 2.0 * rr;
                    a[(i_cur, st + 1)] += 2.0 * ri;
                    match h {
                        Some(h) => {
                            // xr' = pr·xr - pi·xi + i;  xi' = pi·xr + pr·xi.
                            a[(st, st)] += 1.0 - h * pr / 2.0;
                            a[(st, st + 1)] += h * pi / 2.0;
                            a[(st, i_cur)] -= h / 2.0;
                            a[(st + 1, st + 1)] += 1.0 - h * pr / 2.0;
                            a[(st + 1, st)] -= h * pi / 2.0;
                        }
                        None => {
                            a[(st, st)] -= pr;
                            a[(st, st + 1)] += pi;
                            a[(st, i_cur)] -= 1.0;
                            a[(st + 1, st + 1)] -= pr;
                            a[(st + 1, st)] -= pi;
                        }
                    }
                    st += 2;
                }
            }
        }
    }

    /// Adds the history terms to the RHS for a trapezoidal step of size `h`.
    pub fn rhs(&self, rhs: &mut [f64], base: usize, h: f64) {
        let mut st = base + 1;
        let i_p = self.i_prev;
        let mut idx = 0usize;
        for sec in &self.sections {
            match sec {
                Section::Real { p, .. } => {
                    let x = self.x_prev[idx];
                    rhs[st] += x * (1.0 + h * p / 2.0) + (h / 2.0) * i_p;
                    st += 1;
                    idx += 1;
                }
                Section::Pair { pr, pi, .. } => {
                    let xr = self.x_prev[idx];
                    let xi = self.x_prev[idx + 1];
                    rhs[st] += xr * (1.0 + h * pr / 2.0) - xi * (h * pi / 2.0) + (h / 2.0) * i_p;
                    rhs[st + 1] += xi * (1.0 + h * pr / 2.0) + xr * (h * pi / 2.0);
                    st += 2;
                    idx += 2;
                }
            }
        }
    }

    /// Records the accepted solution's states for the next step's history.
    pub fn accept_step(&mut self, x: &[f64], base: usize) {
        self.i_prev = x[base];
        for (k, xp) in self.x_prev.iter_mut().enumerate() {
            *xp = x[base + 1 + k];
        }
    }

    /// Captures the DC solution as the initial state.
    pub fn initialize_dc(&mut self, x: &[f64], base: usize) {
        self.accept_step(x, base);
    }

    /// DC impedance of the realized load (sanity checks).
    pub fn dc_impedance(&self) -> f64 {
        let mut z = self.direct;
        for sec in &self.sections {
            match sec {
                Section::Real { p, r } => z += -r / p,
                Section::Pair { pr, pi, rr, ri } => {
                    // -2·Re(r/p) for the pair.
                    let denom = pr * pr + pi * pi;
                    z += -2.0 * (rr * pr + ri * pi) / denom;
                }
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Transient, TransientOptions};
    use linvar_circuit::{Netlist, SourceWaveform};
    use linvar_numeric::{CMatrix, Complex};

    fn one_port_model(poles: &[Complex], res: &[Complex], direct: f64) -> PoleResidueModel {
        PoleResidueModel {
            poles: poles.to_vec(),
            residues: res
                .iter()
                .map(|&r| {
                    let mut m = CMatrix::zeros(1, 1);
                    m[(0, 0)] = r;
                    m
                })
                .collect(),
            direct: Matrix::from_rows(&[&[direct]]),
        }
    }

    /// Drive the pole/residue load through a source resistor and compare
    /// with the equivalent RC circuit.
    #[test]
    fn single_pole_load_matches_rc() {
        // Z(s) = (1/C)/(s + 1/(RC)) with R=1k, C=1p: pole -1e9, residue 1e12.
        let model = one_port_model(
            &[Complex::from_real(-1e9)],
            &[Complex::from_real(1e12)],
            0.0,
        );
        let load = OnePortPoleResidue::from_model(&model, 1).unwrap();
        assert!((load.dc_impedance() - 1000.0).abs() < 1e-6);

        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        assert_eq!(out.mna_index(), Some(1));
        nl.add_vsource(
            "V1",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.0,
                t0: 0.0,
                tr: 1e-12,
            },
        )
        .unwrap();
        nl.add_resistor("Rs", inp, out, 1000.0).unwrap();
        let mut opts = TransientOptions::new(10e-9, 10e-12);
        opts.probes.push("out".into());
        let res = Transient::new(&nl, &opts)
            .unwrap()
            .with_poleres_load(load)
            .unwrap()
            .run()
            .unwrap();
        // Equivalent circuit: source R into (R ∥ C): final value 0.5 V,
        // tau = (R/2)·C = 0.5 ns.
        let out_w = res.probe("out").unwrap();
        for (k, &t) in res.times.iter().enumerate() {
            let expect = 0.5 * (1.0 - (-t / 0.5e-9).exp());
            assert!(
                (out_w[k] - expect).abs() < 0.01,
                "t={t:.2e}: {} vs {expect}",
                out_w[k]
            );
        }
    }

    #[test]
    fn unstable_pole_causes_divergence() {
        // A right-half-plane pole with a tiny residue — the Example-1
        // phenomenon. SPICE-style simulation must fail, not hang.
        let model = one_port_model(
            &[Complex::from_real(-1e9), Complex::from_real(3.75e12)],
            &[Complex::from_real(1e12), Complex::from_real(1e10)],
            0.0,
        );
        let load = OnePortPoleResidue::from_model(&model, 1).unwrap();
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource(
            "V1",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.0,
                t0: 0.0,
                tr: 0.1e-9,
            },
        )
        .unwrap();
        nl.add_resistor("Rs", inp, out, 1000.0).unwrap();
        let mut opts = TransientOptions::new(10e-9, 10e-12);
        opts.probes.push("out".into());
        let result = Transient::new(&nl, &opts)
            .unwrap()
            .with_poleres_load(load)
            .unwrap()
            .run();
        assert!(
            matches!(result, Err(SpiceError::ConvergenceFailure { .. })),
            "unstable load must be detected, got {result:?}"
        );
    }

    #[test]
    fn conjugate_pair_load_runs() {
        // Underdamped section: p = -1e9 ± 5e9 j.
        let p = Complex::new(-1e9, 5e9);
        let r = Complex::new(5e11, -1e11);
        let model = one_port_model(&[p, p.conj()], &[r, r.conj()], 10.0);
        let load = OnePortPoleResidue::from_model(&model, 1).unwrap();
        let dc = load.dc_impedance();
        // DC from the model directly.
        let dc_expect = model.dc()[(0, 0)];
        assert!((dc - dc_expect).abs() < 1e-9 * dc_expect.abs());

        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource(
            "V1",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.0,
                t0: 0.1e-9,
                tr: 0.1e-9,
            },
        )
        .unwrap();
        nl.add_resistor("Rs", inp, out, 500.0).unwrap();
        let mut opts = TransientOptions::new(5e-9, 2e-12);
        opts.probes.push("out".into());
        let res = Transient::new(&nl, &opts)
            .unwrap()
            .with_poleres_load(load)
            .unwrap()
            .run()
            .unwrap();
        // Final value: divider Rs / (Rs + Z(0)).
        let v_end = *res.probe("out").unwrap().last().unwrap();
        let expect = dc_expect / (500.0 + dc_expect);
        assert!((v_end - expect).abs() < 0.02, "{v_end} vs {expect}");
    }

    #[test]
    fn multiport_model_rejected() {
        let model = PoleResidueModel {
            poles: vec![Complex::from_real(-1e9)],
            residues: vec![CMatrix::zeros(2, 2)],
            direct: Matrix::zeros(2, 2),
        };
        assert!(OnePortPoleResidue::from_model(&model, 0).is_err());
    }

    #[test]
    fn unpaired_complex_pole_rejected() {
        let model = one_port_model(&[Complex::new(-1e9, 2e9)], &[Complex::ONE], 0.0);
        assert!(OnePortPoleResidue::from_model(&model, 0).is_err());
    }
}
