//! Error type of the transient engine.

use linvar_circuit::CircuitError;
use linvar_numeric::NumericError;
use std::fmt;

/// Error produced by the SPICE-like transient engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// Newton iteration failed to converge even after timestep reduction.
    ///
    /// This is the documented outcome of simulating a non-passive/unstable
    /// macromodel with a conventional Newton-based simulator (paper §3.1
    /// and Example 1).
    ConvergenceFailure {
        /// Simulation time at which the analysis broke down (s).
        time: f64,
        /// Explanation (`"newton iteration limit"`, `"voltage overflow"`, …).
        reason: String,
    },
    /// The DC operating point could not be found.
    DcOperatingPoint {
        /// Explanation of the failure.
        reason: String,
    },
    /// Netlist-level problem (unknown model, missing node, …).
    BadCircuit(String),
    /// Propagated netlist-construction error.
    Circuit(CircuitError),
    /// Propagated linear-algebra error.
    Numeric(NumericError),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::ConvergenceFailure { time, reason } => {
                write!(f, "transient failed to converge at t={time:.3e}s: {reason}")
            }
            SpiceError::DcOperatingPoint { reason } => {
                write!(f, "dc operating point failed: {reason}")
            }
            SpiceError::BadCircuit(msg) => write!(f, "bad circuit: {msg}"),
            SpiceError::Circuit(e) => write!(f, "circuit error: {e}"),
            SpiceError::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for SpiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiceError::Circuit(e) => Some(e),
            SpiceError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for SpiceError {
    fn from(e: CircuitError) -> Self {
        SpiceError::Circuit(e)
    }
}

impl From<NumericError> for SpiceError {
    fn from(e: NumericError) -> Self {
        SpiceError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_time_for_convergence() {
        let e = SpiceError::ConvergenceFailure {
            time: 1.5e-9,
            reason: "newton iteration limit".into(),
        };
        let s = e.to_string();
        assert!(s.contains("1.5"));
        assert!(s.contains("newton"));
    }

    #[test]
    fn conversions_work() {
        let e: SpiceError = NumericError::SingularMatrix {
            pivot: 0,
            condition: None,
        }
        .into();
        assert!(matches!(e, SpiceError::Numeric(_)));
        let e: SpiceError = CircuitError::EmptyNetlist.into();
        assert!(matches!(e, SpiceError::Circuit(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SpiceError>();
    }
}
