//! The transient analysis engine.
//!
//! Modified nodal analysis with trapezoidal companion models for
//! capacitors, Newton-Raphson linearization for level-1 MOSFETs, gmin
//! stepping for the DC operating point, and timestep halving with
//! divergence detection.
//!
//! # Linear solve strategy
//!
//! The system matrix is `A = A0 + Σ_k u_k·v_kᵀ` where `A0` collects every
//! *linear* stamp (resistors, capacitor companions, source rows,
//! pole/residue state rows — all constant for a fixed timestep) and each
//! MOSFET contributes a rank-one Newton update (its conductance rows `d`
//! and `s` are negatives of each other). `A0` is factored once per
//! timestep value and the Newton iterations solve through the Woodbury
//! identity, which is algebraically exact. A `dense_rebuild` option
//! re-assembles and refactors the full matrix every iteration instead;
//! tests cross-check the two paths.

use crate::error::SpiceError;
use crate::poleres_load::OnePortPoleResidue;
use linvar_circuit::{Element, Netlist, NodeId};
use linvar_devices::{DeviceVariation, ModelLibrary, MosParams};
use linvar_numeric::{
    AnySolver, LinearSolver, LuFactor, Matrix, SolverBackend, SolverChoice, SparseLu, SparseMatrix,
};
use std::collections::HashMap;

/// Options for a transient analysis.
#[derive(Debug, Clone)]
pub struct TransientOptions {
    /// Stop time (s).
    pub tstop: f64,
    /// Nominal timestep (s).
    pub dt: f64,
    /// Minimum timestep before declaring divergence (s).
    pub dt_min: f64,
    /// Newton iteration limit per timestep.
    pub max_newton: usize,
    /// Relative convergence tolerance on voltages.
    pub reltol: f64,
    /// Absolute convergence tolerance on voltages (V).
    pub vabstol: f64,
    /// Node names whose waveforms are recorded.
    pub probes: Vec<String>,
    /// Voltage magnitude treated as numerical blow-up (V).
    pub v_limit: f64,
    /// Rebuild and refactor the dense matrix every Newton iteration
    /// instead of using the Woodbury update (slow; for cross-checking).
    pub dense_rebuild: bool,
    /// Always-on conductance from every node to ground (S), for floating
    /// nodes.
    pub gmin: f64,
    /// Linear-solver backend for the `A0` factorizations. `Auto` (the
    /// default) consults `LINVAR_SOLVER` and then matrix order; pinning
    /// `Dense`/`Sparse` here keeps tests free of environment races.
    /// Circuits with a pole/residue load always use the dense backend.
    pub solver: SolverChoice,
}

impl TransientOptions {
    /// Creates options with the given stop time and timestep and library
    /// defaults for everything else.
    pub fn new(tstop: f64, dt: f64) -> Self {
        TransientOptions {
            tstop,
            dt,
            dt_min: dt / 4096.0,
            max_newton: 80,
            reltol: 1e-4,
            vabstol: 1e-6,
            probes: Vec::new(),
            v_limit: 1e3,
            dense_rebuild: false,
            gmin: 1e-12,
            solver: SolverChoice::Auto,
        }
    }
}

/// Result of a transient analysis.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Accepted time points (s).
    pub times: Vec<f64>,
    /// Probed waveforms, keyed by node name.
    pub waveforms: HashMap<String, Vec<f64>>,
    /// Performance counters for runtime comparisons.
    pub stats: SolveStats,
    /// What the failure-recovery ladder had to do to complete the run.
    pub recovery: RecoveryLog,
}

/// Which rung of the DC recovery ladder produced the operating point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DcStrategy {
    /// Plain damped Newton from a zero initial guess, no artificial
    /// conductance beyond the always-on `gmin` option.
    #[default]
    DirectNewton,
    /// Continuation over a decreasing extra node-to-ground conductance,
    /// relaxed to zero for the final reported solve.
    GminStepping,
    /// Continuation over the source amplitudes ramped from 10% to 100%.
    SourceStepping,
}

/// Recovery actions recorded during one analysis.
///
/// A run that needed no recovery reports the default value: `DirectNewton`,
/// zero counted steps, and no timestep halvings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    /// Ladder rung that produced the DC operating point.
    pub dc_strategy: DcStrategy,
    /// Number of gmin continuation solves performed (including the final
    /// relax-to-zero solve).
    pub dc_gmin_steps: usize,
    /// Number of source-stepping continuation solves performed.
    pub dc_source_steps: usize,
    /// Timestep halvings during the sweep (exponential backoff events).
    pub timestep_halvings: usize,
    /// Smallest timestep actually used by an accepted step (s); equals the
    /// nominal `dt` when no halving was needed, 0.0 if no steps were taken.
    pub min_timestep_used: f64,
}

impl RecoveryLog {
    /// `true` if the run completed without any recovery action.
    pub fn was_clean(&self) -> bool {
        self.dc_strategy == DcStrategy::DirectNewton && self.timestep_halvings == 0
    }
}

impl TransientResult {
    /// The waveform of a probed node.
    pub fn probe(&self, node: &str) -> Option<&[f64]> {
        self.waveforms.get(node).map(|v| v.as_slice())
    }
}

/// Work counters of one analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Accepted timesteps.
    pub steps: usize,
    /// Total Newton iterations.
    pub newton_iterations: usize,
    /// Full dense LU factorizations performed.
    pub lu_factorizations: usize,
    /// Triangular solves performed.
    pub solves: usize,
}

/// One device's Newton-update row pattern: `(drain, gate, source, gm, gds)`.
type DeviceRow = (Option<usize>, Option<usize>, Option<usize>, f64, f64);

/// A MOSFET instance resolved against the model library.
#[derive(Debug, Clone)]
struct ResolvedMos {
    d: Option<usize>,
    g: Option<usize>,
    s: Option<usize>,
    b: Option<usize>,
    params: MosParams,
    width: f64,
    length: f64,
}

/// One independent source resolved to matrix positions.
#[derive(Debug, Clone)]
enum ResolvedSource {
    V {
        branch_row: usize,
        waveform: linvar_circuit::SourceWaveform,
    },
    I {
        pos: Option<usize>,
        neg: Option<usize>,
        waveform: linvar_circuit::SourceWaveform,
    },
}

/// Capacitor with trapezoidal companion state.
#[derive(Debug, Clone)]
struct CapState {
    a: Option<usize>,
    b: Option<usize>,
    value: f64,
    /// Capacitor current at the last accepted time point.
    i_prev: f64,
}

/// Inductor with trapezoidal companion state (no extra unknown: the
/// branch current is reconstructed from the terminal voltages).
#[derive(Debug, Clone)]
struct IndState {
    a: Option<usize>,
    b: Option<usize>,
    value: f64,
    /// Inductor current (a → b) at the last accepted time point.
    i_prev: f64,
}

/// Conductance standing in for an inductor at DC (a short).
const INDUCTOR_DC_SHORT: f64 = 1e6;

/// A prepared transient analysis.
#[derive(Debug)]
pub struct Transient<'a> {
    nl: &'a Netlist,
    opts: TransientOptions,
    n_nodes: usize,
    n_vsrc: usize,
    /// Total unknowns including pole/residue extras.
    dim: usize,
    devices: Vec<ResolvedMos>,
    sources: Vec<ResolvedSource>,
    caps: Vec<CapState>,
    inductors: Vec<IndState>,
    /// Constant conductance stamps (resistors, vsource incidence, gmin),
    /// kept as `(row, col, value)` triplets in emission order so either
    /// backend can assemble them: the dense path replays them with `+=`
    /// (bit-identical to the historical presummed matrix), the sparse
    /// path hands them to CSC assembly, which sums duplicates in the
    /// same emission order.
    static_stamps: Vec<(usize, usize, f64)>,
    poleres: Option<OnePortPoleResidue>,
    variation: DeviceVariation,
    /// Amplitude scale on every independent source (1.0 except while the
    /// DC source-stepping rung is active).
    source_scale: f64,
}

impl<'a> Transient<'a> {
    /// Prepares an analysis of a linear (device-free) netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadCircuit`] if the netlist contains MOSFETs
    /// (use [`Transient::with_devices`]) or has no nodes, or if a probe
    /// name is unknown.
    pub fn new(nl: &'a Netlist, opts: &TransientOptions) -> Result<Self, SpiceError> {
        if !nl.mosfets().is_empty() {
            return Err(SpiceError::BadCircuit(
                "netlist has mosfets; use Transient::with_devices".into(),
            ));
        }
        Self::build(nl, None, DeviceVariation::nominal(), opts)
    }

    /// Prepares an analysis of a netlist with MOSFETs, resolving models
    /// against `lib` and applying the device variation sample.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadCircuit`] for unknown model names, empty
    /// netlists or unknown probe names.
    pub fn with_devices(
        nl: &'a Netlist,
        lib: &ModelLibrary,
        variation: DeviceVariation,
        opts: &TransientOptions,
    ) -> Result<Self, SpiceError> {
        Self::build(nl, Some(lib), variation, opts)
    }

    /// Attaches a one-port pole/residue load to the prepared analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadCircuit`] if the load's node is unknown.
    pub fn with_poleres_load(mut self, load: OnePortPoleResidue) -> Result<Self, SpiceError> {
        if load.node_index() >= self.n_nodes {
            return Err(SpiceError::BadCircuit(format!(
                "pole/residue load node index {} out of range",
                load.node_index()
            )));
        }
        self.dim = self.n_nodes + self.n_vsrc + load.extra_unknowns();
        self.poleres = Some(load);
        Ok(self)
    }

    fn build(
        nl: &'a Netlist,
        lib: Option<&ModelLibrary>,
        variation: DeviceVariation,
        opts: &TransientOptions,
    ) -> Result<Self, SpiceError> {
        let n_nodes = nl.node_count();
        if n_nodes == 0 {
            return Err(SpiceError::BadCircuit("netlist has no nodes".into()));
        }
        for p in &opts.probes {
            if nl.find_node(p).is_none() {
                return Err(SpiceError::BadCircuit(format!("unknown probe node {p}")));
            }
        }
        let n_vsrc = nl.vsource_count();
        let dim = n_nodes + n_vsrc;
        let mut static_stamps: Vec<(usize, usize, f64)> = Vec::new();
        let mut sources = Vec::new();
        let mut caps = Vec::new();
        let mut inductors = Vec::new();
        let mut branch = n_nodes;
        let idx = |n: NodeId| n.mna_index();
        for e in nl.elements() {
            match e {
                Element::Resistor { a, b, value, .. } => {
                    stamp_t(&mut static_stamps, idx(*a), idx(*b), 1.0 / value.nominal);
                }
                Element::Capacitor { a, b, value, .. } => {
                    caps.push(CapState {
                        a: idx(*a),
                        b: idx(*b),
                        value: value.nominal,
                        i_prev: 0.0,
                    });
                }
                Element::Inductor { a, b, value, .. } => {
                    inductors.push(IndState {
                        a: idx(*a),
                        b: idx(*b),
                        value: value.nominal,
                        i_prev: 0.0,
                    });
                }
                Element::VSource {
                    pos, neg, waveform, ..
                } => {
                    if let Some(i) = idx(*pos) {
                        static_stamps.push((i, branch, 1.0));
                        static_stamps.push((branch, i, 1.0));
                    }
                    if let Some(j) = idx(*neg) {
                        static_stamps.push((j, branch, -1.0));
                        static_stamps.push((branch, j, -1.0));
                    }
                    sources.push(ResolvedSource::V {
                        branch_row: branch,
                        waveform: waveform.clone(),
                    });
                    branch += 1;
                }
                Element::ISource {
                    pos, neg, waveform, ..
                } => {
                    sources.push(ResolvedSource::I {
                        pos: idx(*pos),
                        neg: idx(*neg),
                        waveform: waveform.clone(),
                    });
                }
            }
        }
        // Gmin from every node to ground.
        for i in 0..n_nodes {
            static_stamps.push((i, i, opts.gmin));
        }
        let mut devices = Vec::new();
        for m in nl.mosfets() {
            let lib = lib.ok_or_else(|| {
                SpiceError::BadCircuit("mosfets present but no model library given".into())
            })?;
            let params = lib
                .get(&m.model)
                .ok_or_else(|| SpiceError::BadCircuit(format!("unknown model {}", m.model)))?
                .clone();
            devices.push(ResolvedMos {
                d: idx(m.drain),
                g: idx(m.gate),
                s: idx(m.source),
                b: idx(m.bulk),
                params,
                width: m.width,
                length: m.length,
            });
        }
        Ok(Transient {
            nl,
            opts: opts.clone(),
            n_nodes,
            n_vsrc,
            dim,
            devices,
            sources,
            caps,
            inductors,
            static_stamps,
            poleres: None,
            variation,
            source_scale: 1.0,
        })
    }

    /// Runs the analysis: DC operating point, then timestepping to `tstop`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::DcOperatingPoint`] or
    /// [`SpiceError::ConvergenceFailure`] when Newton cannot converge —
    /// including the voltage blow-up produced by unstable macromodel loads.
    pub fn run(mut self) -> Result<TransientResult, SpiceError> {
        let mut stats = SolveStats::default();
        let mut recovery = RecoveryLog::default();
        let opts = self.opts.clone();
        let dc_span = linvar_metrics::timer(linvar_metrics::Phase::SpiceDc);
        // ---------------- DC operating point (recovery ladder) -----------
        // Rung 0: plain damped Newton, no artificial conductance, so a
        // well-behaved circuit reports an operating point with nothing
        // extra stamped into it.
        // Factorization cache, shared across the DC ladder and the
        // transient loop so the sparse backend can refactor on a reused
        // elimination pattern instead of re-running symbolic analysis.
        let mut cache: Option<StepCache> = None;
        let mut x = vec![0.0; self.dim];
        let mut last_err = self.solve_dc(&mut x, 0.0, &mut cache, &mut stats).err();
        if last_err.is_some() {
            // Rung 1: gmin stepping — continuation over a decreasing extra
            // node-to-ground conductance. Unlike the classic loop that
            // leaves the last gmin stamped, the ladder finishes with a
            // relax-to-zero solve from the converged continuation point.
            recovery.dc_strategy = DcStrategy::GminStepping;
            x = vec![0.0; self.dim];
            let mut converged = false;
            for gmin_exp in [-3.0_f64, -5.0, -7.0, -9.0, -12.0] {
                let gmin = 10f64.powf(gmin_exp);
                recovery.dc_gmin_steps += 1;
                match self.solve_dc(&mut x, gmin, &mut cache, &mut stats) {
                    Ok(()) => converged = true,
                    Err(e) => {
                        // Keep the partial solution as the next start.
                        converged = false;
                        last_err = Some(e);
                    }
                }
            }
            if converged {
                recovery.dc_gmin_steps += 1;
                last_err = self.solve_dc(&mut x, 0.0, &mut cache, &mut stats).err();
            }
        }
        if last_err.is_some() {
            // Rung 2: source stepping — ramp every independent source from
            // 10% to full amplitude with continuation, then solve clean.
            recovery.dc_strategy = DcStrategy::SourceStepping;
            x = vec![0.0; self.dim];
            let mut ramp_ok = true;
            for k in 1..=10u32 {
                self.source_scale = f64::from(k) / 10.0;
                recovery.dc_source_steps += 1;
                if let Err(e) = self.solve_dc(&mut x, 1e-9, &mut cache, &mut stats) {
                    last_err = Some(e);
                    ramp_ok = false;
                    break;
                }
            }
            self.source_scale = 1.0;
            if ramp_ok {
                recovery.dc_source_steps += 1;
                last_err = self.solve_dc(&mut x, 0.0, &mut cache, &mut stats).err();
            }
        }
        if let Some(e) = last_err {
            return Err(match e {
                SpiceError::ConvergenceFailure { reason, .. } => SpiceError::DcOperatingPoint {
                    reason: format!(
                        "dc recovery ladder exhausted (direct newton, gmin stepping, \
                         source stepping): {reason}"
                    ),
                },
                other => other,
            });
        }
        linvar_metrics::incr(match recovery.dc_strategy {
            DcStrategy::DirectNewton => linvar_metrics::Counter::DcDirectNewton,
            DcStrategy::GminStepping => linvar_metrics::Counter::DcGminStepping,
            DcStrategy::SourceStepping => linvar_metrics::Counter::DcSourceStepping,
        });
        // Initialize companion currents at the DC point: zero through
        // capacitors; through each inductor, the current of its DC short.
        for c in &mut self.caps {
            c.i_prev = 0.0;
        }
        for l in &mut self.inductors {
            let v = volt(&x, l.a) - volt(&x, l.b);
            l.i_prev = INDUCTOR_DC_SHORT * v;
        }
        if let Some(p) = &mut self.poleres {
            p.initialize_dc(&x, self.n_nodes + self.n_vsrc);
        }

        // ---------------- transient loop ---------------------------------
        drop(dc_span);
        let _tran_span = linvar_metrics::timer(linvar_metrics::Phase::SpiceTran);
        let mut times = vec![0.0];
        let mut waves: HashMap<String, Vec<f64>> = HashMap::new();
        let probe_idx: Vec<(String, usize)> = opts
            .probes
            .iter()
            .map(|p| {
                let id = self.nl.find_node(p).expect("validated in build");
                (
                    p.clone(),
                    id.mna_index().expect("probing ground is useless"),
                )
            })
            .collect();
        for (name, i) in &probe_idx {
            waves.insert(name.clone(), vec![x[*i]]);
        }

        let mut t = 0.0;
        let mut h = opts.dt;
        let mut good_steps = 0usize;
        // The DC cache seeds the first transient rebuild (h mismatch); a
        // sparse backend then refactors on the step pattern as h changes.
        while t < opts.tstop - 1e-18 {
            let h_eff = h.min(opts.tstop - t);
            let rebuild = match &cache {
                Some(c) => (c.h - h_eff).abs() > 1e-18 * h_eff,
                None => true,
            };
            if rebuild {
                cache = Some(self.make_cache(
                    h_eff,
                    Some(h_eff),
                    opts.gmin,
                    cache.take(),
                    &mut stats,
                )?);
            }
            let c = cache.as_ref().expect("just built");
            let mut x_new = x.clone();
            let t_new = t + h_eff;
            let res = self.newton(&mut x_new, c, t_new, Some((h_eff, &x)), &mut stats);
            match res {
                Ok(()) => {
                    // Accept the step: update companion states.
                    self.update_cap_currents(&x_new, &x, h_eff);
                    if let Some(p) = &mut self.poleres {
                        p.accept_step(&x_new, self.n_nodes + self.n_vsrc);
                    }
                    t = t_new;
                    x = x_new;
                    times.push(t);
                    for (name, i) in &probe_idx {
                        waves.get_mut(name).expect("inserted").push(x[*i]);
                    }
                    stats.steps += 1;
                    good_steps += 1;
                    recovery.min_timestep_used = if recovery.min_timestep_used == 0.0 {
                        h_eff
                    } else {
                        recovery.min_timestep_used.min(h_eff)
                    };
                    if good_steps >= 8 && h < opts.dt {
                        h = (h * 2.0).min(opts.dt);
                        good_steps = 0;
                    }
                }
                Err(SpiceError::ConvergenceFailure { reason, .. }) => {
                    // Exponential backoff on the timestep, with the dt_min
                    // floor bounding the retry ladder.
                    // The h change makes the next iteration rebuild from
                    // the kept cache (sparse: pattern-reusing refactor).
                    h /= 2.0;
                    good_steps = 0;
                    recovery.timestep_halvings += 1;
                    linvar_metrics::incr(linvar_metrics::Counter::TimestepHalvings);
                    if h < opts.dt_min {
                        return Err(SpiceError::ConvergenceFailure { time: t, reason });
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Ok(TransientResult {
            times,
            waveforms: waves,
            stats,
            recovery,
        })
    }

    /// One DC solve at the given extra node-to-ground conductance, starting
    /// from (and refining) `x`. Sources are scaled by `self.source_scale`.
    /// `reuse` carries the factorization cache across the ladder's
    /// continuation solves (the sparse backend refactors on the reused
    /// elimination pattern instead of factoring from scratch).
    fn solve_dc(
        &self,
        x: &mut Vec<f64>,
        extra_gmin: f64,
        reuse: &mut Option<StepCache>,
        stats: &mut SolveStats,
    ) -> Result<(), SpiceError> {
        let cache = self.make_cache(0.0, None, extra_gmin, reuse.take(), stats)?;
        let res = self.newton(x, &cache, 0.0, None, stats);
        *reuse = Some(cache);
        res
    }

    /// Which factorization backend this analysis uses. Pole/residue loads
    /// stamp dense state rows, so they pin the dense backend; otherwise
    /// the option's choice resolves by system order.
    fn backend(&self) -> SolverBackend {
        if self.poleres.is_some() {
            SolverBackend::Dense
        } else {
            self.opts.solver.backend_for(self.dim)
        }
    }

    /// Assembles the constant part of the Newton matrix as stamp triplets:
    /// static stamps, the extra ladder gmin, and capacitor/inductor
    /// trapezoidal companions for timestep `h` (`None` = DC). The
    /// emission order exactly mirrors the historical dense assembly, so
    /// replaying the triplets with `+=` reproduces its bits.
    fn assemble_triplets(&self, h: Option<f64>, extra_gmin: f64) -> Vec<(usize, usize, f64)> {
        let extra = self.n_nodes + 4 * (self.caps.len() + self.inductors.len());
        let mut t = Vec::with_capacity(self.static_stamps.len() + extra);
        t.extend_from_slice(&self.static_stamps);
        for i in 0..self.n_nodes {
            t.push((i, i, extra_gmin));
        }
        if let Some(h) = h {
            for c in &self.caps {
                let geq = 2.0 * c.value / h;
                stamp_t(&mut t, c.a, c.b, geq);
            }
            for l in &self.inductors {
                let geq = h / (2.0 * l.value);
                stamp_t(&mut t, l.a, l.b, geq);
            }
        } else {
            // DC: inductors are shorts.
            for l in &self.inductors {
                stamp_t(&mut t, l.a, l.b, INDUCTOR_DC_SHORT);
            }
        }
        t
    }

    /// Replays stamp triplets into a dense matrix in emission order.
    fn assemble_dense(&self, triplets: &[(usize, usize, f64)]) -> Matrix {
        let mut a = Matrix::zeros(self.dim, self.dim);
        for &(i, j, v) in triplets {
            a[(i, j)] += v;
        }
        a
    }

    /// Stamps the pole/residue load's constant rows.
    fn stamp_poleres(&self, a: &mut Matrix, h: Option<f64>) {
        if let Some(p) = &self.poleres {
            p.stamp(a, self.n_nodes + self.n_vsrc, h);
        }
    }

    /// RHS vector at time `t` given the previous state (for companions).
    fn assemble_rhs(&self, t: f64, step: Option<(f64, &[f64])>) -> Vec<f64> {
        let mut rhs = vec![0.0; self.dim];
        for s in &self.sources {
            match s {
                ResolvedSource::V {
                    branch_row,
                    waveform,
                } => {
                    rhs[*branch_row] += self.source_scale * waveform.eval(t);
                }
                ResolvedSource::I { pos, neg, waveform } => {
                    let i = self.source_scale * waveform.eval(t);
                    if let Some(p) = pos {
                        rhs[*p] += i;
                    }
                    if let Some(n) = neg {
                        rhs[*n] -= i;
                    }
                }
            }
        }
        if let Some((h, x_prev)) = step {
            for c in &self.caps {
                let geq = 2.0 * c.value / h;
                let v_prev = volt(x_prev, c.a) - volt(x_prev, c.b);
                let ieq = geq * v_prev + c.i_prev;
                if let Some(i) = c.a {
                    rhs[i] += ieq;
                }
                if let Some(j) = c.b {
                    rhs[j] -= ieq;
                }
            }
            for l in &self.inductors {
                let geq = h / (2.0 * l.value);
                let v_prev = volt(x_prev, l.a) - volt(x_prev, l.b);
                // Trap: i_{n+1} = i_n + geq·(v_n + v_{n+1}); the history
                // current i_n + geq·v_n enters the RHS flowing a → b.
                let ieq = l.i_prev + geq * v_prev;
                if let Some(i) = l.a {
                    rhs[i] -= ieq;
                }
                if let Some(j) = l.b {
                    rhs[j] += ieq;
                }
            }
            if let Some(p) = &self.poleres {
                p.rhs(&mut rhs, self.n_nodes + self.n_vsrc, h);
            }
        }
        rhs
    }

    /// Builds the per-timestep cache: for the Woodbury path, factor `A0`
    /// once (on the selected backend) and pre-solve the device incidence
    /// columns. `h_opt` is the companion timestep (`None` = DC); `prev`
    /// donates its sparse factorization for a pattern-reusing numeric
    /// refactor when the backend allows it.
    fn make_cache(
        &self,
        h: f64,
        h_opt: Option<f64>,
        extra_gmin: f64,
        prev: Option<StepCache>,
        stats: &mut SolveStats,
    ) -> Result<StepCache, SpiceError> {
        let triplets = self.assemble_triplets(h_opt, extra_gmin);
        if self.opts.dense_rebuild {
            let mut a0 = self.assemble_dense(&triplets);
            self.stamp_poleres(&mut a0, h_opt);
            return Ok(StepCache {
                h,
                a0: Some(a0),
                solver: None,
                a0inv_u: Matrix::zeros(0, 0),
            });
        }
        let solver = match self.backend() {
            SolverBackend::Dense => {
                let mut a0 = self.assemble_dense(&triplets);
                self.stamp_poleres(&mut a0, h_opt);
                let mut lu = LuFactor::new(&a0).map_err(SpiceError::from)?;
                // The cache serves every Newton iteration until the
                // timestep changes; index the (ladder-sparse) factors once
                // so each of those solves substitutes over the nonzeros
                // only.
                lu.optimize_for_solves();
                AnySolver::Dense(lu)
            }
            SolverBackend::Sparse => {
                let a = SparseMatrix::from_triplets(self.dim, self.dim, &triplets)
                    .map_err(SpiceError::from)?;
                // Numeric-only refactor when the previous step's pattern
                // matches (same circuit, new companion values); a pattern
                // change or pivot breakdown falls back to a full factor —
                // whose symbolic ordering is itself served by the
                // per-worker pattern cache.
                let reused = prev.and_then(|p| match p.solver {
                    Some(AnySolver::Sparse(mut lu)) => lu.refactor(&a).ok().map(|()| lu),
                    _ => None,
                });
                match reused {
                    Some(lu) => AnySolver::Sparse(lu),
                    None => AnySolver::Sparse(SparseLu::new(&a).map_err(SpiceError::from)?),
                }
            }
        };
        stats.lu_factorizations += 1;
        let ndev = self.devices.len();
        let a0inv_u = if ndev > 0 {
            // u_k = e_d - e_s (columns).
            let mut u = Matrix::zeros(self.dim, ndev);
            for (k, dev) in self.devices.iter().enumerate() {
                if let Some(d) = dev.d {
                    u[(d, k)] += 1.0;
                }
                if let Some(s) = dev.s {
                    u[(s, k)] -= 1.0;
                }
            }
            stats.solves += ndev;
            solver.solve_mat(&u).map_err(SpiceError::from)?
        } else {
            Matrix::zeros(0, 0)
        };
        Ok(StepCache {
            h,
            a0: None,
            solver: Some(solver),
            a0inv_u,
        })
    }

    /// Newton-Raphson at one time point. `step` carries `(h, previous
    /// state)` for transient points and is `None` for DC.
    fn newton(
        &self,
        x: &mut Vec<f64>,
        cache: &StepCache,
        t: f64,
        step: Option<(f64, &[f64])>,
        stats: &mut SolveStats,
    ) -> Result<(), SpiceError> {
        let rhs_base = self.assemble_rhs(t, step);
        let (delta_l, delta_vt) = (self.variation.delta_l(), self.variation.delta_vt());
        let ndev = self.devices.len();
        let solver = &cache.solver;
        let a0inv_u = &cache.a0inv_u;

        for _iter in 0..self.opts.max_newton {
            stats.newton_iterations += 1;
            linvar_metrics::incr(linvar_metrics::Counter::NewtonIterations);
            // Device evaluation at the current iterate.
            let mut rhs = rhs_base.clone();
            // v-row coefficient vectors for Woodbury (one per device).
            let mut vrows: Vec<DeviceRow> = Vec::with_capacity(ndev);
            for dev in &self.devices {
                let vd = volt(x, dev.d);
                let vg = volt(x, dev.g);
                let vs = volt(x, dev.s);
                let vb = volt(x, dev.b);
                let op = dev.params.eval(
                    vg - vs,
                    vd - vs,
                    vb - vs,
                    dev.width,
                    dev.length,
                    delta_l,
                    delta_vt,
                );
                // Norton companion: current into drain ≈
                //   gds·vd + gm·vg - (gm+gds)·vs + ieq
                let ieq = op.ids - op.gm * (vg - vs) - op.gds * (vd - vs);
                if let Some(d) = dev.d {
                    rhs[d] -= ieq;
                }
                if let Some(s) = dev.s {
                    rhs[s] += ieq;
                }
                vrows.push((dev.d, dev.g, dev.s, op.gm, op.gds));
            }
            // Solve the linearized system.
            let x_next = if let Some(solver) = solver {
                stats.solves += 1;
                let y = solver.solve(&rhs).map_err(SpiceError::from)?;
                if ndev == 0 {
                    y
                } else {
                    // Woodbury: (A0 + U Vᵀ)⁻¹ rhs
                    //   = y - A0⁻¹U (I + VᵀA0⁻¹U)⁻¹ Vᵀ y.
                    // Each Vᵀ row touches at most three entries of its
                    // operand, so read them straight from `a0inv_u`/`y`
                    // (same accumulation order as a materialized column).
                    fn vt_dot(row: &DeviceRow, vec_src: impl Fn(usize) -> f64) -> f64 {
                        let (d, g, s, gm, gds) = *row;
                        let mut acc = 0.0;
                        if let Some(d) = d {
                            acc += gds * vec_src(d);
                        }
                        if let Some(g) = g {
                            acc += gm * vec_src(g);
                        }
                        if let Some(s) = s {
                            acc -= (gm + gds) * vec_src(s);
                        }
                        acc
                    }
                    let mut small = Matrix::identity(ndev);
                    for (r, row) in vrows.iter().enumerate() {
                        for ccol in 0..ndev {
                            small[(r, ccol)] += vt_dot(row, |i| a0inv_u[(i, ccol)]);
                        }
                    }
                    let vty: Vec<f64> = vrows.iter().map(|row| vt_dot(row, |i| y[i])).collect();
                    let lu_small = LuFactor::new(&small).map_err(SpiceError::from)?;
                    let z = lu_small.solve(&vty).map_err(SpiceError::from)?;
                    let mut out = y;
                    for i in 0..self.dim {
                        let mut corr = 0.0;
                        for k in 0..ndev {
                            corr += a0inv_u[(i, k)] * z[k];
                        }
                        out[i] -= corr;
                    }
                    out
                }
            } else {
                // Dense rebuild path: stamp devices into a copy and factor.
                let mut a = cache
                    .a0
                    .as_ref()
                    .expect("dense_rebuild cache carries the assembled matrix")
                    .clone();
                for (d, g, s, gm, gds) in &vrows {
                    stamp_device(&mut a, *d, *g, *s, *gm, *gds);
                }
                stats.lu_factorizations += 1;
                stats.solves += 1;
                let lu = LuFactor::new(&a).map_err(SpiceError::from)?;
                lu.solve(&rhs).map_err(SpiceError::from)?
            };
            // Convergence / blow-up checks with voltage-step damping.
            let mut max_dx = 0.0_f64;
            let mut max_v = 0.0_f64;
            let mut x_damped = x.clone();
            for i in 0..self.dim {
                let mut dx = x_next[i] - x[i];
                if i < self.n_nodes {
                    dx = dx.clamp(-1.0, 1.0);
                }
                x_damped[i] = x[i] + dx;
                max_dx = max_dx.max(dx.abs());
                max_v = max_v.max(x_damped[i].abs());
                if !x_damped[i].is_finite() {
                    return Err(SpiceError::ConvergenceFailure {
                        time: t,
                        reason: "non-finite solution".into(),
                    });
                }
            }
            if max_v > self.opts.v_limit {
                return Err(SpiceError::ConvergenceFailure {
                    time: t,
                    reason: "voltage overflow (unstable load?)".into(),
                });
            }
            *x = x_damped;
            let vnorm = x
                .iter()
                .take(self.n_nodes)
                .fold(0.0_f64, |m, v| m.max(v.abs()));
            if max_dx < self.opts.vabstol + self.opts.reltol * vnorm {
                return Ok(());
            }
        }
        Err(SpiceError::ConvergenceFailure {
            time: t,
            reason: "newton iteration limit".into(),
        })
    }

    /// Updates capacitor and inductor companion currents after an
    /// accepted step.
    fn update_cap_currents(&mut self, x_new: &[f64], x_old: &[f64], h: f64) {
        for c in &mut self.caps {
            let geq = 2.0 * c.value / h;
            let v_new = volt(x_new, c.a) - volt(x_new, c.b);
            let v_old = volt(x_old, c.a) - volt(x_old, c.b);
            c.i_prev = geq * (v_new - v_old) - c.i_prev;
        }
        for l in &mut self.inductors {
            let geq = h / (2.0 * l.value);
            let v_new = volt(x_new, l.a) - volt(x_new, l.b);
            let v_old = volt(x_old, l.a) - volt(x_old, l.b);
            l.i_prev += geq * (v_new + v_old);
        }
    }
}

/// Cache of the factorization data for one timestep value.
#[derive(Debug)]
struct StepCache {
    h: f64,
    /// Assembled `A0` — kept only on the `dense_rebuild` path, which
    /// restamps devices into a copy every iteration. The factoring paths
    /// never materialize it (a dense mirror of a large sparse system
    /// would dominate memory).
    a0: Option<Matrix>,
    /// Factorization of `A0` (absent on the `dense_rebuild` path).
    solver: Option<AnySolver>,
    /// `A0⁻¹·U` for the Woodbury device update.
    a0inv_u: Matrix,
}

fn volt(x: &[f64], idx: Option<usize>) -> f64 {
    idx.map_or(0.0, |i| x[i])
}

/// Records a two-terminal conductance as stamp triplets, in the same
/// entry order the dense stamping historically used.
fn stamp_t(t: &mut Vec<(usize, usize, f64)>, i: Option<usize>, j: Option<usize>, g: f64) {
    if let Some(i) = i {
        t.push((i, i, g));
    }
    if let Some(j) = j {
        t.push((j, j, g));
    }
    if let (Some(i), Some(j)) = (i, j) {
        t.push((i, j, -g));
        t.push((j, i, -g));
    }
}

/// Stamps a MOSFET Newton linearization into a dense matrix (used by the
/// `dense_rebuild` cross-check path).
fn stamp_device(
    a: &mut Matrix,
    d: Option<usize>,
    g: Option<usize>,
    s: Option<usize>,
    gm: f64,
    gds: f64,
) {
    if let Some(d_) = d {
        if let Some(dd) = d {
            a[(d_, dd)] += gds;
        }
        if let Some(gg) = g {
            a[(d_, gg)] += gm;
        }
        if let Some(ss) = s {
            a[(d_, ss)] -= gm + gds;
        }
    }
    if let Some(s_) = s {
        if let Some(dd) = d {
            a[(s_, dd)] -= gds;
        }
        if let Some(gg) = g {
            a[(s_, gg)] -= gm;
        }
        if let Some(ss) = s {
            a[(s_, ss)] += gm + gds;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_circuit::MosType;
    use linvar_circuit::SourceWaveform;
    use linvar_devices::tech_018;

    fn rc_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource(
            "V1",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.0,
                t0: 0.0,
                tr: 1e-12,
            },
        )
        .unwrap();
        nl.add_resistor("R1", inp, out, 1000.0).unwrap();
        nl.add_capacitor("C1", out, Netlist::GROUND, 1e-12).unwrap();
        nl
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let nl = rc_netlist();
        let mut opts = TransientOptions::new(5e-9, 5e-12);
        opts.probes.push("out".into());
        let res = Transient::new(&nl, &opts).unwrap().run().unwrap();
        let tau = 1e-9;
        let out = res.probe("out").unwrap();
        for (k, &t) in res.times.iter().enumerate() {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (out[k] - expect).abs() < 5e-3,
                "t={t:.3e}: {} vs {expect}",
                out[k]
            );
        }
    }

    #[test]
    fn coupling_cap_conserves_charge() {
        // Two caps in series from a ramp source: voltage divider by C.
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let mid = nl.node("mid");
        nl.add_vsource(
            "V1",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 2.0,
                t0: 0.0,
                tr: 1e-9,
            },
        )
        .unwrap();
        nl.add_capacitor("C1", inp, mid, 1e-12).unwrap();
        nl.add_capacitor("C2", mid, Netlist::GROUND, 1e-12).unwrap();
        let mut opts = TransientOptions::new(2e-9, 2e-12);
        opts.probes.push("mid".into());
        // Without the gmin leak the mid node floats; with it the divider
        // holds at C1/(C1+C2)·Vin = 1 V during the fast ramp.
        let res = Transient::new(&nl, &opts).unwrap().run().unwrap();
        let mid_v = res.probe("mid").unwrap();
        let at_ramp_end = res
            .times
            .iter()
            .position(|&t| t >= 1e-9)
            .unwrap_or(mid_v.len() - 1);
        assert!(
            (mid_v[at_ramp_end] - 1.0).abs() < 0.05,
            "capacitive divider: {}",
            mid_v[at_ramp_end]
        );
    }

    #[test]
    fn inverter_switches() {
        let tech = tech_018();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource("Vdd", vdd, Netlist::GROUND, SourceWaveform::Dc(1.8))
            .unwrap();
        nl.add_vsource(
            "Vin",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.8,
                t0: 50e-12,
                tr: 50e-12,
            },
        )
        .unwrap();
        nl.add_mosfet(
            "MP",
            out,
            inp,
            vdd,
            vdd,
            MosType::Pmos,
            &tech.library.pmos_name(),
            tech.wp,
            tech.library.lmin,
        )
        .unwrap();
        nl.add_mosfet(
            "MN",
            out,
            inp,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            &tech.library.nmos_name(),
            tech.wn,
            tech.library.lmin,
        )
        .unwrap();
        nl.add_capacitor("CL", out, Netlist::GROUND, 10e-15)
            .unwrap();
        let mut opts = TransientOptions::new(1e-9, 1e-12);
        opts.probes.push("out".into());
        let res = Transient::with_devices(&nl, &tech.library, DeviceVariation::nominal(), &opts)
            .unwrap()
            .run()
            .unwrap();
        let out_w = res.probe("out").unwrap();
        assert!(
            out_w[0] > 1.7,
            "output starts high (input low): {}",
            out_w[0]
        );
        let last = *out_w.last().unwrap();
        assert!(last < 0.1, "output ends low: {last}");
    }

    #[test]
    fn woodbury_matches_dense_rebuild() {
        let tech = tech_018();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource("Vdd", vdd, Netlist::GROUND, SourceWaveform::Dc(1.8))
            .unwrap();
        nl.add_vsource(
            "Vin",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 1.8,
                v1: 0.0,
                t0: 20e-12,
                tr: 80e-12,
            },
        )
        .unwrap();
        nl.add_mosfet(
            "MP",
            out,
            inp,
            vdd,
            vdd,
            MosType::Pmos,
            &tech.library.pmos_name(),
            tech.wp,
            tech.library.lmin,
        )
        .unwrap();
        nl.add_mosfet(
            "MN",
            out,
            inp,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            &tech.library.nmos_name(),
            tech.wn,
            tech.library.lmin,
        )
        .unwrap();
        nl.add_resistor("Rload", out, Netlist::GROUND, 1e5).unwrap();
        nl.add_capacitor("CL", out, Netlist::GROUND, 5e-15).unwrap();
        let mut opts = TransientOptions::new(0.5e-9, 1e-12);
        opts.probes.push("out".into());
        let fast = Transient::with_devices(&nl, &tech.library, DeviceVariation::nominal(), &opts)
            .unwrap()
            .run()
            .unwrap();
        opts.dense_rebuild = true;
        let slow = Transient::with_devices(&nl, &tech.library, DeviceVariation::nominal(), &opts)
            .unwrap()
            .run()
            .unwrap();
        let f = fast.probe("out").unwrap();
        let s = slow.probe("out").unwrap();
        assert_eq!(f.len(), s.len());
        for (a, b) in f.iter().zip(s) {
            assert!((a - b).abs() < 1e-6, "woodbury {a} vs dense {b}");
        }
        // Woodbury must factor far fewer matrices.
        assert!(fast.stats.lu_factorizations < slow.stats.lu_factorizations / 2);
    }

    #[test]
    fn unknown_probe_rejected() {
        let nl = rc_netlist();
        let mut opts = TransientOptions::new(1e-9, 1e-12);
        opts.probes.push("nope".into());
        assert!(Transient::new(&nl, &opts).is_err());
    }

    #[test]
    fn mosfets_require_library() {
        let tech = tech_018();
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_mosfet(
            "M1",
            a,
            a,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            &tech.library.nmos_name(),
            1e-6,
            0.18e-6,
        )
        .unwrap();
        let opts = TransientOptions::new(1e-9, 1e-12);
        assert!(Transient::new(&nl, &opts).is_err());
    }

    #[test]
    fn stats_are_populated() {
        let nl = rc_netlist();
        let opts = TransientOptions::new(1e-9, 10e-12);
        let res = Transient::new(&nl, &opts).unwrap().run().unwrap();
        assert!(res.stats.steps > 50);
        assert!(res.stats.newton_iterations >= res.stats.steps);
        assert!(res.stats.lu_factorizations >= 1);
    }

    #[test]
    fn well_behaved_circuits_need_no_recovery() {
        // Linear RC network: rung 0 (direct Newton, zero extra gmin) must
        // serve the operating point, and the sweep never halves the step.
        let nl = rc_netlist();
        let opts = TransientOptions::new(1e-9, 10e-12);
        let res = Transient::new(&nl, &opts).unwrap().run().unwrap();
        assert_eq!(res.recovery.dc_strategy, DcStrategy::DirectNewton);
        assert_eq!(res.recovery.dc_gmin_steps, 0);
        assert_eq!(res.recovery.dc_source_steps, 0);
        assert_eq!(res.recovery.timestep_halvings, 0);
        assert!((res.recovery.min_timestep_used - 10e-12).abs() < 1e-15);
        assert!(res.recovery.was_clean());

        // Device circuit: the inverter's DC point also comes from rung 0.
        let tech = tech_018();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource("Vdd", vdd, Netlist::GROUND, SourceWaveform::Dc(1.8))
            .unwrap();
        nl.add_vsource("Vin", inp, Netlist::GROUND, SourceWaveform::Dc(0.0))
            .unwrap();
        nl.add_mosfet(
            "MP",
            out,
            inp,
            vdd,
            vdd,
            MosType::Pmos,
            &tech.library.pmos_name(),
            tech.wp,
            tech.library.lmin,
        )
        .unwrap();
        nl.add_mosfet(
            "MN",
            out,
            inp,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            &tech.library.nmos_name(),
            tech.wn,
            tech.library.lmin,
        )
        .unwrap();
        nl.add_capacitor("CL", out, Netlist::GROUND, 10e-15)
            .unwrap();
        let opts = TransientOptions::new(50e-12, 1e-12);
        let res = Transient::with_devices(&nl, &tech.library, DeviceVariation::nominal(), &opts)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(res.recovery.dc_strategy, DcStrategy::DirectNewton);
    }
}
