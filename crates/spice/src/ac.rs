//! Small-signal AC analysis of linear networks.
//!
//! Solves `(G + jωC)·x = b` over a frequency sweep with a unit stimulus on
//! one named source. The primary consumer is macromodel validation: the
//! frequency response of a reduced-order model must track the full
//! netlist's up to the bandwidth its matched moments cover.
//!
//! The complex system is solved through [`CAnySolver`] — the real-embedded
//! `2n×2n` form of the `AnySolver` stack — so AC inherits the dense/sparse
//! backend selection (`LINVAR_SOLVER`), the diagonal-perturbation recovery
//! ladder, and workspace pooling of the real path. A sweep stamps the
//! union sparsity pattern of `G` and `C` once; every frequency point after
//! the first reuses it through the pattern-reuse refactor fast path (on
//! the sparse backend, numeric-only refactorization).

use crate::error::SpiceError;
use linvar_circuit::Netlist;
use linvar_numeric::{CAnySolver, Complex, Matrix, SolverChoice};
use std::collections::HashMap;

/// Result of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcResult {
    /// Analysis frequencies (Hz).
    pub freqs: Vec<f64>,
    /// Complex node response per probe, index-aligned with `freqs`.
    pub response: HashMap<String, Vec<Complex>>,
}

impl AcResult {
    /// Magnitude response of a probe.
    pub fn magnitude(&self, probe: &str) -> Option<Vec<f64>> {
        self.response
            .get(probe)
            .map(|v| v.iter().map(|z| z.abs()).collect())
    }
}

/// Generates `n` logarithmically spaced frequencies in `[f_lo, f_hi]`.
///
/// # Panics
///
/// Panics if the bounds are non-positive or reversed, or `n < 2`.
pub fn log_frequencies(f_lo: f64, f_hi: f64, n: usize) -> Vec<f64> {
    assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
    assert!(n >= 2, "need at least two points");
    let (l0, l1) = (f_lo.log10(), f_hi.log10());
    (0..n)
        .map(|k| 10f64.powf(l0 + (l1 - l0) * k as f64 / (n - 1) as f64))
        .collect()
}

/// Generates `n` linearly spaced frequencies in `[f_lo, f_hi]`.
///
/// # Panics
///
/// Panics if the bounds are reversed or `n < 2`.
pub fn linear_frequencies(f_lo: f64, f_hi: f64, n: usize) -> Vec<f64> {
    assert!(f_hi > f_lo, "need f_lo < f_hi");
    assert!(n >= 2, "need at least two points");
    (0..n)
        .map(|k| f_lo + (f_hi - f_lo) * k as f64 / (n - 1) as f64)
        .collect()
}

/// The frequency-invariant part of an AC sweep: the union sparsity
/// pattern of `G` and `C`, stamped once. Each point of the sweep maps
/// the pattern to complex triplets `g + jωc` — same structure at every
/// ω, which is what lets [`sweep_rows`] walk the refactor fast path.
struct AcOperator {
    n: usize,
    /// `(i, j, g, c)` for every position where `G` or `C` is nonzero.
    entries: Vec<(usize, usize, f64, f64)>,
}

impl AcOperator {
    fn from_dense(g: &Matrix, c: &Matrix) -> Self {
        let n = g.rows();
        let mut entries = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let (gij, cij) = (g[(i, j)], c[(i, j)]);
                if gij != 0.0 || cij != 0.0 {
                    entries.push((i, j, gij, cij));
                }
            }
        }
        AcOperator { n, entries }
    }

    fn triplets_at(&self, omega: f64, buf: &mut Vec<(usize, usize, Complex)>) {
        buf.clear();
        buf.extend(
            self.entries
                .iter()
                .map(|&(i, j, g, c)| (i, j, Complex::new(g, omega * c))),
        );
    }

    /// Solves the sweep and returns, per requested row, the complex
    /// response at every frequency. The first point factors through the
    /// recovery ladder; later points refactor at the fixed pattern and
    /// fall back to a fresh recovering factor if the reused pivots break
    /// down at some ω.
    fn sweep_rows(
        &self,
        rhs: &[Complex],
        freqs: &[f64],
        rows: &[usize],
        choice: SolverChoice,
    ) -> Result<Vec<Vec<Complex>>, SpiceError> {
        let mut out = vec![Vec::with_capacity(freqs.len()); rows.len()];
        let mut trip = Vec::with_capacity(self.entries.len());
        let mut solver: Option<CAnySolver> = None;
        let mut x = Vec::new();
        for &f in freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            self.triplets_at(omega, &mut trip);
            match solver.as_mut() {
                None => {
                    let (s, _rec) = CAnySolver::factor_triplets_recovering(self.n, &trip, choice)?;
                    solver = Some(s);
                }
                Some(s) => {
                    if s.refactor_triplets(self.n, &trip).is_err() {
                        let (s2, _rec) =
                            CAnySolver::factor_triplets_recovering(self.n, &trip, choice)?;
                        *s = s2;
                    }
                }
            }
            let s = solver.as_ref().expect("factored above");
            s.solve_into(rhs, &mut x)?;
            linvar_metrics::incr(linvar_metrics::Counter::AcPointsSolved);
            for (col, &row) in out.iter_mut().zip(rows) {
                col.push(x[row]);
            }
        }
        Ok(out)
    }
}

fn reject_mosfets(nl: &Netlist) -> Result<(), SpiceError> {
    if !nl.mosfets().is_empty() {
        return Err(SpiceError::BadCircuit(
            "ac analysis supports linear netlists only".into(),
        ));
    }
    Ok(())
}

/// Runs an AC sweep with a unit stimulus on the voltage source named
/// `source` (all other independent sources are zeroed: voltage sources
/// become shorts through their branch equations, current sources open).
/// Backend selection follows [`SolverChoice::Auto`].
///
/// # Errors
///
/// Returns [`SpiceError::BadCircuit`] for unknown source or probe names,
/// netlists containing MOSFETs (AC analysis here is for the *linear*
/// loads; linearize devices first), or a singular system.
pub fn ac_analysis(
    nl: &Netlist,
    source: &str,
    probes: &[&str],
    freqs: &[f64],
) -> Result<AcResult, SpiceError> {
    ac_analysis_with(nl, source, probes, freqs, SolverChoice::Auto)
}

/// [`ac_analysis`] with an explicit solver-backend choice.
///
/// # Errors
///
/// Same conditions as [`ac_analysis`].
pub fn ac_analysis_with(
    nl: &Netlist,
    source: &str,
    probes: &[&str],
    freqs: &[f64],
    choice: SolverChoice,
) -> Result<AcResult, SpiceError> {
    reject_mosfets(nl)?;
    let mna = nl.assemble_mna()?;
    let n = mna.g.rows();
    let source_branch = mna
        .vsource_names
        .iter()
        .position(|s| s == source)
        .ok_or_else(|| SpiceError::BadCircuit(format!("unknown voltage source {source}")))?;
    let mut probe_rows = Vec::with_capacity(probes.len());
    for p in probes {
        let node = nl
            .find_node(p)
            .ok_or_else(|| SpiceError::BadCircuit(format!("unknown probe node {p}")))?;
        let row = node
            .mna_index()
            .ok_or_else(|| SpiceError::BadCircuit("cannot probe ground".into()))?;
        probe_rows.push((p.to_string(), row));
    }
    let mut rhs = vec![Complex::ZERO; n];
    rhs[mna.node_count + source_branch] = Complex::ONE;

    let op = AcOperator::from_dense(&mna.g, &mna.c);
    let rows: Vec<usize> = probe_rows.iter().map(|&(_, r)| r).collect();
    let per_row = op.sweep_rows(&rhs, freqs, &rows, choice)?;
    let response = probe_rows
        .into_iter()
        .zip(per_row)
        .map(|((p, _), col)| (p, col))
        .collect();
    Ok(AcResult {
        freqs: freqs.to_vec(),
        response,
    })
}

/// AC current-injection sweep into a port node (no sources needed): solves
/// the node-space system `(G + jωC)·v = e_port` and returns the
/// driving-point impedance seen at the port. This is the direct
/// counterpart of a macromodel's `Z(s)` evaluation.
///
/// # Errors
///
/// Same conditions as [`ac_analysis`].
pub fn ac_impedance(nl: &Netlist, port: &str, freqs: &[f64]) -> Result<Vec<Complex>, SpiceError> {
    ac_impedance_with(nl, port, freqs, SolverChoice::Auto)
}

/// [`ac_impedance`] with an explicit solver-backend choice.
///
/// # Errors
///
/// Same conditions as [`ac_analysis`].
pub fn ac_impedance_with(
    nl: &Netlist,
    port: &str,
    freqs: &[f64],
    choice: SolverChoice,
) -> Result<Vec<Complex>, SpiceError> {
    reject_mosfets(nl)?;
    let var = nl.assemble_variational()?;
    let node = nl
        .find_node(port)
        .and_then(|n| n.mna_index())
        .ok_or_else(|| SpiceError::BadCircuit(format!("unknown port node {port}")))?;
    let n = var.order();
    let mut rhs = vec![Complex::ZERO; n];
    rhs[node] = Complex::ONE;
    let op = AcOperator::from_dense(&var.g0, &var.c0);
    let mut per_row = op.sweep_rows(&rhs, freqs, &[node], choice)?;
    Ok(per_row.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_circuit::SourceWaveform;

    fn rc_lowpass() -> Netlist {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource("V1", inp, Netlist::GROUND, SourceWaveform::Dc(0.0))
            .unwrap();
        nl.add_resistor("R1", inp, out, 1000.0).unwrap();
        nl.add_capacitor("C1", out, Netlist::GROUND, 1e-12).unwrap();
        nl
    }

    #[test]
    fn lowpass_magnitude_and_corner() {
        let nl = rc_lowpass();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1000.0 * 1e-12); // ≈159 MHz
        let freqs = [fc / 100.0, fc, fc * 100.0];
        let res = ac_analysis(&nl, "V1", &["out"], &freqs).unwrap();
        let mag = res.magnitude("out").unwrap();
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband gain {}", mag[0]);
        assert!(
            (mag[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3,
            "-3dB at corner: {}",
            mag[1]
        );
        assert!(mag[2] < 0.02, "stopband {}", mag[2]);
        // Phase at the corner is -45°.
        let phase = res.response["out"][1].arg().to_degrees();
        assert!((phase + 45.0).abs() < 0.5, "phase {phase}");
    }

    #[test]
    fn dense_and_sparse_sweeps_agree() {
        let nl = rc_lowpass();
        let freqs = log_frequencies(1e6, 1e10, 7);
        let dense = ac_analysis_with(&nl, "V1", &["out"], &freqs, SolverChoice::Dense).unwrap();
        let sparse = ac_analysis_with(&nl, "V1", &["out"], &freqs, SolverChoice::Sparse).unwrap();
        for (d, s) in dense.response["out"].iter().zip(&sparse.response["out"]) {
            assert!((*d - *s).abs() < 1e-12 * s.abs().max(1.0), "{d:?} vs {s:?}");
        }
    }

    #[test]
    fn impedance_of_parallel_rc() {
        let mut nl = Netlist::new();
        let p = nl.node("p");
        nl.add_resistor("R", p, Netlist::GROUND, 500.0).unwrap();
        nl.add_capacitor("C", p, Netlist::GROUND, 2e-12).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 500.0 * 2e-12);
        let z = ac_impedance(&nl, "p", &[fc / 1000.0, fc]).unwrap();
        assert!(
            (z[0].abs() - 500.0).abs() < 0.5,
            "dc-ish |Z| {}",
            z[0].abs()
        );
        assert!(
            (z[1].abs() - 500.0 / 2.0_f64.sqrt()).abs() < 1.0,
            "corner |Z| {}",
            z[1].abs()
        );
    }

    #[test]
    fn rom_tracks_full_netlist_impedance() {
        // Reduce a driven RC ladder and compare Z(jω) of the macromodel
        // with the full netlist over three decades.
        use linvar_mor::{extract_pole_residue, prima_reduce};
        let mut nl = Netlist::new();
        let p = nl.node("p");
        nl.add_resistor("Rdrv", p, Netlist::GROUND, 300.0).unwrap();
        let mut prev = p;
        for k in 0..30 {
            let next = nl.node(&format!("n{k}"));
            nl.add_resistor(&format!("R{k}"), prev, next, 5.0).unwrap();
            nl.add_capacitor(&format!("C{k}"), next, Netlist::GROUND, 20e-15)
                .unwrap();
            prev = next;
        }
        nl.mark_port(p).unwrap();
        let var = nl.assemble_variational().unwrap();
        let b = var.port_incidence();
        let rom = prima_reduce(&var.g0, &var.c0, &b, 6).unwrap();
        let pr = extract_pole_residue(&rom).unwrap();
        let freqs = log_frequencies(1e6, 5e9, 10);
        let z_full = ac_impedance(&nl, "p", &freqs).unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
            let z_rom = pr.eval(s)[(0, 0)];
            let err = (z_rom - z_full[k]).abs() / z_full[k].abs();
            assert!(err < 0.01, "f={f:.2e}: rom {z_rom} vs full {}", z_full[k]);
        }
    }

    #[test]
    fn log_frequencies_are_geometric() {
        let fs = log_frequencies(1e3, 1e6, 4);
        assert_eq!(fs.len(), 4);
        assert!((fs[0] - 1e3).abs() < 1e-9);
        assert!((fs[3] - 1e6).abs() < 1e-3);
        let r1 = fs[1] / fs[0];
        let r2 = fs[2] / fs[1];
        assert!((r1 - r2).abs() < 1e-9 * r1);
    }

    #[test]
    fn linear_frequencies_are_arithmetic() {
        let fs = linear_frequencies(1e6, 4e6, 4);
        assert_eq!(fs.len(), 4);
        assert!((fs[0] - 1e6).abs() < 1e-6);
        assert!((fs[1] - 2e6).abs() < 1e-6);
        assert!((fs[3] - 4e6).abs() < 1e-6);
    }

    #[test]
    fn bad_inputs_rejected() {
        let nl = rc_lowpass();
        assert!(ac_analysis(&nl, "Vx", &["out"], &[1e6]).is_err());
        assert!(ac_analysis(&nl, "V1", &["zzz"], &[1e6]).is_err());
        assert!(ac_impedance(&nl, "zzz", &[1e6]).is_err());
    }
}
