//! Small-signal AC analysis of linear networks.
//!
//! Solves `(G + jωC)·x = b` over a frequency sweep with a unit stimulus on
//! one named source. The primary consumer is macromodel validation: the
//! frequency response of a reduced-order model must track the full
//! netlist's up to the bandwidth its matched moments cover.

use crate::error::SpiceError;
use linvar_circuit::Netlist;
use linvar_numeric::{CLuFactor, CMatrix, Complex};
use std::collections::HashMap;

/// Result of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcResult {
    /// Analysis frequencies (Hz).
    pub freqs: Vec<f64>,
    /// Complex node response per probe, index-aligned with `freqs`.
    pub response: HashMap<String, Vec<Complex>>,
}

impl AcResult {
    /// Magnitude response of a probe.
    pub fn magnitude(&self, probe: &str) -> Option<Vec<f64>> {
        self.response
            .get(probe)
            .map(|v| v.iter().map(|z| z.abs()).collect())
    }
}

/// Generates `n` logarithmically spaced frequencies in `[f_lo, f_hi]`.
///
/// # Panics
///
/// Panics if the bounds are non-positive or reversed, or `n < 2`.
pub fn log_frequencies(f_lo: f64, f_hi: f64, n: usize) -> Vec<f64> {
    assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
    assert!(n >= 2, "need at least two points");
    let (l0, l1) = (f_lo.log10(), f_hi.log10());
    (0..n)
        .map(|k| 10f64.powf(l0 + (l1 - l0) * k as f64 / (n - 1) as f64))
        .collect()
}

/// Runs an AC sweep with a unit stimulus on the voltage source named
/// `source` (all other independent sources are zeroed: voltage sources
/// become shorts through their branch equations, current sources open).
///
/// # Errors
///
/// Returns [`SpiceError::BadCircuit`] for unknown source or probe names,
/// netlists containing MOSFETs (AC analysis here is for the *linear*
/// loads; linearize devices first), or a singular system.
pub fn ac_analysis(
    nl: &Netlist,
    source: &str,
    probes: &[&str],
    freqs: &[f64],
) -> Result<AcResult, SpiceError> {
    if !nl.mosfets().is_empty() {
        return Err(SpiceError::BadCircuit(
            "ac analysis supports linear netlists only".into(),
        ));
    }
    let mna = nl.assemble_mna()?;
    let n = mna.g.rows();
    let source_branch = mna
        .vsource_names
        .iter()
        .position(|s| s == source)
        .ok_or_else(|| SpiceError::BadCircuit(format!("unknown voltage source {source}")))?;
    let mut probe_rows = Vec::with_capacity(probes.len());
    for p in probes {
        let node = nl
            .find_node(p)
            .ok_or_else(|| SpiceError::BadCircuit(format!("unknown probe node {p}")))?;
        let row = node
            .mna_index()
            .ok_or_else(|| SpiceError::BadCircuit("cannot probe ground".into()))?;
        probe_rows.push((p.to_string(), row));
    }
    let mut rhs = vec![Complex::ZERO; n];
    rhs[mna.node_count + source_branch] = Complex::ONE;

    let mut response: HashMap<String, Vec<Complex>> = probe_rows
        .iter()
        .map(|(p, _)| (p.clone(), Vec::new()))
        .collect();
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut a = CMatrix::from_real(&mna.g);
        for i in 0..n {
            for j in 0..n {
                let cij = mna.c[(i, j)];
                if cij != 0.0 {
                    a[(i, j)] += Complex::new(0.0, omega * cij);
                }
            }
        }
        let x = CLuFactor::new(&a)?.solve(&rhs)?;
        for (p, row) in &probe_rows {
            response.get_mut(p).expect("inserted").push(x[*row]);
        }
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        response,
    })
}

/// AC current-injection sweep into a port node (no sources needed): solves
/// the node-space system `(G + jωC)·v = e_port` and returns the
/// driving-point impedance seen at the port. This is the direct
/// counterpart of a macromodel's `Z(s)` evaluation.
///
/// # Errors
///
/// Same conditions as [`ac_analysis`].
pub fn ac_impedance(nl: &Netlist, port: &str, freqs: &[f64]) -> Result<Vec<Complex>, SpiceError> {
    if !nl.mosfets().is_empty() {
        return Err(SpiceError::BadCircuit(
            "ac analysis supports linear netlists only".into(),
        ));
    }
    let var = nl.assemble_variational()?;
    let node = nl
        .find_node(port)
        .and_then(|n| n.mna_index())
        .ok_or_else(|| SpiceError::BadCircuit(format!("unknown port node {port}")))?;
    let n = var.order();
    let mut out = Vec::with_capacity(freqs.len());
    let mut rhs = vec![Complex::ZERO; n];
    rhs[node] = Complex::ONE;
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut a = CMatrix::from_real(&var.g0);
        for i in 0..n {
            for j in 0..n {
                let cij = var.c0[(i, j)];
                if cij != 0.0 {
                    a[(i, j)] += Complex::new(0.0, omega * cij);
                }
            }
        }
        let x = CLuFactor::new(&a)?.solve(&rhs)?;
        out.push(x[node]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_circuit::SourceWaveform;

    fn rc_lowpass() -> Netlist {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource("V1", inp, Netlist::GROUND, SourceWaveform::Dc(0.0))
            .unwrap();
        nl.add_resistor("R1", inp, out, 1000.0).unwrap();
        nl.add_capacitor("C1", out, Netlist::GROUND, 1e-12).unwrap();
        nl
    }

    #[test]
    fn lowpass_magnitude_and_corner() {
        let nl = rc_lowpass();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1000.0 * 1e-12); // ≈159 MHz
        let freqs = [fc / 100.0, fc, fc * 100.0];
        let res = ac_analysis(&nl, "V1", &["out"], &freqs).unwrap();
        let mag = res.magnitude("out").unwrap();
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband gain {}", mag[0]);
        assert!(
            (mag[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3,
            "-3dB at corner: {}",
            mag[1]
        );
        assert!(mag[2] < 0.02, "stopband {}", mag[2]);
        // Phase at the corner is -45°.
        let phase = res.response["out"][1].arg().to_degrees();
        assert!((phase + 45.0).abs() < 0.5, "phase {phase}");
    }

    #[test]
    fn impedance_of_parallel_rc() {
        let mut nl = Netlist::new();
        let p = nl.node("p");
        nl.add_resistor("R", p, Netlist::GROUND, 500.0).unwrap();
        nl.add_capacitor("C", p, Netlist::GROUND, 2e-12).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 500.0 * 2e-12);
        let z = ac_impedance(&nl, "p", &[fc / 1000.0, fc]).unwrap();
        assert!(
            (z[0].abs() - 500.0).abs() < 0.5,
            "dc-ish |Z| {}",
            z[0].abs()
        );
        assert!(
            (z[1].abs() - 500.0 / 2.0_f64.sqrt()).abs() < 1.0,
            "corner |Z| {}",
            z[1].abs()
        );
    }

    #[test]
    fn rom_tracks_full_netlist_impedance() {
        // Reduce a driven RC ladder and compare Z(jω) of the macromodel
        // with the full netlist over three decades.
        use linvar_mor::{extract_pole_residue, prima_reduce};
        let mut nl = Netlist::new();
        let p = nl.node("p");
        nl.add_resistor("Rdrv", p, Netlist::GROUND, 300.0).unwrap();
        let mut prev = p;
        for k in 0..30 {
            let next = nl.node(&format!("n{k}"));
            nl.add_resistor(&format!("R{k}"), prev, next, 5.0).unwrap();
            nl.add_capacitor(&format!("C{k}"), next, Netlist::GROUND, 20e-15)
                .unwrap();
            prev = next;
        }
        nl.mark_port(p).unwrap();
        let var = nl.assemble_variational().unwrap();
        let b = var.port_incidence();
        let rom = prima_reduce(&var.g0, &var.c0, &b, 6).unwrap();
        let pr = extract_pole_residue(&rom).unwrap();
        let freqs = log_frequencies(1e6, 5e9, 10);
        let z_full = ac_impedance(&nl, "p", &freqs).unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
            let z_rom = pr.eval(s)[(0, 0)];
            let err = (z_rom - z_full[k]).abs() / z_full[k].abs();
            assert!(err < 0.01, "f={f:.2e}: rom {z_rom} vs full {}", z_full[k]);
        }
    }

    #[test]
    fn log_frequencies_are_geometric() {
        let fs = log_frequencies(1e3, 1e6, 4);
        assert_eq!(fs.len(), 4);
        assert!((fs[0] - 1e3).abs() < 1e-9);
        assert!((fs[3] - 1e6).abs() < 1e-3);
        let r1 = fs[1] / fs[0];
        let r2 = fs[2] / fs[1];
        assert!((r1 - r2).abs() < 1e-9 * r1);
    }

    #[test]
    fn bad_inputs_rejected() {
        let nl = rc_lowpass();
        assert!(ac_analysis(&nl, "Vx", &["out"], &[1e6]).is_err());
        assert!(ac_analysis(&nl, "V1", &["zzz"], &[1e6]).is_err());
        assert!(ac_impedance(&nl, "zzz", &[1e6]).is_err());
    }
}
