//! Waveform measurements: threshold crossings, delay and slew.

/// Time at which a sampled waveform crosses `level` in the given direction,
/// linearly interpolated between samples. Returns the **first** qualifying
/// crossing at or after `t_start`, or `None`.
pub fn crossing_time(
    times: &[f64],
    values: &[f64],
    level: f64,
    rising: bool,
    t_start: f64,
) -> Option<f64> {
    if times.len() != values.len() || times.len() < 2 {
        return None;
    }
    for k in 1..times.len() {
        if times[k] < t_start {
            continue;
        }
        let (v0, v1) = (values[k - 1], values[k]);
        let crossed = if rising {
            v0 < level && v1 >= level
        } else {
            v0 > level && v1 <= level
        };
        if crossed {
            let (t0, t1) = (times[k - 1], times[k]);
            if (v1 - v0).abs() < 1e-30 {
                return Some(t1);
            }
            let t = t0 + (t1 - t0) * (level - v0) / (v1 - v0);
            if t >= t_start {
                return Some(t);
            }
        }
    }
    None
}

/// 50 %-to-50 % delay between an input and an output waveform sharing a
/// time axis. Directions are detected from each waveform's start/end
/// levels. Returns `None` if either waveform never crosses its midpoint.
pub fn delay_between(
    times: &[f64],
    input: &[f64],
    output: &[f64],
    v_low: f64,
    v_high: f64,
) -> Option<f64> {
    let mid = 0.5 * (v_low + v_high);
    let in_rising = *input.last()? > *input.first()?;
    let out_rising = *output.last()? > *output.first()?;
    let t_in = crossing_time(times, input, mid, in_rising, 0.0)?;
    let t_out = crossing_time(times, output, mid, out_rising, t_in)?;
    Some(t_out - t_in)
}

/// 10 %–90 % transition time of a waveform between the given rails.
/// Returns `None` if the waveform does not complete the transition.
pub fn slew_time(times: &[f64], values: &[f64], v_low: f64, v_high: f64) -> Option<f64> {
    let swing = v_high - v_low;
    let rising = *values.last()? > *values.first()?;
    let (lo_level, hi_level) = (v_low + 0.1 * swing, v_low + 0.9 * swing);
    if rising {
        let t0 = crossing_time(times, values, lo_level, true, 0.0)?;
        let t1 = crossing_time(times, values, hi_level, true, t0)?;
        Some(t1 - t0)
    } else {
        let t0 = crossing_time(times, values, hi_level, false, 0.0)?;
        let t1 = crossing_time(times, values, lo_level, false, t0)?;
        Some(t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ramp_crossing() {
        let times = [0.0, 1.0, 2.0];
        let values = [0.0, 0.5, 1.0];
        let t = crossing_time(&times, &values, 0.25, true, 0.0).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!(crossing_time(&times, &values, 0.25, false, 0.0).is_none());
    }

    #[test]
    fn crossing_respects_t_start() {
        // Pulse: up then down.
        let times = [0.0, 1.0, 2.0, 3.0];
        let values = [0.0, 1.0, 1.0, 0.0];
        let up = crossing_time(&times, &values, 0.5, true, 0.0).unwrap();
        assert!((up - 0.5).abs() < 1e-12);
        let down = crossing_time(&times, &values, 0.5, false, up).unwrap();
        assert!((down - 2.5).abs() < 1e-12);
    }

    #[test]
    fn delay_of_shifted_ramps() {
        let times: Vec<f64> = (0..100).map(|k| k as f64 * 0.1).collect();
        let input: Vec<f64> = times.iter().map(|&t| ramp(t, 1.0, 2.0)).collect();
        let output: Vec<f64> = times.iter().map(|&t| 1.0 - ramp(t, 4.0, 2.0)).collect();
        // Input crosses 0.5 at t=2, output (falling) crosses 0.5 at t=5.
        let d = delay_between(&times, &input, &output, 0.0, 1.0).unwrap();
        assert!((d - 3.0).abs() < 1e-9, "delay {d}");
    }

    fn ramp(t: f64, t0: f64, tr: f64) -> f64 {
        ((t - t0) / tr).clamp(0.0, 1.0)
    }

    #[test]
    fn slew_of_ramp() {
        let times: Vec<f64> = (0..200).map(|k| k as f64 * 0.05).collect();
        let values: Vec<f64> = times.iter().map(|&t| ramp(t, 1.0, 4.0)).collect();
        // 10%→90% of a 4 s full ramp = 3.2 s.
        let s = slew_time(&times, &values, 0.0, 1.0).unwrap();
        assert!((s - 3.2).abs() < 0.05, "slew {s}");
        // Falling version.
        let fall: Vec<f64> = values.iter().map(|v| 1.0 - v).collect();
        let s = slew_time(&times, &fall, 0.0, 1.0).unwrap();
        assert!((s - 3.2).abs() < 0.05);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(crossing_time(&[], &[], 0.5, true, 0.0).is_none());
        assert!(crossing_time(&[0.0], &[1.0], 0.5, true, 0.0).is_none());
        let times = [0.0, 1.0];
        let flat = [0.2, 0.2];
        assert!(slew_time(&times, &flat, 0.0, 1.0).is_none());
    }
}
