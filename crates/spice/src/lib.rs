//! `linvar-spice`: the general-purpose transient circuit simulator used as
//! the paper's baseline (its role is played by SPICE3f5 in the paper; see
//! substitution #1 in `DESIGN.md`).
//!
//! A conventional time-domain engine built from the two standard
//! techniques the paper names in §3.1: numerical integration (trapezoidal
//! companion models) and Newton-based nonlinear solution (per-iteration
//! linearization of the level-1 MOSFETs). Because the Newton linearization
//! produces an iteration-dependent Norton equivalent, a **non-passive
//! linear load can make the effective load unstable and the analysis
//! diverge** — exactly the failure mode Example 1 demonstrates when the raw
//! variational macromodel is handed to SPICE. The engine detects this and
//! reports [`SpiceError::ConvergenceFailure`] rather than looping forever.
//!
//! # Example
//!
//! ```
//! use linvar_circuit::{Netlist, SourceWaveform};
//! use linvar_spice::{Transient, TransientOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // RC low-pass step response.
//! let mut nl = Netlist::new();
//! let inp = nl.node("in");
//! let out = nl.node("out");
//! nl.add_vsource("V1", inp, Netlist::GROUND, SourceWaveform::Ramp {
//!     v0: 0.0, v1: 1.0, t0: 0.0, tr: 1e-12,
//! })?;
//! nl.add_resistor("R1", inp, out, 1000.0)?;
//! nl.add_capacitor("C1", out, Netlist::GROUND, 1e-12)?;
//! let mut opts = TransientOptions::new(10e-9, 10e-12);
//! opts.probes.push("out".into());
//! let result = Transient::new(&nl, &opts)?.run()?;
//! let v_end = *result.probe("out").unwrap().last().unwrap();
//! assert!((v_end - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod engine;
pub mod error;
pub mod measure;
pub mod poleres_load;

pub use ac::{
    ac_analysis, ac_analysis_with, ac_impedance, ac_impedance_with, linear_frequencies,
    log_frequencies, AcResult,
};
pub use engine::{DcStrategy, RecoveryLog, Transient, TransientOptions, TransientResult};
pub use error::SpiceError;
pub use measure::{crossing_time, delay_between, slew_time};
pub use poleres_load::OnePortPoleResidue;
