//! Variational reduced-order models (paper §2, eqs. 8–11).
//!
//! The library precharacterization computes the nominal projection basis
//! `X0` and per-parameter basis sensitivities `dXi` by central finite
//! differences over a design of experiments (one ±δ pair per parameter).
//! The evaluated reduced matrices keep only the 0th- and 1st-order terms:
//!
//! ```text
//! Gr(w) ≈ X0ᵀG0X0 + Σ wi·(dXiᵀG0X0 + X0ᵀdGiX0 + X0ᵀG0dXi)
//! ```
//!
//! which is *not* a congruence transformation — exactly the property the
//! paper identifies as the reason variational macromodels lose passivity
//! (and possibly stability), motivating the pole/residue stabilization and
//! the chord-based simulation flow.

use crate::pact::pact_reduce;
use crate::prima::{prima_basis, prima_project, ReducedModel};
use linvar_circuit::VariationalMna;
use linvar_numeric::{CMatrix, Complex, Matrix, NumericError};

/// Projection algorithm used for the reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionMethod {
    /// Block-Arnoldi PRIMA with the given total reduced order.
    Prima {
        /// Number of Krylov basis vectors (reduced order).
        order: usize,
    },
    /// PACT keeping the given number of internal modes
    /// (reduced order = ports + modes).
    Pact {
        /// Number of retained internal modes.
        internal_modes: usize,
    },
}

/// A precharacterized variational reduced-order model library entry.
///
/// Built once per interconnect structure; evaluated cheaply for every
/// parameter sample of a statistical analysis.
#[derive(Debug, Clone)]
pub struct VariationalRom {
    method: ReductionMethod,
    /// Nominal basis (original order × reduced order).
    x0: Matrix,
    /// Basis sensitivities per parameter.
    dx: Vec<Matrix>,
    gr0: Matrix,
    cr0: Matrix,
    br0: Matrix,
    dgr: Vec<Matrix>,
    dcr: Vec<Matrix>,
    dbr: Vec<Matrix>,
}

/// Computes the projection basis for `(G, C)` with the given method.
fn basis_at(
    g: &Matrix,
    c: &Matrix,
    b: &Matrix,
    port_indices: &[usize],
    method: ReductionMethod,
) -> Result<Matrix, NumericError> {
    match method {
        ReductionMethod::Prima { order } => prima_basis(g, c, b, order),
        ReductionMethod::Pact { internal_modes } => {
            let (_, x) = pact_reduce(g, c, port_indices, internal_modes)?;
            Ok(x)
        }
    }
}

/// Aligns `x` to `x0` column by column: greedy max-|inner-product| matching
/// followed by a sign fix, so finite differences of bases are meaningful
/// despite eigenvector/Krylov-vector ordering and sign ambiguity.
fn align_basis(x0: &Matrix, x: &Matrix) -> Matrix {
    let q = x0.cols();
    let mut aligned = Matrix::zeros(x0.rows(), q);
    let mut used = vec![false; x.cols()];
    for j in 0..q {
        let target = x0.col(j);
        let mut best = None;
        let mut best_dot = 0.0_f64;
        for k in 0..x.cols() {
            if used[k] {
                continue;
            }
            let cand = x.col(k);
            let dot: f64 = target.iter().zip(&cand).map(|(a, b)| a * b).sum();
            if dot.abs() > best_dot.abs() || best.is_none() {
                best_dot = dot;
                best = Some(k);
            }
        }
        if let Some(k) = best {
            used[k] = true;
            let col = x.col(k);
            let sign = if best_dot < 0.0 { -1.0 } else { 1.0 };
            let col: Vec<f64> = col.iter().map(|v| v * sign).collect();
            aligned.set_col(j, &col);
        }
    }
    aligned
}

impl VariationalRom {
    /// Precharacterizes the variational ROM library for the given linear
    /// load and method. `delta` is the finite-difference step on the
    /// normalized parameters (0.01–0.1 is appropriate for parameters whose
    /// working range is about ±1).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] for a non-positive `delta` or
    /// when a perturbed basis loses rank, plus any factorization error from
    /// the underlying reduction.
    pub fn characterize(
        var: &VariationalMna,
        method: ReductionMethod,
        delta: f64,
    ) -> Result<Self, NumericError> {
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(NumericError::InvalidInput(
                "finite-difference step must be positive".into(),
            ));
        }
        let b = var.port_incidence();
        let x0 = basis_at(&var.g0, &var.c0, &b, &var.port_indices, method)?;
        let q = x0.cols();
        let np = var.param_count();
        let mut dx = Vec::with_capacity(np);
        for i in 0..np {
            let mut w = vec![0.0; np];
            w[i] = delta;
            let (g_hi, c_hi) = var.eval(&w)?;
            w[i] = -delta;
            let (g_lo, c_lo) = var.eval(&w)?;
            let x_hi = basis_at(&g_hi, &c_hi, &b, &var.port_indices, method)?;
            let x_lo = basis_at(&g_lo, &c_lo, &b, &var.port_indices, method)?;
            if x_hi.cols() != q || x_lo.cols() != q {
                return Err(NumericError::InvalidInput(format!(
                    "perturbed basis rank changed for parameter {i} \
                     ({} / {} vs {q} columns)",
                    x_hi.cols(),
                    x_lo.cols()
                )));
            }
            let x_hi = align_basis(&x0, &x_hi);
            let x_lo = align_basis(&x0, &x_lo);
            let mut d = &x_hi - &x_lo;
            d.scale_mut(1.0 / (2.0 * delta));
            dx.push(d);
        }
        // Nominal reduced matrices.
        let nominal = prima_project(&var.g0, &var.c0, &b, &x0);
        // First-order reduced-matrix sensitivities, eq. (11):
        // dGr_i = dXiᵀ G0 X0 + X0ᵀ dGi X0 + X0ᵀ G0 dXi.
        let mut dgr = Vec::with_capacity(np);
        let mut dcr = Vec::with_capacity(np);
        let mut dbr = Vec::with_capacity(np);
        for i in 0..np {
            let dxi = &dx[i];
            let dgr_i = {
                let t1 = dxi.transpose().mul_mat(&var.g0.mul_mat(&x0));
                let t2 = x0.transpose().mul_mat(&var.dg[i].mul_mat(&x0));
                let t3 = x0.transpose().mul_mat(&var.g0.mul_mat(dxi));
                &(&t1 + &t2) + &t3
            };
            let dcr_i = {
                let t1 = dxi.transpose().mul_mat(&var.c0.mul_mat(&x0));
                let t2 = x0.transpose().mul_mat(&var.dc[i].mul_mat(&x0));
                let t3 = x0.transpose().mul_mat(&var.c0.mul_mat(dxi));
                &(&t1 + &t2) + &t3
            };
            let dbr_i = dxi.transpose().mul_mat(&b);
            dgr.push(dgr_i);
            dcr.push(dcr_i);
            dbr.push(dbr_i);
        }
        Ok(VariationalRom {
            method,
            x0,
            dx,
            gr0: nominal.gr,
            cr0: nominal.cr,
            br0: nominal.br,
            dgr,
            dcr,
            dbr,
        })
    }

    /// Evaluates the first-order variational reduced model at sample `w`
    /// (paper eq. 11 — higher-order terms dropped, congruence broken).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if a sensitivity matrix
    /// disagrees in shape with the nominal reduced matrices (possible only
    /// through inconsistent mutation after characterization).
    pub fn evaluate(&self, w: &[f64]) -> Result<ReducedModel, NumericError> {
        let mut out = ReducedModel {
            gr: self.gr0.clone(),
            cr: self.cr0.clone(),
            br: self.br0.clone(),
        };
        self.accumulate_sensitivities(w, &mut out)?;
        Ok(out)
    }

    /// Evaluates the first-order model at `w` *into* an existing
    /// [`ReducedModel`] of matching shape, reusing its `Gr/Cr/Br`
    /// storage — the per-sample hot-path form of
    /// [`VariationalRom::evaluate`]. The output matrices are fully
    /// overwritten with the nominal matrices and then receive the same
    /// AXPY updates in the same order, so the result is bitwise
    /// identical to the allocating path.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if a sensitivity matrix
    /// disagrees in shape with the nominal reduced matrices.
    ///
    /// # Panics
    ///
    /// Panics if `out`'s matrices do not match the ROM's shapes (take
    /// them from a workspace arena sized by [`VariationalRom::order`] /
    /// [`VariationalRom::port_count`]).
    pub fn evaluate_into(&self, w: &[f64], out: &mut ReducedModel) -> Result<(), NumericError> {
        out.gr.copy_from(&self.gr0);
        out.cr.copy_from(&self.cr0);
        out.br.copy_from(&self.br0);
        self.accumulate_sensitivities(w, out)
    }

    /// Shared AXPY accumulation of eq. (11)'s first-order terms.
    fn accumulate_sensitivities(
        &self,
        w: &[f64],
        out: &mut ReducedModel,
    ) -> Result<(), NumericError> {
        for (i, ((dg, dc), db)) in self.dgr.iter().zip(&self.dcr).zip(&self.dbr).enumerate() {
            if let Some(&wi) = w.get(i) {
                if wi != 0.0 {
                    out.gr.axpy(wi, dg)?;
                    out.cr.axpy(wi, dc)?;
                    out.br.axpy(wi, db)?;
                }
            }
        }
        Ok(())
    }

    /// Port transfer matrix `H(w, s) = Br(w)ᵀ (Gr(w) + s·Cr(w))⁻¹ Br(w)`
    /// of the first-order variational model at sample `w` and complex
    /// frequency `s` (use `s = jω` for the AC response).
    ///
    /// This is the vROM's answer to the question the full-order AC sweep
    /// answers exactly — evaluating it over a frequency grid gives the
    /// point-by-point comparison the frequency-domain conformance suite
    /// locks down.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from [`VariationalRom::evaluate`] and
    /// [`NumericError::SingularMatrix`] from an exactly-hit pole.
    pub fn transfer_at(&self, w: &[f64], s: Complex) -> Result<CMatrix, NumericError> {
        self.evaluate(w)?.transfer_at(s)
    }

    /// Reference evaluation: recomputes the *exact* reduction at sample `w`
    /// from scratch (re-assembled matrices, fresh basis). This is what a
    /// non-variational flow would do for every sample; used to measure the
    /// first-order model's accuracy and the runtime advantage.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors at the sample point.
    pub fn evaluate_exact(
        &self,
        var: &VariationalMna,
        w: &[f64],
    ) -> Result<ReducedModel, NumericError> {
        let (g, c) = var.eval(w)?;
        let b = var.port_incidence();
        let x = basis_at(&g, &c, &b, &var.port_indices, self.method)?;
        Ok(prima_project(&g, &c, &b, &x))
    }

    /// The nominal projection basis.
    pub fn basis(&self) -> &Matrix {
        &self.x0
    }

    /// Basis sensitivity for parameter `i`.
    pub fn basis_sensitivity(&self, i: usize) -> Option<&Matrix> {
        self.dx.get(i)
    }

    /// Reduced order.
    pub fn order(&self) -> usize {
        self.gr0.rows()
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.br0.cols()
    }

    /// Number of variation parameters.
    pub fn param_count(&self) -> usize {
        self.dgr.len()
    }

    /// The reduction method used at characterization.
    pub fn method(&self) -> ReductionMethod {
        self.method
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_circuit::{Netlist, VariationalValue};

    /// Variational RC ladder netlist: R and C values scale with parameter 0.
    fn var_ladder(n: usize) -> VariationalMna {
        let mut nl = Netlist::new();
        let p = nl.params.declare("p");
        let mut prev = nl.node("n0");
        nl.mark_port(prev).unwrap();
        // Driver conductance grounds the port (G_SC folding).
        nl.add_resistor("Rdrv", prev, Netlist::GROUND, 50.0)
            .unwrap();
        for i in 1..=n {
            let next = nl.node(&format!("n{i}"));
            nl.add_variational_resistor(
                &format!("R{i}"),
                prev,
                next,
                VariationalValue::new(10.0).with_relative_sensitivity(p, 0.5),
            )
            .unwrap();
            nl.add_variational_capacitor(
                &format!("C{i}"),
                next,
                Netlist::GROUND,
                VariationalValue::new(1e-12).with_relative_sensitivity(p, 0.5),
            )
            .unwrap();
            prev = next;
        }
        nl.assemble_variational().unwrap()
    }

    #[test]
    fn nominal_evaluation_matches_direct_reduction() {
        let var = var_ladder(10);
        let rom =
            VariationalRom::characterize(&var, ReductionMethod::Prima { order: 4 }, 0.01).unwrap();
        let at0 = rom.evaluate(&[0.0]).unwrap();
        let exact = rom.evaluate_exact(&var, &[0.0]).unwrap();
        assert!((&at0.gr - &exact.gr).max_abs() < 1e-9 * exact.gr.max_abs());
        assert!((&at0.cr - &exact.cr).max_abs() < 1e-9 * exact.cr.max_abs());
    }

    #[test]
    fn first_order_tracks_exact_for_small_w() {
        let var = var_ladder(10);
        let rom =
            VariationalRom::characterize(&var, ReductionMethod::Prima { order: 4 }, 0.01).unwrap();
        let w = [0.05];
        let approx = rom.evaluate(&w).unwrap();
        let exact = rom.evaluate_exact(&var, &w).unwrap();
        // DC impedance comparison is basis-independent.
        let z_a = approx.dc_impedance().unwrap()[(0, 0)];
        let z_e = exact.dc_impedance().unwrap()[(0, 0)];
        assert!(
            (z_a - z_e).abs() < 0.02 * z_e.abs(),
            "first-order {z_a} vs exact {z_e}"
        );
    }

    #[test]
    fn first_order_error_grows_quadratically() {
        let var = var_ladder(8);
        let rom =
            VariationalRom::characterize(&var, ReductionMethod::Prima { order: 3 }, 0.01).unwrap();
        let err_at = |wv: f64| -> f64 {
            let a = rom.evaluate(&[wv]).unwrap().dc_impedance().unwrap()[(0, 0)];
            let e = rom
                .evaluate_exact(&var, &[wv])
                .unwrap()
                .dc_impedance()
                .unwrap()[(0, 0)];
            (a - e).abs()
        };
        let e1 = err_at(0.05);
        let e2 = err_at(0.2);
        // Quadratic scaling: e2/e1 ≈ (0.2/0.05)² = 16; accept 8–32.
        if e1 > 1e-12 {
            let ratio = e2 / e1;
            assert!((4.0..=64.0).contains(&ratio), "error ratio {ratio}");
        }
    }

    #[test]
    fn pact_method_also_characterizes() {
        let var = var_ladder(10);
        let rom =
            VariationalRom::characterize(&var, ReductionMethod::Pact { internal_modes: 3 }, 0.01)
                .unwrap();
        assert_eq!(rom.order(), 1 + 3, "ports + internal modes");
        assert_eq!(rom.port_count(), 1);
        assert_eq!(rom.param_count(), 1);
        let z0 = rom.evaluate(&[0.0]).unwrap().dc_impedance().unwrap()[(0, 0)];
        let ze = rom
            .evaluate_exact(&var, &[0.0])
            .unwrap()
            .dc_impedance()
            .unwrap()[(0, 0)];
        assert!((z0 - ze).abs() < 1e-8 * ze.abs());
    }

    #[test]
    fn invalid_delta_rejected() {
        let var = var_ladder(4);
        assert!(
            VariationalRom::characterize(&var, ReductionMethod::Prima { order: 2 }, 0.0).is_err()
        );
        assert!(
            VariationalRom::characterize(&var, ReductionMethod::Prima { order: 2 }, f64::NAN)
                .is_err()
        );
    }

    #[test]
    fn align_basis_fixes_signs() {
        let x0 = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        // Same basis with flipped signs and swapped columns.
        let x = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let a = align_basis(&x0, &x);
        assert!((a[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((a[(1, 1)] - 1.0).abs() < 1e-15);
        assert!(a[(0, 1)].abs() < 1e-15);
    }

    #[test]
    fn evaluate_with_short_sample_vector() {
        let var = var_ladder(5);
        let rom =
            VariationalRom::characterize(&var, ReductionMethod::Prima { order: 3 }, 0.01).unwrap();
        let a = rom.evaluate(&[]).unwrap();
        let b = rom.evaluate(&[0.0]).unwrap();
        assert!((&a.gr - &b.gr).max_abs() == 0.0);
    }
}
