//! Pole/residue transformation of reduced-order models (paper eqs. 13–20).
//!
//! The port impedance matrix of a reduced model is
//! `Z(s) = Brᵀ (Gr + s·Cr)⁻¹ Br`. With `T = -Gr⁻¹Cr = S·D·S⁻¹`:
//!
//! ```text
//! Z(s) = Brᵀ S (I - s·D)⁻¹ S⁻¹ Gr⁻¹ Br
//! Z_ij(s) = Σ_k  µ_ik·ν_kj / (1 - s·d_k)
//! ```
//!
//! Rewriting each term over the pole `p_k = 1/d_k` gives the standard
//! `r_k / (s - p_k)` form stored here (modes with `d_k ≈ 0` contribute a
//! constant, resistive term). The eigendecomposition is performed **once**
//! and shared by all `Np²` entries — the efficiency note under eq. (20).

use crate::prima::ReducedModel;
use linvar_numeric::{
    eigen_decompose, with_workspace, CLuFactor, CMatrix, Complex, LuFactor, Matrix, NumericError,
    Workspace,
};

/// A multiport impedance macromodel in pole/residue form:
/// `Z(s) = direct + Σ_k R_k / (s - p_k)`.
#[derive(Debug, Clone)]
pub struct PoleResidueModel {
    /// Poles `p_k` (rad/s). Conjugate pairs appear explicitly.
    pub poles: Vec<Complex>,
    /// Residue matrix per pole; `residues[k]` is `Np x Np`.
    pub residues: Vec<CMatrix>,
    /// Constant (resistive) term from zero-capacitance modes.
    pub direct: Matrix,
}

/// Relative threshold below which an eigenvalue of `T` counts as a
/// zero-capacitance (purely resistive) mode. Applied against the *median*
/// eigenvalue magnitude: a floating load's integrator mode produces one
/// astronomically large `|d|` that would otherwise swallow every real
/// time constant into the threshold.
const ZERO_MODE_REL_TOL: f64 = 1e-9;

impl PoleResidueModel {
    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.direct.rows()
    }

    /// Number of poles.
    pub fn pole_count(&self) -> usize {
        self.poles.len()
    }

    /// Largest pole magnitude (the frequency scale of the model).
    pub fn pole_scale(&self) -> f64 {
        self.poles.iter().fold(0.0_f64, |m, p| m.max(p.abs()))
    }

    /// Whether a given pole counts as unstable *relative to the model's
    /// frequency scale*. A real part within `1e-9` of the scale is
    /// numerical noise around an integrator mode (a floating RC load has a
    /// pole at the origin whose computed sign is arbitrary) and is treated
    /// as stable.
    pub fn pole_is_unstable(&self, p: Complex) -> bool {
        p.re > 1e-9 * self.pole_scale()
    }

    /// Poles with (significantly) positive real part — instability
    /// witnesses.
    pub fn unstable_poles(&self) -> Vec<Complex> {
        self.poles
            .iter()
            .copied()
            .filter(|&p| self.pole_is_unstable(p))
            .collect()
    }

    /// `true` if every pole lies in the (numerically) closed left half
    /// plane.
    pub fn is_stable(&self) -> bool {
        self.unstable_poles().is_empty()
    }

    /// Evaluates `Z(s)` at a complex frequency.
    pub fn eval(&self, s: Complex) -> CMatrix {
        let np = self.port_count();
        let mut z = CMatrix::from_real(&self.direct);
        for (p, r) in self.poles.iter().zip(&self.residues) {
            let denom = s - *p;
            for i in 0..np {
                for j in 0..np {
                    z[(i, j)] += r[(i, j)] / denom;
                }
            }
        }
        z
    }

    /// DC impedance `Z(0) = direct - Σ R_k / p_k`.
    pub fn dc(&self) -> Matrix {
        let np = self.port_count();
        let mut z = self.direct.clone();
        for (p, r) in self.poles.iter().zip(&self.residues) {
            for i in 0..np {
                for j in 0..np {
                    z[(i, j)] += (-(r[(i, j)] / *p)).re;
                }
            }
        }
        z
    }
}

/// Extracts the pole/residue macromodel of a reduced-order model.
///
/// # Errors
///
/// Returns [`NumericError::SingularMatrix`] if `Gr` is singular (a load
/// with no DC path — fold the driver conductances first) and propagates
/// eigensolver failures for defective `T` matrices.
pub fn extract_pole_residue(rom: &ReducedModel) -> Result<PoleResidueModel, NumericError> {
    with_workspace(|ws| extract_pole_residue_in(rom, ws))
}

/// [`extract_pole_residue`] with the real-matrix temporaries (the LU
/// factor of `Gr`, `T = -Gr⁻¹Cr`, `Gr⁻¹Br`) served by the given
/// workspace arena. Same arithmetic in the same order — the workspace
/// hands out zeroed storage that is fully overwritten, and negating in
/// place is elementwise `x * -1.0` exactly like the allocating `-&m`
/// path — so results are bitwise identical.
fn extract_pole_residue_in(
    rom: &ReducedModel,
    ws: &mut Workspace,
) -> Result<PoleResidueModel, NumericError> {
    let q = rom.order();
    let np = rom.port_count();
    let gr_lu = LuFactor::new_in(&rom.gr, ws)?;
    // T = -Gr⁻¹ Cr.
    let mut t = gr_lu.solve_mat_in(&rom.cr, ws)?;
    t.scale_mut(-1.0);
    let dec = eigen_decompose(&t)?;
    ws.recycle_matrix(t);
    let s = &dec.vectors;
    let s_inv = CLuFactor::new(s)?.inverse()?;
    // µ = Brᵀ S  (Np x q), ν = S⁻¹ Gr⁻¹ Br (q x Np).
    let mu = {
        // Brᵀ S: (Np x q).
        let brt = CMatrix::from_real(&rom.br.transpose());
        brt.mul_mat(s)
    };
    let nu = {
        let g_inv_b = gr_lu.solve_mat_in(&rom.br, ws)?;
        let nu = s_inv.mul_mat(&CMatrix::from_real(&g_inv_b));
        ws.recycle_matrix(g_inv_b);
        nu
    };
    gr_lu.recycle(ws);
    // Median |d| is robust against a floating-load integrator mode.
    let zero_threshold = {
        let mut mags: Vec<f64> = dec.values.iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = mags.get(mags.len() / 2).copied().unwrap_or(0.0);
        ZERO_MODE_REL_TOL * median + f64::MIN_POSITIVE
    };
    let mut poles = Vec::new();
    let mut residues = Vec::new();
    let mut direct = Matrix::zeros(np, np);
    for k in 0..q {
        let d_k = dec.values[k];
        // Outer product µ[:,k] ⊗ ν[k,:].
        let mut outer = CMatrix::zeros(np, np);
        for i in 0..np {
            for j in 0..np {
                outer[(i, j)] = mu[(i, k)] * nu[(k, j)];
            }
        }
        if d_k.abs() < zero_threshold {
            // 1/(1 - s·0) = 1: constant resistive contribution.
            for i in 0..np {
                for j in 0..np {
                    direct[(i, j)] += outer[(i, j)].re;
                }
            }
        } else {
            // µν/(1 - s·d) = (-µν/d) / (s - 1/d).
            let p_k = d_k.recip();
            let mut r_k = CMatrix::zeros(np, np);
            for i in 0..np {
                for j in 0..np {
                    r_k[(i, j)] = -(outer[(i, j)] / d_k);
                }
            }
            poles.push(p_k);
            residues.push(r_k);
        }
    }
    Ok(PoleResidueModel {
        poles,
        residues,
        direct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-pole RC: G = diag(g), C = diag(c), one port.
    fn one_pole(g: f64, c: f64) -> ReducedModel {
        ReducedModel {
            gr: Matrix::from_rows(&[&[g]]),
            cr: Matrix::from_rows(&[&[c]]),
            br: Matrix::from_rows(&[&[1.0]]),
        }
    }

    #[test]
    fn single_rc_pole_location_and_residue() {
        // Z(s) = 1/(g + s·c) = (1/c)/(s + g/c): pole at -g/c, residue 1/c.
        let (g, c) = (1e-3, 1e-12);
        let model = extract_pole_residue(&one_pole(g, c)).unwrap();
        assert_eq!(model.pole_count(), 1);
        let p = model.poles[0];
        assert!((p.re + g / c).abs() < 1e-3 * (g / c));
        assert!(p.im.abs() < 1e-6 * (g / c));
        let r = model.residues[0][(0, 0)];
        assert!((r.re - 1.0 / c).abs() < 1e-3 / c);
        // DC value: 1/g.
        assert!((model.dc()[(0, 0)] - 1.0 / g).abs() < 1e-6 / g);
    }

    #[test]
    fn frequency_response_matches_direct_solve() {
        // Two-state model with coupling.
        let rom = ReducedModel {
            gr: Matrix::from_rows(&[&[2e-3, -1e-3], &[-1e-3, 3e-3]]),
            cr: Matrix::from_rows(&[&[2e-12, 0.0], &[0.0, 1e-12]]),
            br: Matrix::from_rows(&[&[1.0], &[0.0]]),
        };
        let model = extract_pole_residue(&rom).unwrap();
        assert_eq!(model.pole_count(), 2);
        assert!(model.is_stable());
        // Compare Z(jω) against (Gr + jωCr)⁻¹ directly.
        for &omega in &[1e7, 1e9, 1e11] {
            let s = Complex::new(0.0, omega);
            let z_pr = model.eval(s)[(0, 0)];
            let mut a = CMatrix::from_real(&rom.gr);
            for i in 0..2 {
                for j in 0..2 {
                    a[(i, j)] += s * Complex::from_real(rom.cr[(i, j)]);
                }
            }
            let lu = CLuFactor::new(&a).unwrap();
            let x = lu.solve(&[Complex::ONE, Complex::ZERO]).unwrap();
            let z_direct = x[0];
            assert!(
                (z_pr - z_direct).abs() < 1e-6 * z_direct.abs(),
                "mismatch at ω={omega}: {z_pr} vs {z_direct}"
            );
        }
    }

    #[test]
    fn resistive_mode_goes_to_direct_term() {
        // One state with no capacitance: purely resistive.
        let rom = ReducedModel {
            gr: Matrix::from_rows(&[&[0.01, 0.0], &[0.0, 0.02]]),
            cr: Matrix::from_rows(&[&[1e-12, 0.0], &[0.0, 0.0]]),
            br: Matrix::from_rows(&[&[1.0], &[1.0]]),
        };
        let model = extract_pole_residue(&rom).unwrap();
        assert_eq!(model.pole_count(), 1, "only one dynamic mode");
        // The resistive mode contributes 1/0.02 = 50 Ω to the direct term.
        assert!((model.direct[(0, 0)] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn dc_matches_rom_dc() {
        let rom = ReducedModel {
            gr: Matrix::from_rows(&[&[5e-3, -2e-3], &[-2e-3, 4e-3]]),
            cr: Matrix::from_rows(&[&[3e-12, -1e-12], &[-1e-12, 2e-12]]),
            br: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
        };
        let model = extract_pole_residue(&rom).unwrap();
        let dc_pr = model.dc();
        let dc_rom = rom.dc_impedance().unwrap();
        assert!((&dc_pr - &dc_rom).max_abs() < 1e-6 * dc_rom.max_abs());
    }

    #[test]
    fn unstable_pole_detected() {
        // Negative conductance → right-half-plane pole.
        let model = extract_pole_residue(&one_pole(-1e-3, 1e-12)).unwrap();
        assert!(!model.is_stable());
        assert_eq!(model.unstable_poles().len(), 1);
        assert!(model.unstable_poles()[0].re > 0.0);
    }

    #[test]
    fn warm_pool_extraction_is_bitwise_stable() {
        // First call populates the thread-local arena (misses), the
        // second runs on recycled buffers (hits); results must not
        // differ in a single bit.
        let rom = ReducedModel {
            gr: Matrix::from_rows(&[&[2e-3, -1e-3], &[-1e-3, 3e-3]]),
            cr: Matrix::from_rows(&[&[2e-12, 0.0], &[0.0, 1e-12]]),
            br: Matrix::from_rows(&[&[1.0], &[0.0]]),
        };
        let cold = extract_pole_residue(&rom).unwrap();
        let warm = extract_pole_residue(&rom).unwrap();
        assert_eq!(cold.poles.len(), warm.poles.len());
        for (a, b) in cold.poles.iter().zip(&warm.poles) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        for (ra, rb) in cold.residues.iter().zip(&warm.residues) {
            for i in 0..rom.port_count() {
                for j in 0..rom.port_count() {
                    assert_eq!(ra[(i, j)].re.to_bits(), rb[(i, j)].re.to_bits());
                    assert_eq!(ra[(i, j)].im.to_bits(), rb[(i, j)].im.to_bits());
                }
            }
        }
        for (a, b) in cold.direct.as_slice().iter().zip(warm.direct.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn singular_gr_rejected() {
        let rom = ReducedModel {
            gr: Matrix::zeros(2, 2),
            cr: Matrix::identity(2),
            br: Matrix::from_rows(&[&[1.0], &[0.0]]),
        };
        assert!(extract_pole_residue(&rom).is_err());
    }
}
