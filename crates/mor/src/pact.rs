//! PACT: pole analysis via congruence transformations.
//!
//! For a reciprocal RC network with symmetric `G`, `C`, PACT partitions the
//! unknowns into ports `p` and internals `i`, applies the DC-decoupling
//! congruence
//!
//! ```text
//! V1 = [[I, 0], [L, I]],   L = -G_ii⁻¹ G_ip
//! ```
//!
//! so that `G' = V1ᵀ G V1 = diag(A, G_ii)` with `A` the exact DC port
//! admittance, then eigenanalyzes the internal pencil `C'_ii x = µ G_ii x`
//! and keeps the `k` slowest internal modes (largest time constants µ).
//! The final reduced model has the paper's eq. (5) block structure:
//!
//! ```text
//! Gr = [[A, 0], [0, I_k]]      Cr = [[B, R], [Rᵀ, diag(µ)]]
//! ```
//!
//! Truncation of fast modes perturbs the transient response only at time
//! scales below the kept time constants; the DC behaviour is exact.

use crate::prima::ReducedModel;
use linvar_numeric::sym_eigen::generalized_sym_eigen;
use linvar_numeric::{LuFactor, Matrix, NumericError};

/// Reduces a symmetric `(G, C)` system with ports listed in `port_indices`
/// to `n_ports + internal_modes` unknowns.
///
/// Also returns the projection matrix `X` (original-order × reduced-order)
/// so that callers can build variational versions of the same reduction.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] if `G`/`C` are not symmetric, a
/// port index is out of range or duplicated, and
/// [`NumericError::SingularMatrix`] if the internal admittance block is
/// singular (an internal subnetwork with no DC path).
pub fn pact_reduce(
    g: &Matrix,
    c: &Matrix,
    port_indices: &[usize],
    internal_modes: usize,
) -> Result<(ReducedModel, Matrix), NumericError> {
    let _span = linvar_metrics::timer(linvar_metrics::Phase::PactProject);
    let n = g.rows();
    let np = port_indices.len();
    let scale = g.max_abs().max(1e-300);
    if !g.is_symmetric(1e-9 * scale) || !c.is_symmetric(1e-9 * c.max_abs().max(1e-300)) {
        return Err(NumericError::InvalidInput(
            "pact requires symmetric G and C".into(),
        ));
    }
    if np == 0 || np > n {
        return Err(NumericError::InvalidInput("bad port count".into()));
    }
    let mut seen = vec![false; n];
    for &p in port_indices {
        if p >= n || seen[p] {
            return Err(NumericError::InvalidInput(format!(
                "port index {p} out of range or duplicated"
            )));
        }
        seen[p] = true;
    }
    // Permutation: ports first, then internals in ascending order.
    let mut perm: Vec<usize> = port_indices.to_vec();
    for i in 0..n {
        if !seen[i] {
            perm.push(i);
        }
    }
    let gp = permute(g, &perm);
    let cp = permute(c, &perm);
    let ni = n - np;

    let _g_pp = gp.submatrix(0, np, 0, np);
    let g_ip = gp.submatrix(np, n, 0, np);
    let g_ii = gp.submatrix(np, n, np, n);

    if ni == 0 {
        // Nothing to reduce: the model is the port block itself.
        let x = unpermute_basis(&Matrix::identity(n), &perm);
        let rom = project(g, c, &x, port_indices);
        return Ok((rom, x));
    }

    // L = -G_ii⁻¹ G_ip.
    let lu_ii = LuFactor::new(&g_ii)?;
    let l = {
        let sol = lu_ii.solve_mat(&g_ip)?;
        -&sol
    };
    // With V1 = [[I, 0], [L, I]] mapping x = V1·y (x_p = y_p,
    // x_i = L·y_p + y_i), the internal-internal block of V1ᵀCV1 is exactly
    // C_ii: the second block-column of V1 is [0; I], so the port mixing only
    // affects the port block and the off-diagonal coupling R. The internal
    // pencil is therefore (C_ii, G_ii).
    let c_ii = cp.submatrix(np, n, np, n);
    let eig = generalized_sym_eigen(&c_ii, &g_ii)?;
    let k = internal_modes.min(ni);
    // Keep the k largest time constants µ (eigenvalues sorted descending).
    let mut u = Matrix::zeros(ni, k);
    for j in 0..k {
        u.set_col(j, &eig.vectors.col(j));
    }
    // Full projection X (permuted space): [[I, 0], [L, U]].
    let q = np + k;
    let mut xp = Matrix::zeros(n, q);
    for j in 0..np {
        xp[(j, j)] = 1.0;
    }
    for i in 0..ni {
        for j in 0..np {
            xp[(np + i, j)] = l[(i, j)];
        }
        for j in 0..k {
            xp[(np + i, np + j)] = u[(i, j)];
        }
    }
    // Un-permute rows back to original ordering.
    let x = unpermute_basis(&xp, &perm);
    let rom = project(g, c, &x, port_indices);
    Ok((rom, x))
}

/// Congruence-projects `(G, C)` over basis `x` and builds the reduced
/// incidence for ports at the given original indices.
fn project(g: &Matrix, c: &Matrix, x: &Matrix, port_indices: &[usize]) -> ReducedModel {
    let n = g.rows();
    let mut b = Matrix::zeros(n, port_indices.len());
    for (j, &p) in port_indices.iter().enumerate() {
        b[(p, j)] = 1.0;
    }
    ReducedModel {
        gr: g.congruence(x),
        cr: c.congruence(x),
        br: x.transpose().mul_mat(&b),
    }
}

fn permute(m: &Matrix, perm: &[usize]) -> Matrix {
    let n = perm.len();
    Matrix::from_fn(n, n, |i, j| m[(perm[i], perm[j])])
}

/// Scatters the rows of a permuted-space basis back to original ordering.
fn unpermute_basis(xp: &Matrix, perm: &[usize]) -> Matrix {
    let mut x = Matrix::zeros(xp.rows(), xp.cols());
    for (permuted_row, &orig_row) in perm.iter().enumerate() {
        for j in 0..xp.cols() {
            x[(orig_row, j)] = xp[(permuted_row, j)];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_numeric::LuFactor;

    /// Grounded RC mesh with two ports.
    fn two_port_rc(n: usize) -> (Matrix, Matrix, Vec<usize>) {
        let gv = 0.1;
        let mut g = Matrix::zeros(n, n);
        let mut c = Matrix::zeros(n, n);
        for i in 1..n {
            g[(i, i)] += gv;
            g[(i - 1, i - 1)] += gv;
            g[(i, i - 1)] -= gv;
            g[(i - 1, i)] -= gv;
        }
        // Ground both ends (driver conductances).
        g[(0, 0)] += gv;
        g[(n - 1, n - 1)] += gv;
        for i in 0..n {
            c[(i, i)] = 1e-12 * (1.0 + 0.3 * (i as f64).sin());
        }
        (g, c, vec![0, n - 1])
    }

    #[test]
    fn block_structure_matches_paper_eq5() {
        let (g, c, ports) = two_port_rc(12);
        let (rom, _x) = pact_reduce(&g, &c, &ports, 4).unwrap();
        let np = 2;
        let q = rom.order();
        assert_eq!(q, np + 4);
        // Gr = diag(A, I): port-internal coupling of Gr must vanish and the
        // internal block must be the identity.
        for i in 0..np {
            for j in np..q {
                assert!(rom.gr[(i, j)].abs() < 1e-8 * rom.gr.max_abs());
            }
        }
        for i in np..q {
            for j in np..q {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (rom.gr[(i, j)] - expect).abs() < 1e-8,
                    "internal Gr not identity at ({i},{j})"
                );
            }
        }
        // Cr internal block diagonal (the µ time constants).
        for i in np..q {
            for j in np..q {
                if i != j {
                    assert!(
                        rom.cr[(i, j)].abs() < 1e-8 * rom.cr.max_abs(),
                        "Cr internal block must be diagonal"
                    );
                }
            }
        }
    }

    #[test]
    fn dc_port_admittance_is_exact() {
        let (g, c, ports) = two_port_rc(10);
        let (rom, _) = pact_reduce(&g, &c, &ports, 2).unwrap();
        // Full DC impedance.
        let mut b = Matrix::zeros(10, 2);
        b[(0, 0)] = 1.0;
        b[(9, 1)] = 1.0;
        let z_full = {
            let lu = LuFactor::new(&g).unwrap();
            b.transpose().mul_mat(&lu.solve_mat(&b).unwrap())
        };
        let z_red = rom.dc_impedance().unwrap();
        assert!(
            (&z_full - &z_red).max_abs() < 1e-9 * z_full.max_abs(),
            "PACT DC is exact by construction"
        );
    }

    #[test]
    fn internal_modes_capped_by_internal_count() {
        let (g, c, ports) = two_port_rc(6);
        // 4 internal nodes, ask for 10 modes.
        let (rom, _) = pact_reduce(&g, &c, &ports, 10).unwrap();
        assert_eq!(rom.order(), 6);
    }

    #[test]
    fn asymmetric_input_rejected() {
        let mut g = Matrix::identity(4);
        g[(0, 1)] = 0.5;
        let c = Matrix::identity(4);
        assert!(pact_reduce(&g, &c, &[0], 2).is_err());
    }

    #[test]
    fn bad_ports_rejected() {
        let (g, c, _) = two_port_rc(5);
        assert!(pact_reduce(&g, &c, &[], 2).is_err());
        assert!(pact_reduce(&g, &c, &[9], 2).is_err());
        assert!(pact_reduce(&g, &c, &[1, 1], 2).is_err());
    }

    #[test]
    fn projection_basis_reproduces_rom() {
        let (g, c, ports) = two_port_rc(8);
        let (rom, x) = pact_reduce(&g, &c, &ports, 3).unwrap();
        let gr2 = g.congruence(&x);
        let cr2 = c.congruence(&x);
        assert!((&gr2 - &rom.gr).max_abs() < 1e-12 * rom.gr.max_abs().max(1e-12));
        assert!((&cr2 - &rom.cr).max_abs() < 1e-12 * rom.cr.max_abs().max(1e-24));
    }
}
