//! Model order reduction: PRIMA, PACT, variational reduced-order models,
//! pole/residue extraction and the stability filter.
//!
//! This crate implements §2 and §3.3 of the paper:
//!
//! * [`prima`] — projection by block Arnoldi (moment matching at `s = 0`)
//!   with a congruence transformation; passive for the *nominal* RC case;
//! * [`pact`] — pole analysis via congruence transforms: eliminate the DC
//!   internal coupling, eigenanalyze the internal pencil, keep the dominant
//!   internal modes. Produces exactly the block structure of paper eq. (5):
//!   `Gr = diag(A, I)`, `Cr = [[B, R], [Rᵀ, diag(µ)]]`;
//! * [`variational`] — the first-order expansion
//!   `X(w) = X0 + Σ dXi·wi` (eq. 8) and reduced matrices truncated to first
//!   order (eq. 11). Because the truncation breaks the congruence, the
//!   evaluated models are **not passive and may be unstable** — that is the
//!   phenomenon Example 1 demonstrates and the framework works around;
//! * [`poleres`] — the impedance transformation of eqs. (13)–(20):
//!   eigendecompose `T = -Gr⁻¹Cr` once and share it across all `Z_ij`;
//! * [`stability`] — the two-step fix of eqs. (21)–(23): drop
//!   right-half-plane poles, rescale surviving residues by β to restore the
//!   DC value.

// Dense matrix kernels index rows/columns explicitly; iterator
// adaptors would obscure the classic algorithm shapes.
#![allow(clippy::needless_range_loop)]
// User-reachable library paths must surface typed errors, never panic.
// Tests are exempt: unwrap/expect on known-good fixtures is idiomatic there.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// The per-sample hot path (evaluate/extract/stabilize) must not clone
// what a borrow or a workspace buffer can serve.
#![deny(clippy::redundant_clone)]

pub mod degrade;
pub mod moments;
pub mod pact;
pub mod poleres;
pub mod prima;
pub mod stability;
pub mod variational;

pub use degrade::{extract_stabilized_degrading, MorDegradation, DEFAULT_BETA_TOL};
pub use moments::{elmore_delay, elmore_transfer, matched_moment_count, moments, reduced_moments};
pub use pact::pact_reduce;
pub use poleres::{extract_pole_residue, PoleResidueModel};
pub use prima::{prima_basis, prima_project, prima_reduce, ReducedModel};
pub use stability::{stabilize, StabilityReport};
pub use variational::{ReductionMethod, VariationalRom};
