//! PRIMA: passive reduced-order interconnect macromodeling algorithm.
//!
//! Block Arnoldi iteration on `(G⁻¹C, G⁻¹B)` followed by the congruence
//! transformation `Gr = XᵀGX`, `Cr = XᵀCX`, `Br = XᵀB`. For the *nominal*
//! symmetric RC case this preserves passivity; the variational first-order
//! version built on top of this basis does not (see [`crate::variational`]).

use linvar_numeric::{
    gram_schmidt_orthonormalize, AnySolver, CLuFactor, CMatrix, Complex, LinearSolver, LuFactor,
    Matrix, NumericError, SolverChoice, Workspace,
};

/// A reduced-order model `(Gr + s·Cr)·vr = Br·ip`, `vp = Brᵀ·vr`.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    /// Reduced admittance matrix (`q x q`).
    pub gr: Matrix,
    /// Reduced susceptance matrix (`q x q`).
    pub cr: Matrix,
    /// Reduced input/output incidence (`q x Np`).
    pub br: Matrix,
}

impl ReducedModel {
    /// Reduced order `q`.
    pub fn order(&self) -> usize {
        self.gr.rows()
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.br.cols()
    }

    /// Restriction of the model to its leading `q` reduced states.
    ///
    /// The PRIMA basis is nested (block-Krylov vectors in construction
    /// order), so the leading `q × q` sub-blocks of `Gr`/`Cr` and the
    /// leading `q` rows of `Br` form the model that a reduction of order
    /// `q` would have produced over the same leading basis vectors. This is
    /// the cheap step behind the order-degradation ladder
    /// ([`crate::degrade`]): no re-factorization of the full system needed.
    ///
    /// `q` is clamped to `1..=order()`.
    pub fn truncated(&self, q: usize) -> ReducedModel {
        let q = q.clamp(1, self.order().max(1));
        let np = self.port_count();
        ReducedModel {
            gr: Matrix::from_fn(q, q, |i, j| self.gr[(i, j)]),
            cr: Matrix::from_fn(q, q, |i, j| self.cr[(i, j)]),
            br: Matrix::from_fn(q, np, |i, j| self.br[(i, j)]),
        }
    }

    /// DC port impedance matrix `Z(0) = Brᵀ Gr⁻¹ Br`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] if `Gr` is singular (a load
    /// with a floating port).
    pub fn dc_impedance(&self) -> Result<Matrix, NumericError> {
        let lu = LuFactor::new(&self.gr)?;
        let x = lu.solve_mat(&self.br)?;
        Ok(self.br.transpose().mul_mat(&x))
    }

    /// Port transfer (impedance) matrix at a complex frequency:
    /// `Z(s) = Brᵀ (Gr + s·Cr)⁻¹ Br`.
    ///
    /// This is the frequency-domain face of the reduced model — the
    /// quantity the AC conformance suite compares point-by-point against
    /// a full-order complex-MNA solve at `s = jω`. The reduced system is
    /// small (order 4–40), so a dense complex factor is the right tool.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] if `Gr + s·Cr` is
    /// singular at `s` (an exactly-hit pole).
    pub fn transfer_at(&self, s: Complex) -> Result<CMatrix, NumericError> {
        let q = self.order();
        let np = self.port_count();
        let mut a = CMatrix::from_real(&self.gr);
        for i in 0..q {
            for j in 0..q {
                let cij = self.cr[(i, j)];
                if cij != 0.0 {
                    a[(i, j)] += s.scale(cij);
                }
            }
        }
        let lu = CLuFactor::new(&a)?;
        // X = (Gr + s·Cr)⁻¹ Br, column by column.
        let mut x = CMatrix::zeros(q, np);
        let mut col = vec![Complex::ZERO; q];
        for j in 0..np {
            for i in 0..q {
                col[i] = Complex::from_real(self.br[(i, j)]);
            }
            let solved = lu.solve(&col)?;
            for i in 0..q {
                x[(i, j)] = solved[i];
            }
        }
        let mut z = CMatrix::zeros(np, np);
        for i in 0..np {
            for j in 0..np {
                let mut acc = Complex::ZERO;
                for k in 0..q {
                    acc += x[(k, j)].scale(self.br[(k, i)]);
                }
                z[(i, j)] = acc;
            }
        }
        Ok(z)
    }

    /// Takes a zeroed `q`-state, `np`-port model shell from the
    /// workspace arena — the hot-path destination buffer for
    /// [`crate::VariationalRom::evaluate_into`]. Hand it back with
    /// [`ReducedModel::recycle`] once the sample is done.
    pub fn take_from(ws: &mut Workspace, q: usize, np: usize) -> ReducedModel {
        ReducedModel {
            gr: ws.take_matrix(q, q),
            cr: ws.take_matrix(q, q),
            br: ws.take_matrix(q, np),
        }
    }

    /// Returns the model's matrix storage to the workspace arena.
    pub fn recycle(self, ws: &mut Workspace) {
        ws.recycle_matrix(self.gr);
        ws.recycle_matrix(self.cr);
        ws.recycle_matrix(self.br);
    }
}

/// Computes the PRIMA projection basis of dimension at most `order`.
///
/// The basis spans the block Krylov space
/// `K(G⁻¹C, G⁻¹B) = span{G⁻¹B, (G⁻¹C)G⁻¹B, …}`, orthonormalized with
/// modified Gram-Schmidt; linearly dependent candidates are deflated, so
/// the returned basis may have fewer than `order` columns.
///
/// # Errors
///
/// Returns [`NumericError::SingularMatrix`] if `G` is singular, or
/// [`NumericError::InvalidInput`] for an empty port set or zero order.
pub fn prima_basis(
    g: &Matrix,
    c: &Matrix,
    b: &Matrix,
    order: usize,
) -> Result<Matrix, NumericError> {
    let _span = linvar_metrics::timer(linvar_metrics::Phase::PrimaProject);
    if b.cols() == 0 {
        return Err(NumericError::InvalidInput("no ports".into()));
    }
    if order == 0 {
        return Err(NumericError::InvalidInput(
            "reduction order must be >= 1".into(),
        ));
    }
    let n = g.rows();
    // The full-order G is the one matrix in the PRIMA iteration that can
    // be benchmark-interconnect sized; let the backend auto-select.
    let lu = AnySolver::factor_dense_matrix(g, SolverChoice::Auto)?;
    // R = G⁻¹ B: the zeroth block.
    let r = lu.solve_mat(b)?;
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let candidates: Vec<Vec<f64>> = (0..r.cols()).map(|j| r.col(j)).collect();
    gram_schmidt_orthonormalize(&mut basis, &candidates, 1e-10);
    // Block Arnoldi: multiply the *orthonormalized* vectors of the previous
    // block by A = G⁻¹C and orthonormalize against everything so far.
    let mut block_start = 0;
    while basis.len() < order.min(n) {
        let block_end = basis.len();
        if block_start == block_end {
            break; // Krylov space exhausted.
        }
        let mut next: Vec<Vec<f64>> = Vec::new();
        for v in &basis[block_start..block_end] {
            let cv = c.mul_vec(v);
            next.push(lu.solve(&cv)?);
        }
        block_start = block_end;
        gram_schmidt_orthonormalize(&mut basis, &next, 1e-10);
    }
    basis.truncate(order.min(n));
    let q = basis.len();
    let mut x = Matrix::zeros(n, q);
    for (j, v) in basis.iter().enumerate() {
        x.set_col(j, v);
    }
    Ok(x)
}

/// Reduces `(G, C, B)` with the congruence transformation over basis `x`.
pub fn prima_project(g: &Matrix, c: &Matrix, b: &Matrix, x: &Matrix) -> ReducedModel {
    ReducedModel {
        gr: g.congruence(x),
        cr: c.congruence(x),
        br: x.transpose().mul_mat(b),
    }
}

/// One-call PRIMA reduction to the given order.
///
/// # Errors
///
/// Same conditions as [`prima_basis`].
pub fn prima_reduce(
    g: &Matrix,
    c: &Matrix,
    b: &Matrix,
    order: usize,
) -> Result<ReducedModel, NumericError> {
    let x = prima_basis(g, c, b, order)?;
    Ok(prima_project(g, c, b, &x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_numeric::eigenvalues;

    /// RC ladder: n nodes, R between consecutive nodes, C to ground at
    /// every node, port at node 0. A driver output conductance of `1/r`
    /// grounds node 0 (the paper's `G_SC` folding), making `G`
    /// nonsingular — a floating RC line has a singular admittance matrix.
    fn ladder(n: usize, r: f64, c: f64) -> (Matrix, Matrix, Matrix) {
        let g_val = 1.0 / r;
        let mut g = Matrix::zeros(n, n);
        let mut cm = Matrix::zeros(n, n);
        for i in 0..n {
            cm[(i, i)] = c;
        }
        for i in 1..n {
            g[(i, i)] += g_val;
            g[(i - 1, i - 1)] += g_val;
            g[(i, i - 1)] -= g_val;
            g[(i - 1, i)] -= g_val;
        }
        g[(0, 0)] += g_val; // driver output conductance (G_SC)
        let mut b = Matrix::zeros(n, 1);
        b[(0, 0)] = 1.0;
        (g, cm, b)
    }

    #[test]
    fn basis_is_orthonormal() {
        let (g, c, b) = ladder(20, 10.0, 1e-12);
        let x = prima_basis(&g, &c, &b, 5).unwrap();
        assert_eq!(x.cols(), 5);
        let xtx = x.transpose().mul_mat(&x);
        assert!((&xtx - &Matrix::identity(5)).max_abs() < 1e-10);
    }

    #[test]
    fn reduction_preserves_dc_impedance() {
        // Moment matching at s=0 means Z(0) is exact.
        let (g, c, b) = ladder(15, 5.0, 2e-12);
        let rom = prima_reduce(&g, &c, &b, 4).unwrap();
        let z_full = {
            let lu = LuFactor::new(&g).unwrap();
            let x = lu.solve_mat(&b).unwrap();
            b.transpose().mul_mat(&x)[(0, 0)]
        };
        let z_red = rom.dc_impedance().unwrap()[(0, 0)];
        assert!(
            (z_full - z_red).abs() < 1e-6 * z_full.abs(),
            "dc {z_full} vs {z_red}"
        );
    }

    #[test]
    fn nominal_reduction_is_stable() {
        // Symmetric RC: reduced poles (eigenvalues of -Gr⁻¹Cr inverted)
        // must all lie in the left half plane.
        let (g, c, b) = ladder(25, 10.0, 1e-12);
        let rom = prima_reduce(&g, &c, &b, 6).unwrap();
        let ginv = LuFactor::new(&rom.gr).unwrap().inverse().unwrap();
        let t = -&ginv.mul_mat(&rom.cr);
        for ev in eigenvalues(&t).unwrap() {
            // T eigenvalues d_k; poles are 1/d_k. Stability ⇔ d_k < 0.
            assert!(ev.re < 0.0, "unstable mode {ev}");
        }
    }

    #[test]
    fn reduction_preserves_symmetry() {
        let (g, c, b) = ladder(12, 1.0, 1e-12);
        let rom = prima_reduce(&g, &c, &b, 4).unwrap();
        assert!(rom.gr.is_symmetric(1e-10 * rom.gr.max_abs()));
        assert!(rom.cr.is_symmetric(1e-10 * rom.cr.max_abs()));
    }

    #[test]
    fn deflation_caps_basis_size() {
        // A 3-node system cannot produce more than 3 basis vectors.
        let (g, c, b) = ladder(3, 1.0, 1e-12);
        let x = prima_basis(&g, &c, &b, 10).unwrap();
        assert!(x.cols() <= 3);
    }

    #[test]
    fn transfer_function_matches_at_low_frequency() {
        // Compare Z(jω) of full vs reduced model at a frequency well below
        // the dominant pole.
        let (g, c, b) = ladder(20, 10.0, 1e-12);
        let rom = prima_reduce(&g, &c, &b, 6).unwrap();
        let omega = 1e8; // rad/s, low for RC ≈ 10Ω·20pF
        let z_full = z_at(&g, &c, &b, omega);
        let z_red = z_at(&rom.gr, &rom.cr, &rom.br, omega);
        assert!(
            (z_full - z_red).abs() < 1e-3 * z_full.abs(),
            "{z_full} vs {z_red}"
        );
    }

    /// |Z(jω)| via real-equivalent 2x2 block solve.
    fn z_at(g: &Matrix, c: &Matrix, b: &Matrix, omega: f64) -> f64 {
        let n = g.rows();
        // [[G, -ωC], [ωC, G]] [vr; vi] = [b; 0]
        let mut big = Matrix::zeros(2 * n, 2 * n);
        big.set_block(0, 0, g);
        big.set_block(n, n, g);
        big.set_block(0, n, &(&(c * omega) * -1.0));
        big.set_block(n, 0, &(c * omega));
        let mut rhs = vec![0.0; 2 * n];
        for i in 0..n {
            rhs[i] = b[(i, 0)];
        }
        let x = LuFactor::new(&big).unwrap().solve(&rhs).unwrap();
        let (mut re, mut im) = (0.0, 0.0);
        for i in 0..n {
            re += b[(i, 0)] * x[i];
            im += b[(i, 0)] * x[n + i];
        }
        (re * re + im * im).sqrt()
    }

    #[test]
    fn zero_order_rejected() {
        let (g, c, b) = ladder(5, 1.0, 1e-12);
        assert!(prima_basis(&g, &c, &b, 0).is_err());
        let empty_b = Matrix::zeros(5, 0);
        assert!(prima_basis(&g, &c, &empty_b, 3).is_err());
    }
}
