//! Order-degradation ladder for variational reduced models.
//!
//! First-order variational macromodels are "inherently non-passive,
//! possibly unstable" (paper §3.3): at large parameter excursions the
//! stabilization pass may strip *every* pole, or the β DC-rescale of
//! eq. (23) may swing far from 1, meaning the served model no longer
//! represents the load. Rather than failing the sample outright, the
//! recovery ladder walks the reduced order down `q → q-1 → … → 1` —
//! cheap, because the PRIMA basis is nested so truncation
//! ([`ReducedModel::truncated`]) is a sub-block copy — and serves the
//! first order whose stabilized pole/residue model is healthy. The caller
//! learns what happened from the [`MorDegradation`] report and can fall
//! back further (exact reduction, unreduced MNA, baseline SPICE) when the
//! ladder is exhausted.

use crate::poleres::{extract_pole_residue, PoleResidueModel};
use crate::prima::ReducedModel;
use crate::stability::{stabilize, StabilityReport};
use linvar_numeric::NumericError;

/// Default tolerance on `|β - 1|` above which the DC rescale is considered
/// to have left the model's validity region.
pub const DEFAULT_BETA_TOL: f64 = 0.5;

/// What the order-degradation ladder did to serve a stabilized model.
#[derive(Debug, Clone, PartialEq)]
pub struct MorDegradation {
    /// Order of the model handed to the ladder.
    pub original_order: usize,
    /// Orders tried, in ladder order (highest first).
    pub attempted_orders: Vec<usize>,
    /// Order of the model that was finally served.
    pub served_order: usize,
    /// Number of right-half-plane poles removed from the served model.
    pub removed_poles: usize,
    /// `max |β - 1|` of the served model's DC rescale.
    pub max_beta_deviation: f64,
}

impl MorDegradation {
    /// `true` when a lower order than requested had to serve the sample.
    pub fn degraded(&self) -> bool {
        self.served_order < self.original_order
    }
}

/// Is a stabilized pole/residue model fit to serve a transient stage?
///
/// Healthy means: stabilization left at least one pole (unless the input
/// had none to begin with) and the DC rescale stayed within `beta_tol`.
fn is_healthy(
    original: &PoleResidueModel,
    stable: &PoleResidueModel,
    report: &StabilityReport,
    beta_tol: f64,
) -> bool {
    (stable.pole_count() > 0 || original.pole_count() == 0) && report.max_beta_deviation <= beta_tol
}

/// Extracts and stabilizes a pole/residue model, degrading the reduced
/// order until a healthy model is found.
///
/// Tries the full order first; on an unhealthy stabilization (zero stable
/// poles, β deviation beyond `beta_tol`) or an extraction failure
/// (singular `Gr`, eigensolver non-convergence), truncates to the next
/// lower order and retries. Returns the stabilized model, the stability
/// report of the served order, and the [`MorDegradation`] trail.
///
/// # Errors
///
/// Returns the last extraction error — or [`NumericError::InvalidInput`]
/// if every order extracted but none was healthy — once the ladder is
/// exhausted. Callers should treat this as "degrade past MOR": serve the
/// stage from an exact reduction, the unreduced MNA, or baseline SPICE.
pub fn extract_stabilized_degrading(
    rom: &ReducedModel,
    beta_tol: f64,
) -> Result<(PoleResidueModel, StabilityReport, MorDegradation), NumericError> {
    let q0 = rom.order();
    if q0 == 0 {
        return Err(NumericError::InvalidInput(
            "cannot stabilize an order-0 model".into(),
        ));
    }
    let mut attempted = Vec::new();
    let mut last_err: Option<NumericError> = None;
    for q in (1..=q0).rev() {
        attempted.push(q);
        // Serve the full order from a borrow — the common clean-sample
        // path extracts straight from `rom` without copying it; only a
        // ladder walk-down (rare) materializes a truncation.
        let truncated;
        let candidate = if q == q0 {
            rom
        } else {
            truncated = rom.truncated(q);
            &truncated
        };
        match extract_pole_residue(candidate) {
            Ok(pr) => {
                let (stable, report) = stabilize(&pr);
                if is_healthy(&pr, &stable, &report, beta_tol) {
                    if q < q0 {
                        linvar_metrics::incr(linvar_metrics::Counter::MorOrderDrops);
                    }
                    let degradation = MorDegradation {
                        original_order: q0,
                        attempted_orders: attempted,
                        served_order: q,
                        removed_poles: report.removed_poles.len(),
                        max_beta_deviation: report.max_beta_deviation,
                    };
                    return Ok((stable, report, degradation));
                }
            }
            Err(
                e @ (NumericError::SingularMatrix { .. } | NumericError::ConvergenceFailure { .. }),
            ) => {
                last_err = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        NumericError::InvalidInput(format!(
            "order-degradation ladder exhausted: no healthy stabilized model \
             at any order {q0}..=1 (beta tolerance {beta_tol})"
        ))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_numeric::{Matrix, NumericError};

    /// Grounded RC ladder reduced model (symmetric, passive — healthy).
    fn healthy_rom(n: usize) -> ReducedModel {
        let mut g = Matrix::zeros(n, n);
        let mut c = Matrix::zeros(n, n);
        for i in 0..n {
            g[(i, i)] = 2.0e-3;
            c[(i, i)] = 1e-12;
            if i + 1 < n {
                g[(i, i + 1)] = -1.0e-3;
                g[(i + 1, i)] = -1.0e-3;
            }
        }
        let mut b = Matrix::zeros(n, 1);
        b[(0, 0)] = 1.0;
        ReducedModel {
            gr: g,
            cr: c,
            br: b,
        }
    }

    #[test]
    fn healthy_model_served_at_full_order() {
        let rom = healthy_rom(5);
        let (stable, _, deg) = extract_stabilized_degrading(&rom, DEFAULT_BETA_TOL).unwrap();
        assert_eq!(deg.served_order, 5);
        assert!(!deg.degraded());
        assert_eq!(deg.attempted_orders, vec![5]);
        assert!(stable.is_stable());
    }

    #[test]
    fn all_rhp_model_exhausts_ladder_without_panicking() {
        // Gr negative definite ⇒ every pole in the right half plane at
        // every truncation order: the ladder must walk down and fail with
        // a typed error, never panic.
        let n = 4;
        let mut rom = healthy_rom(n);
        rom.gr.scale_mut(-1.0);
        let res = extract_stabilized_degrading(&rom, DEFAULT_BETA_TOL);
        match res {
            Err(NumericError::InvalidInput(msg)) => {
                assert!(msg.contains("ladder exhausted"), "msg: {msg}");
            }
            other => panic!("expected exhausted ladder, got {other:?}"),
        }
    }

    #[test]
    fn mixed_model_degrades_to_lower_order() {
        // Diagonal model with one RHP state: at full order the lone stable
        // pole still serves (one removed pole); shrink the tolerance so a
        // nonzero β deviation forces the ladder down to the stable leading
        // block.
        let mut rom = healthy_rom(2);
        rom.gr = Matrix::from_rows(&[&[1.0e-3, 0.0], &[0.0, -2.0e-3]]);
        rom.cr = Matrix::from_rows(&[&[1e-12, 0.0], &[0.0, 1e-12]]);
        rom.br = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let (stable, _, deg) = extract_stabilized_degrading(&rom, 1e-12).unwrap();
        assert!(deg.degraded(), "degradation: {deg:?}");
        assert_eq!(deg.served_order, 1);
        assert!(stable.is_stable());
    }

    #[test]
    fn truncation_is_clamped() {
        let rom = healthy_rom(3);
        assert_eq!(rom.truncated(0).order(), 1);
        assert_eq!(rom.truncated(99).order(), 3);
        assert_eq!(rom.truncated(2).port_count(), 1);
    }
}
