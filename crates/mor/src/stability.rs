//! The two-step stabilization of variational macromodels (paper eqs. 21–23).
//!
//! Macromodel instability manifests as poles with positive real parts,
//! caused by the broken congruence of first-order variational reduction,
//! near-singularities and rounding. Such poles generally carry very small
//! residues and no significant system information, so the fix is:
//!
//! 1. remove every right-half-plane pole;
//! 2. scale the surviving residues of each `Z_ij` entry by a common factor
//!    `β_ij = (Σ_all r_k/p_k) / (Σ_stable r_k/p_k)` so the DC (first
//!    moment) behaviour of the original model is preserved (eq. 23).

use crate::poleres::PoleResidueModel;
use linvar_numeric::{CMatrix, Complex};

/// What the stabilization pass did, for diagnostics and the Table-3
/// experiment.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Poles that were removed (positive real part).
    pub removed_poles: Vec<Complex>,
    /// β correction factors per port pair (row-major `Np x Np`).
    pub beta: Vec<f64>,
    /// Largest |β - 1| over all entries — how much DC correction was needed.
    pub max_beta_deviation: f64,
}

impl StabilityReport {
    /// `true` if the model was already stable (nothing removed).
    pub fn was_stable(&self) -> bool {
        self.removed_poles.is_empty()
    }
}

/// Stabilizes a pole/residue macromodel, returning the corrected model and
/// a report of what was removed.
///
/// If the model is already stable it is returned unchanged (all β = 1).
/// If *all* poles of an entry are unstable, that entry's β is left at 1 and
/// the entry keeps only its direct term — the caller should treat a large
/// [`StabilityReport::max_beta_deviation`] as a signal that the variational
/// model left its validity region.
pub fn stabilize(model: &PoleResidueModel) -> (PoleResidueModel, StabilityReport) {
    let _span = linvar_metrics::timer(linvar_metrics::Phase::Stabilize);
    let np = model.port_count();
    let mut removed_poles = Vec::new();
    let mut kept: Vec<usize> = Vec::new();
    for (k, p) in model.poles.iter().enumerate() {
        if model.pole_is_unstable(*p) {
            removed_poles.push(*p);
        } else {
            kept.push(k);
        }
    }
    linvar_metrics::count(
        linvar_metrics::Counter::MorUnstablePolesRemoved,
        removed_poles.len() as u64,
    );
    if removed_poles.is_empty() {
        return (
            model.clone(),
            StabilityReport {
                removed_poles,
                beta: vec![1.0; np * np],
                max_beta_deviation: 0.0,
            },
        );
    }
    // DC contribution of a pole set for entry (i, j): Σ -r/p (note eq. 23
    // uses Σ r/p; the ratio is identical either way).
    let dc_contribution = |ks: &[usize], i: usize, j: usize| -> Complex {
        let mut acc = Complex::ZERO;
        for &k in ks {
            acc += -(model.residues[k][(i, j)] / model.poles[k]);
        }
        acc
    };
    let all: Vec<usize> = (0..model.poles.len()).collect();
    let mut beta = vec![1.0; np * np];
    let mut max_dev = 0.0_f64;
    for i in 0..np {
        for j in 0..np {
            let dc_all = dc_contribution(&all, i, j);
            let dc_stable = dc_contribution(&kept, i, j);
            // β is real for physically meaningful models (conjugate pole
            // pairs); take the real ratio guarded against tiny denominators.
            if dc_stable.abs() > 1e-14 * dc_all.abs().max(1e-300) && dc_stable.abs() > 0.0 {
                let b = (dc_all / dc_stable).re;
                if b.is_finite() && b != 0.0 {
                    beta[i * np + j] = b;
                    max_dev = max_dev.max((b - 1.0).abs());
                }
            }
        }
    }
    let poles: Vec<Complex> = kept.iter().map(|&k| model.poles[k]).collect();
    let residues: Vec<CMatrix> = kept
        .iter()
        .map(|&k| {
            let mut r = model.residues[k].clone();
            for i in 0..np {
                for j in 0..np {
                    r[(i, j)] = r[(i, j)].scale(beta[i * np + j]);
                }
            }
            r
        })
        .collect();
    (
        PoleResidueModel {
            poles,
            residues,
            direct: model.direct.clone(),
        },
        StabilityReport {
            removed_poles,
            beta,
            max_beta_deviation: max_dev,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_numeric::Matrix;

    fn model(poles: &[Complex], res: &[f64]) -> PoleResidueModel {
        let residues = res
            .iter()
            .map(|&r| {
                let mut m = CMatrix::zeros(1, 1);
                m[(0, 0)] = Complex::from_real(r);
                m
            })
            .collect();
        PoleResidueModel {
            poles: poles.to_vec(),
            residues,
            direct: Matrix::zeros(1, 1),
        }
    }

    #[test]
    fn stable_model_is_untouched() {
        let m = model(
            &[Complex::from_real(-1e9), Complex::from_real(-5e9)],
            &[1e9, 2e9],
        );
        let (s, rep) = stabilize(&m);
        assert!(rep.was_stable());
        assert_eq!(s.pole_count(), 2);
        assert_eq!(rep.max_beta_deviation, 0.0);
    }

    #[test]
    fn unstable_pole_removed_and_dc_preserved() {
        // Stable pole carrying the response + small unstable artifact.
        let m = model(
            &[Complex::from_real(-1e9), Complex::from_real(3e12)],
            &[1e9, 1e7],
        );
        let dc_before = m.dc()[(0, 0)];
        let (s, rep) = stabilize(&m);
        assert_eq!(s.pole_count(), 1);
        assert_eq!(rep.removed_poles.len(), 1);
        assert!(rep.removed_poles[0].re > 0.0);
        let dc_after = s.dc()[(0, 0)];
        assert!(
            (dc_before - dc_after).abs() < 1e-9 * dc_before.abs(),
            "β correction must preserve DC: {dc_before} vs {dc_after}"
        );
        assert!(s.is_stable());
    }

    #[test]
    fn beta_matches_eq23() {
        let m = model(
            &[Complex::from_real(-2e9), Complex::from_real(1e12)],
            &[4e9, -1e8],
        );
        let (_, rep) = stabilize(&m);
        // β = (Σ_all r/p) / (Σ_stable r/p).
        let all = 4e9 / -2e9 + -1e8 / 1e12;
        let stable = 4e9 / -2e9;
        let expected = all / stable;
        assert!((rep.beta[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn conjugate_pair_handled() {
        // Complex conjugate stable pair + unstable real pole.
        let p = Complex::new(-1e9, 2e9);
        let r = Complex::new(5e8, -1e8);
        let mut r1 = CMatrix::zeros(1, 1);
        r1[(0, 0)] = r;
        let mut r2 = CMatrix::zeros(1, 1);
        r2[(0, 0)] = r.conj();
        let mut r3 = CMatrix::zeros(1, 1);
        r3[(0, 0)] = Complex::from_real(1e6);
        let m = PoleResidueModel {
            poles: vec![p, p.conj(), Complex::from_real(8e11)],
            residues: vec![r1, r2, r3],
            direct: Matrix::zeros(1, 1),
        };
        let dc_before = m.dc()[(0, 0)];
        let (s, _) = stabilize(&m);
        assert_eq!(s.pole_count(), 2);
        let dc_after = s.dc()[(0, 0)];
        assert!((dc_before - dc_after).abs() < 1e-9 * dc_before.abs().max(1e-12));
    }

    #[test]
    fn all_unstable_keeps_direct_only() {
        let m = model(&[Complex::from_real(1e9)], &[1e9]);
        let (s, rep) = stabilize(&m);
        assert_eq!(s.pole_count(), 0);
        assert_eq!(rep.removed_poles.len(), 1);
        // β left at 1 — nothing to scale.
        assert_eq!(rep.beta[0], 1.0);
    }
}
