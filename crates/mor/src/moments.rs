//! Moment computation for linear(ized) interconnect models.
//!
//! The transfer function `Z(s) = Brᵀ(G + sC)⁻¹B` expands around `s = 0`
//! as `Z(s) = m0 + m1·s + m2·s² + …` with
//! `m_k = (-1)^k · Brᵀ (G⁻¹C)^k G⁻¹ B`. The first moment of an impulse
//! response is the classical **Elmore delay** bound; projection-based
//! reduction (PRIMA) matches the leading `q` moments by construction,
//! which these utilities verify and which the test-suite pins as an
//! invariant.

use crate::prima::ReducedModel;
use linvar_numeric::{AnySolver, LinearSolver, Matrix, NumericError, SolverChoice};

/// Computes the first `count` moments of `Z(s) = Bᵀ(G + sC)⁻¹B`.
///
/// Returns `count` matrices of size `Np x Np`; entry `[k]` is `m_k`.
///
/// # Errors
///
/// Returns [`NumericError::SingularMatrix`] if `G` is singular (floating
/// network — fold the driver conductances first).
pub fn moments(
    g: &Matrix,
    c: &Matrix,
    b: &Matrix,
    count: usize,
) -> Result<Vec<Matrix>, NumericError> {
    // Auto backend: dense for the small reduced/paper systems, sparse CSC
    // once G reaches benchmark-interconnect sizes.
    let lu = AnySolver::factor_dense_matrix(g, SolverChoice::Auto)?;
    let mut out = Vec::with_capacity(count);
    // v_0 = G⁻¹B; v_{k+1} = -G⁻¹ C v_k; m_k = Bᵀ v_k.
    let mut v = lu.solve_mat(b)?;
    for _ in 0..count {
        out.push(b.transpose().mul_mat(&v));
        let cv = c.mul_mat(&v);
        v = lu.solve_mat(&cv)?;
        v.scale_mut(-1.0);
    }
    Ok(out)
}

/// Moments of a reduced model (same expansion on the reduced matrices).
///
/// # Errors
///
/// Returns [`NumericError::SingularMatrix`] if `Gr` is singular.
pub fn reduced_moments(rom: &ReducedModel, count: usize) -> Result<Vec<Matrix>, NumericError> {
    moments(&rom.gr, &rom.cr, &rom.br, count)
}

/// Elmore delay of the single-port *driving-point* response:
/// `T_D = -m1/m0` of `Z(s)` — for a grounded RC network this equals
/// `Σ_k R_common(port, k)·C_k` with the common-path resistances to the
/// port itself.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] if the model is not one-port or
/// `m0` vanishes, and propagates factorization failures.
pub fn elmore_delay(g: &Matrix, c: &Matrix, b: &Matrix) -> Result<f64, NumericError> {
    if b.cols() != 1 {
        return Err(NumericError::InvalidInput(
            "elmore delay is defined for a one-port response".into(),
        ));
    }
    let ms = moments(g, c, b, 2)?;
    let m0 = ms[0][(0, 0)];
    if m0.abs() < 1e-300 {
        return Err(NumericError::InvalidInput("zero dc response".into()));
    }
    Ok(-ms[1][(0, 0)] / m0)
}

/// Elmore delay of the *transfer* response to node `observe` for a
/// one-port current drive: `T_D = -m1/m0` of `Z_obs,in(s)` — the classic
/// `Σ_k R_common(observe, k)·C_k` sum used for far-end RC delay
/// estimation.
///
/// # Errors
///
/// Same conditions as [`elmore_delay`], plus
/// [`NumericError::DimensionMismatch`] for an out-of-range `observe`.
pub fn elmore_transfer(
    g: &Matrix,
    c: &Matrix,
    b: &Matrix,
    observe: usize,
) -> Result<f64, NumericError> {
    if b.cols() != 1 {
        return Err(NumericError::InvalidInput(
            "transfer elmore is defined for a one-port drive".into(),
        ));
    }
    if observe >= g.rows() {
        return Err(NumericError::DimensionMismatch {
            expected: format!("node index < {}", g.rows()),
            found: format!("{observe}"),
        });
    }
    let lu = AnySolver::factor_dense_matrix(g, SolverChoice::Auto)?;
    let v0 = lu.solve(&b.col(0))?;
    let m0 = v0[observe];
    let cv = c.mul_vec(&v0);
    let mut v1 = lu.solve(&cv)?;
    for x in v1.iter_mut() {
        *x = -*x;
    }
    let m1 = v1[observe];
    if m0.abs() < 1e-300 {
        return Err(NumericError::InvalidInput("zero dc transfer".into()));
    }
    Ok(-m1 / m0)
}

/// Number of leading moments of the full model that the reduced model
/// matches within relative tolerance `tol` (diagnostic used by the
/// order-sweep ablation).
pub fn matched_moment_count(
    g: &Matrix,
    c: &Matrix,
    b: &Matrix,
    rom: &ReducedModel,
    max_check: usize,
    tol: f64,
) -> Result<usize, NumericError> {
    let full = moments(g, c, b, max_check)?;
    let red = reduced_moments(rom, max_check)?;
    let mut matched = 0;
    for k in 0..max_check {
        let scale = full[k].max_abs().max(1e-300);
        if (&full[k] - &red[k]).max_abs() <= tol * scale {
            matched += 1;
        } else {
            break;
        }
    }
    Ok(matched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prima::prima_reduce;

    /// Driver conductance + RC ladder (same helper shape as prima tests).
    fn ladder(n: usize, r: f64, c: f64, g_drive: f64) -> (Matrix, Matrix, Matrix) {
        let gv = 1.0 / r;
        let mut g = Matrix::zeros(n, n);
        let mut cm = Matrix::zeros(n, n);
        for i in 1..n {
            g[(i, i)] += gv;
            g[(i - 1, i - 1)] += gv;
            g[(i, i - 1)] -= gv;
            g[(i - 1, i)] -= gv;
        }
        g[(0, 0)] += g_drive;
        for i in 0..n {
            cm[(i, i)] = c;
        }
        let mut b = Matrix::zeros(n, 1);
        b[(0, 0)] = 1.0;
        (g, cm, b)
    }

    #[test]
    fn m0_is_dc_impedance() {
        let (g, c, b) = ladder(10, 10.0, 1e-12, 1e-3);
        let ms = moments(&g, &c, &b, 1).unwrap();
        // DC: all ladder R's are bypassed (no DC current flows into caps),
        // so Z(0) = 1/g_drive = 1000 Ω.
        assert!((ms[0][(0, 0)] - 1000.0).abs() < 1e-6 * 1000.0);
    }

    #[test]
    fn elmore_of_driver_plus_lumped_cap() {
        // Single node: driver conductance g and cap C: T_D = C/g.
        let mut g = Matrix::zeros(1, 1);
        g[(0, 0)] = 1e-3;
        let c = Matrix::from_diagonal(&[2e-12]);
        let b = Matrix::from_rows(&[&[1.0]]);
        let td = elmore_delay(&g, &c, &b).unwrap();
        assert!((td - 2e-9).abs() < 1e-15);
    }

    #[test]
    fn driving_point_elmore_is_common_path_sum() {
        // Driving-point Elmore: Σ_k R_common(0, k)·C_k — every node shares
        // only the driver resistance with the port, so T_D = n·R_drv·C.
        let n = 6;
        let (g, c, b) = ladder(n, 10.0, 1e-12, 1e-2);
        let td = elmore_delay(&g, &c, &b).unwrap();
        let expect = n as f64 * 100.0 * 1e-12;
        assert!(
            (td - expect).abs() < 1e-9 * expect,
            "elmore {td} vs formula {expect}"
        );
    }

    #[test]
    fn transfer_elmore_matches_classic_sum() {
        // Far-end transfer Elmore of a driven RC ladder:
        // Σ_k R_upstream(k)·C_k with the driver resistance included.
        let n = 6;
        let (g, c, b) = ladder(n, 10.0, 1e-12, 1e-2);
        let td = elmore_transfer(&g, &c, &b, n - 1).unwrap();
        let mut expect = 0.0;
        for i in 0..n {
            let r_up = 100.0 + 10.0 * i as f64; // driver 100 Ω + i segments
            expect += r_up * 1e-12;
        }
        assert!(
            (td - expect).abs() < 1e-9 * expect,
            "transfer elmore {td} vs formula {expect}"
        );
        // Transfer Elmore at the far end exceeds the driving-point value.
        let dp = elmore_delay(&g, &c, &b).unwrap();
        assert!(td > dp);
        // Out-of-range observation node is rejected.
        assert!(elmore_transfer(&g, &c, &b, 99).is_err());
    }

    #[test]
    fn prima_matches_leading_moments() {
        let (g, c, b) = ladder(20, 5.0, 2e-13, 1e-3);
        for order in [2usize, 4, 6] {
            let rom = prima_reduce(&g, &c, &b, order).unwrap();
            let matched = matched_moment_count(&g, &c, &b, &rom, order + 2, 1e-6).unwrap();
            assert!(
                matched >= order,
                "order-{order} PRIMA must match ≥ {order} moments, got {matched}"
            );
        }
    }

    #[test]
    fn multiport_m0_is_symmetric() {
        let n = 8;
        let (mut g, c, _) = ladder(n, 10.0, 1e-12, 1e-3);
        g[(n - 1, n - 1)] += 1e-3; // second driver grounds the far end
        let mut b = Matrix::zeros(n, 2);
        b[(0, 0)] = 1.0;
        b[(n - 1, 1)] = 1.0;
        let ms = moments(&g, &c, &b, 3).unwrap();
        for m in &ms {
            assert!(
                m.is_symmetric(1e-9 * m.max_abs().max(1e-300)),
                "reciprocal network"
            );
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let g = Matrix::zeros(2, 2);
        let c = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0], &[0.0]]);
        assert!(moments(&g, &c, &b, 2).is_err(), "singular G");
        let g = Matrix::identity(2);
        let b2 = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(elmore_delay(&g, &c, &b2).is_err(), "multiport elmore");
    }
}
