//! Property tests for the zero-allocation evaluation path: the
//! workspace-backed [`VariationalRom::evaluate_into`] must be **bitwise**
//! identical to the allocating [`VariationalRom::evaluate`] — same values,
//! same signed zeros — for any parameter sample, any reduced order, and
//! any order-degradation truncation. Bitwise equality (not an epsilon) is
//! the property the Monte-Carlo determinism contract rests on: swapping
//! the allocator for the workspace arena must not change a single result
//! bit at any thread count.

use linvar_circuit::{Netlist, VariationalMna, VariationalValue};
use linvar_mor::{ReducedModel, ReductionMethod, VariationalRom};
use linvar_numeric::{with_workspace, Matrix};
use proptest::prelude::*;

/// Variational RC ladder with `np` independent parameters striped over the
/// segments (parameter `i` scales every `np`-th RC pair).
fn var_ladder(n: usize, np: usize) -> VariationalMna {
    let mut nl = Netlist::new();
    let params: Vec<_> = (0..np)
        .map(|i| nl.params.declare(&format!("p{i}")))
        .collect();
    let mut prev = nl.node("n0");
    nl.mark_port(prev).unwrap();
    nl.add_resistor("Rdrv", prev, Netlist::GROUND, 50.0)
        .unwrap();
    for i in 1..=n {
        let next = nl.node(&format!("n{i}"));
        let p = params[i % np];
        nl.add_variational_resistor(
            &format!("R{i}"),
            prev,
            next,
            VariationalValue::new(10.0).with_relative_sensitivity(p, 0.4),
        )
        .unwrap();
        nl.add_variational_capacitor(
            &format!("C{i}"),
            next,
            Netlist::GROUND,
            VariationalValue::new(1e-12).with_relative_sensitivity(p, 0.4),
        )
        .unwrap();
        prev = next;
    }
    nl.assemble_variational().unwrap()
}

/// Bitwise matrix comparison: every f64 must match in representation,
/// including the sign of zero.
fn assert_bits_eq(label: &str, a: &Matrix, b: &Matrix) {
    assert_eq!(a.rows(), b.rows(), "{label}: row count");
    assert_eq!(a.cols(), b.cols(), "{label}: col count");
    for (k, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {k} differs: {x:e} vs {y:e}"
        );
    }
}

fn assert_models_bits_eq(label: &str, a: &ReducedModel, b: &ReducedModel) {
    assert_bits_eq(&format!("{label}.gr"), &a.gr, &b.gr);
    assert_bits_eq(&format!("{label}.cr"), &a.cr, &b.cr);
    assert_bits_eq(&format!("{label}.br"), &a.br, &b.br);
}

/// Evaluates through the pooled path exactly as the stage hot path does:
/// take a sized model from the worker workspace, fill it in place, hand
/// the storage back.
fn evaluate_pooled(rom: &VariationalRom, w: &[f64]) -> ReducedModel {
    with_workspace(|ws| {
        let mut out = ReducedModel::take_from(ws, rom.order(), rom.port_count());
        rom.evaluate_into(w, &mut out).unwrap();
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn evaluate_into_is_bitwise_identical(
        w in proptest::collection::vec(-1.5f64..1.5, 3),
        order in 2usize..6,
    ) {
        let var = var_ladder(9, 3);
        let rom = VariationalRom::characterize(
            &var, ReductionMethod::Prima { order }, 0.01,
        ).unwrap();
        let alloc = rom.evaluate(&w).unwrap();
        let pooled = evaluate_pooled(&rom, &w);
        assert_models_bits_eq("evaluate", &alloc, &pooled);
        with_workspace(|ws| pooled.recycle(ws));
    }

    #[test]
    fn pooled_buffers_carry_no_state_between_samples(
        w1 in proptest::collection::vec(-1.0f64..1.0, 3),
        w2 in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        // Evaluate at w1, recycle, then evaluate at w2 through the same
        // pool: the second result must match a fresh allocation at w2 —
        // any residue from the first sample would break this.
        let var = var_ladder(9, 3);
        let rom = VariationalRom::characterize(
            &var, ReductionMethod::Prima { order: 4 }, 0.01,
        ).unwrap();
        let first = evaluate_pooled(&rom, &w1);
        with_workspace(|ws| first.recycle(ws));
        let second = evaluate_pooled(&rom, &w2);
        let fresh = rom.evaluate(&w2).unwrap();
        assert_models_bits_eq("reused-pool", &fresh, &second);
        with_workspace(|ws| second.recycle(ws));
    }

    #[test]
    fn truncation_ladder_matches_on_pooled_models(
        w in proptest::collection::vec(-1.0f64..1.0, 3),
        q in 1usize..5,
    ) {
        // The order-degradation ladder truncates whichever model served
        // the sample; a pooled model must truncate to the same sub-blocks.
        let var = var_ladder(9, 3);
        let rom = VariationalRom::characterize(
            &var, ReductionMethod::Prima { order: 5 }, 0.01,
        ).unwrap();
        let alloc = rom.evaluate(&w).unwrap().truncated(q);
        let pooled_full = evaluate_pooled(&rom, &w);
        let pooled = pooled_full.truncated(q);
        assert_models_bits_eq("truncated", &alloc, &pooled);
        with_workspace(|ws| pooled_full.recycle(ws));
    }
}

#[test]
fn short_and_long_sample_vectors_match_allocating_path() {
    // `evaluate` tolerates w shorter or longer than the parameter count;
    // the in-place form must mirror that behavior exactly.
    let var = var_ladder(6, 2);
    let rom =
        VariationalRom::characterize(&var, ReductionMethod::Prima { order: 3 }, 0.01).unwrap();
    for w in [&[][..], &[0.3][..], &[0.3, -0.2, 9.9, 1.0][..]] {
        let alloc = rom.evaluate(w).unwrap();
        let pooled = evaluate_pooled(&rom, w);
        assert_models_bits_eq("ragged-w", &alloc, &pooled);
        with_workspace(|ws| pooled.recycle(ws));
    }
}
