//! Transistor-level standard-cell library.
//!
//! The paper's ISCAS-89 experiments use "ten different logic cells"; this
//! module provides a ten-cell static CMOS library (INV, BUF, NAND2/3,
//! NOR2/3, AND2, OR2, AOI21, OAI21) built from the level-1 devices of a
//! [`Technology`]. Each cell is a self-contained [`Netlist`] with nodes
//! `vdd`, `out` and inputs `a`(, `b`, `c`), ready to be instantiated into a
//! stage with [`Netlist::instantiate`].
//!
//! Cells carry the *sensitization recipe* for timing: when a path enters
//! through input `a`, [`Cell::side_bias`] lists the rail each side input
//! must be tied to so that `a` controls the output.

use crate::library::Technology;
use linvar_circuit::{MosType, Netlist, NodeId};

/// A standard cell: its transistor-level netlist plus timing metadata.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cell name, e.g. `"nand2"`.
    pub name: String,
    /// Input pin names in order (`a` is the timing-path input).
    pub inputs: Vec<String>,
    /// Output pin name (always `"out"`).
    pub output: String,
    /// Transistor-level netlist with nodes `vdd`, `out`, inputs, internals.
    pub netlist: Netlist,
    /// `(side input, tie-high?)` pairs sensitizing the `a → out` arc.
    pub side_bias: Vec<(String, bool)>,
    /// Logical inversion of the `a → out` arc (true for inverting cells).
    pub inverting: bool,
}

impl Cell {
    /// Total explicit capacitance attached to the given pin (the input
    /// loading a driving stage sees, or the output parasitic).
    fn pin_cap(&self, pin: &str) -> f64 {
        let Some(node) = self.netlist.find_node(pin) else {
            return 0.0;
        };
        self.netlist
            .elements()
            .iter()
            .filter_map(|e| match e {
                linvar_circuit::Element::Capacitor { a, b, value, .. }
                    if *a == node || *b == node =>
                {
                    Some(value.nominal)
                }
                _ => None,
            })
            .sum()
    }

    /// Capacitive load this cell presents on its path input `a`.
    pub fn input_cap(&self) -> f64 {
        self.pin_cap("a")
    }

    /// Parasitic capacitance at the cell output.
    pub fn output_cap(&self) -> f64 {
        self.pin_cap("out")
    }
}

/// The ten-cell library for one technology.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    cells: Vec<Cell>,
    /// The technology the cells are built in.
    pub tech: Technology,
}

/// Helper that accumulates transistors and their parasitic capacitors into
/// a cell netlist.
struct CellBuilder<'t> {
    nl: Netlist,
    tech: &'t Technology,
    vdd: NodeId,
    index: usize,
}

impl<'t> CellBuilder<'t> {
    fn new(tech: &'t Technology) -> Self {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        CellBuilder {
            nl,
            tech,
            vdd,
            index: 0,
        }
    }

    fn node(&mut self, name: &str) -> NodeId {
        self.nl.node(name)
    }

    /// Adds an NMOS (drain, gate, source), bulk to ground, with width
    /// scaled by `stack` (series stacks are upsized to preserve drive).
    fn nmos(&mut self, d: NodeId, g: NodeId, s: NodeId, stack: usize) {
        self.mos(MosType::Nmos, d, g, s, Netlist::GROUND, stack);
    }

    /// Adds a PMOS (drain, gate, source), bulk to vdd.
    fn pmos(&mut self, d: NodeId, g: NodeId, s: NodeId, stack: usize) {
        let vdd = self.vdd;
        self.mos(MosType::Pmos, d, g, s, vdd, stack);
    }

    fn mos(&mut self, ty: MosType, d: NodeId, g: NodeId, s: NodeId, b: NodeId, stack: usize) {
        self.index += 1;
        let lib = &self.tech.library;
        let (model, w) = match ty {
            MosType::Nmos => (lib.nmos_name(), self.tech.wn),
            MosType::Pmos => (lib.pmos_name(), self.tech.wp),
        };
        let w = w * stack as f64;
        let l = lib.lmin;
        let name = format!("M{}", self.index);
        self.nl
            .add_mosfet(&name, d, g, s, b, ty, &model, w, l)
            .expect("cell builder produces unique names and valid nodes");
        // Parasitic capacitors: total gate oxide to ground, gate-drain
        // overlap (Miller), and drain junction.
        let params = lib.get(&model).expect("model registered").clone();
        let cg = params.cox * w * l;
        let cgd = params.cgo * w;
        let cj = params.junction_cap(w);
        self.nl
            .add_capacitor(&format!("Cg{}", self.index), g, Netlist::GROUND, cg)
            .expect("unique name");
        self.nl
            .add_capacitor(&format!("Cm{}", self.index), g, d, cgd)
            .expect("unique name");
        self.nl
            .add_capacitor(&format!("Cj{}", self.index), d, Netlist::GROUND, cj)
            .expect("unique name");
    }

    fn finish(
        self,
        name: &str,
        inputs: &[&str],
        side_bias: &[(&str, bool)],
        inverting: bool,
    ) -> Cell {
        Cell {
            name: name.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: "out".to_string(),
            netlist: self.nl,
            side_bias: side_bias.iter().map(|(n, h)| (n.to_string(), *h)).collect(),
            inverting,
        }
    }
}

fn inv(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new(tech);
    let (a, out, vdd) = (b.node("a"), b.node("out"), b.vdd);
    b.pmos(out, a, vdd, 1);
    b.nmos(out, a, Netlist::GROUND, 1);
    b.finish("inv", &["a"], &[], true)
}

fn buf(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new(tech);
    let (a, x, out, vdd) = (b.node("a"), b.node("x"), b.node("out"), b.vdd);
    b.pmos(x, a, vdd, 1);
    b.nmos(x, a, Netlist::GROUND, 1);
    b.pmos(out, x, vdd, 2);
    b.nmos(out, x, Netlist::GROUND, 2);
    b.finish("buf", &["a"], &[], false)
}

fn nand2(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new(tech);
    let (a, bb, out, n1, vdd) = (b.node("a"), b.node("b"), b.node("out"), b.node("n1"), b.vdd);
    b.pmos(out, a, vdd, 1);
    b.pmos(out, bb, vdd, 1);
    b.nmos(out, a, n1, 2);
    b.nmos(n1, bb, Netlist::GROUND, 2);
    b.finish("nand2", &["a", "b"], &[("b", true)], true)
}

fn nand3(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new(tech);
    let (a, bb, c, out, n1, n2, vdd) = (
        b.node("a"),
        b.node("b"),
        b.node("c"),
        b.node("out"),
        b.node("n1"),
        b.node("n2"),
        b.vdd,
    );
    b.pmos(out, a, vdd, 1);
    b.pmos(out, bb, vdd, 1);
    b.pmos(out, c, vdd, 1);
    b.nmos(out, a, n1, 3);
    b.nmos(n1, bb, n2, 3);
    b.nmos(n2, c, Netlist::GROUND, 3);
    b.finish("nand3", &["a", "b", "c"], &[("b", true), ("c", true)], true)
}

fn nor2(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new(tech);
    let (a, bb, out, p1, vdd) = (b.node("a"), b.node("b"), b.node("out"), b.node("p1"), b.vdd);
    b.pmos(p1, bb, vdd, 2);
    b.pmos(out, a, p1, 2);
    b.nmos(out, a, Netlist::GROUND, 1);
    b.nmos(out, bb, Netlist::GROUND, 1);
    b.finish("nor2", &["a", "b"], &[("b", false)], true)
}

fn nor3(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new(tech);
    let (a, bb, c, out, p1, p2, vdd) = (
        b.node("a"),
        b.node("b"),
        b.node("c"),
        b.node("out"),
        b.node("p1"),
        b.node("p2"),
        b.vdd,
    );
    b.pmos(p1, c, vdd, 3);
    b.pmos(p2, bb, p1, 3);
    b.pmos(out, a, p2, 3);
    b.nmos(out, a, Netlist::GROUND, 1);
    b.nmos(out, bb, Netlist::GROUND, 1);
    b.nmos(out, c, Netlist::GROUND, 1);
    b.finish(
        "nor3",
        &["a", "b", "c"],
        &[("b", false), ("c", false)],
        true,
    )
}

fn and2(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new(tech);
    let (a, bb, x, out, n1, vdd) = (
        b.node("a"),
        b.node("b"),
        b.node("x"),
        b.node("out"),
        b.node("n1"),
        b.vdd,
    );
    // NAND2 into x.
    b.pmos(x, a, vdd, 1);
    b.pmos(x, bb, vdd, 1);
    b.nmos(x, a, n1, 2);
    b.nmos(n1, bb, Netlist::GROUND, 2);
    // INV x -> out.
    b.pmos(out, x, vdd, 2);
    b.nmos(out, x, Netlist::GROUND, 2);
    b.finish("and2", &["a", "b"], &[("b", true)], false)
}

fn or2(tech: &Technology) -> Cell {
    let mut b = CellBuilder::new(tech);
    let (a, bb, x, out, p1, vdd) = (
        b.node("a"),
        b.node("b"),
        b.node("x"),
        b.node("out"),
        b.node("p1"),
        b.vdd,
    );
    // NOR2 into x.
    b.pmos(p1, bb, vdd, 2);
    b.pmos(x, a, p1, 2);
    b.nmos(x, a, Netlist::GROUND, 1);
    b.nmos(x, bb, Netlist::GROUND, 1);
    // INV x -> out.
    b.pmos(out, x, vdd, 2);
    b.nmos(out, x, Netlist::GROUND, 2);
    b.finish("or2", &["a", "b"], &[("b", false)], false)
}

fn aoi21(tech: &Technology) -> Cell {
    // out = !(a·b + c)
    let mut b = CellBuilder::new(tech);
    let (a, bb, c, out, p1, n1, vdd) = (
        b.node("a"),
        b.node("b"),
        b.node("c"),
        b.node("out"),
        b.node("p1"),
        b.node("n1"),
        b.vdd,
    );
    // Pull-up: pc in series with (pa || pb).
    b.pmos(p1, a, vdd, 2);
    b.pmos(p1, bb, vdd, 2);
    b.pmos(out, c, p1, 2);
    // Pull-down: (na series nb) || nc.
    b.nmos(out, a, n1, 2);
    b.nmos(n1, bb, Netlist::GROUND, 2);
    b.nmos(out, c, Netlist::GROUND, 1);
    b.finish(
        "aoi21",
        &["a", "b", "c"],
        &[("b", true), ("c", false)],
        true,
    )
}

fn oai21(tech: &Technology) -> Cell {
    // out = !((a + b)·c)
    let mut b = CellBuilder::new(tech);
    let (a, bb, c, out, p1, n1, vdd) = (
        b.node("a"),
        b.node("b"),
        b.node("c"),
        b.node("out"),
        b.node("p1"),
        b.node("n1"),
        b.vdd,
    );
    // Pull-up: (pa series pb) || pc.
    b.pmos(p1, a, vdd, 2);
    b.pmos(out, bb, p1, 2);
    b.pmos(out, c, vdd, 2);
    // Pull-down: nc in series with (na || nb).
    b.nmos(out, c, n1, 2);
    b.nmos(n1, a, Netlist::GROUND, 2);
    b.nmos(n1, bb, Netlist::GROUND, 2);
    b.finish(
        "oai21",
        &["a", "b", "c"],
        &[("b", false), ("c", true)],
        true,
    )
}

impl CellLibrary {
    /// Builds the standard ten-cell library for a technology.
    pub fn standard(tech: Technology) -> Self {
        let cells = vec![
            inv(&tech),
            buf(&tech),
            nand2(&tech),
            nand3(&tech),
            nor2(&tech),
            nor3(&tech),
            and2(&tech),
            or2(&tech),
            aoi21(&tech),
            oai21(&tech),
        ];
        CellLibrary { cells, tech }
    }

    /// Looks up a cell by name.
    pub fn get(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::tech_018;

    #[test]
    fn library_has_ten_cells() {
        let lib = CellLibrary::standard(tech_018());
        assert_eq!(lib.cells().len(), 10);
        for name in [
            "inv", "buf", "nand2", "nand3", "nor2", "nor3", "and2", "or2", "aoi21", "oai21",
        ] {
            assert!(lib.get(name).is_some(), "missing cell {name}");
        }
        assert!(lib.get("xor9").is_none());
    }

    #[test]
    fn every_cell_has_a_and_out_and_vdd() {
        let lib = CellLibrary::standard(tech_018());
        for cell in lib.cells() {
            assert!(cell.netlist.find_node("a").is_some(), "{}", cell.name);
            assert!(cell.netlist.find_node("out").is_some(), "{}", cell.name);
            assert!(cell.netlist.find_node("vdd").is_some(), "{}", cell.name);
            assert_eq!(cell.output, "out");
            assert_eq!(cell.inputs[0], "a");
        }
    }

    #[test]
    fn side_bias_covers_all_side_inputs() {
        let lib = CellLibrary::standard(tech_018());
        for cell in lib.cells() {
            let side_inputs: Vec<&String> = cell.inputs.iter().skip(1).collect();
            assert_eq!(
                side_inputs.len(),
                cell.side_bias.len(),
                "{} side bias incomplete",
                cell.name
            );
            for (name, _) in &cell.side_bias {
                assert!(
                    side_inputs.contains(&name),
                    "{}: stray bias {}",
                    cell.name,
                    name
                );
            }
        }
    }

    #[test]
    fn transistor_counts() {
        let lib = CellLibrary::standard(tech_018());
        let count = |name: &str| lib.get(name).unwrap().netlist.mosfets().len();
        assert_eq!(count("inv"), 2);
        assert_eq!(count("buf"), 4);
        assert_eq!(count("nand2"), 4);
        assert_eq!(count("nand3"), 6);
        assert_eq!(count("nor2"), 4);
        assert_eq!(count("nor3"), 6);
        assert_eq!(count("and2"), 6);
        assert_eq!(count("or2"), 6);
        assert_eq!(count("aoi21"), 6);
        assert_eq!(count("oai21"), 6);
    }

    #[test]
    fn cells_carry_parasitic_capacitors() {
        let lib = CellLibrary::standard(tech_018());
        let inv = lib.get("inv").unwrap();
        // 2 transistors × 3 caps each.
        assert_eq!(inv.netlist.elements().len(), 6);
    }

    #[test]
    fn inverting_flags() {
        let lib = CellLibrary::standard(tech_018());
        assert!(lib.get("inv").unwrap().inverting);
        assert!(lib.get("nand2").unwrap().inverting);
        assert!(!lib.get("buf").unwrap().inverting);
        assert!(!lib.get("and2").unwrap().inverting);
    }

    #[test]
    fn pin_caps_are_positive_and_scale_with_fanin() {
        let lib = CellLibrary::standard(tech_018());
        let inv = lib.get("inv").unwrap();
        let nand3 = lib.get("nand3").unwrap();
        assert!(inv.input_cap() > 0.0);
        assert!(inv.output_cap() > 0.0);
        // nand3 gates one nmos+pmos per input like inv, but bigger devices
        // (stack upsizing), so its input cap exceeds the inverter's.
        assert!(nand3.input_cap() > inv.input_cap());
        // Unknown pin contributes zero.
        assert_eq!(inv.pin_cap("zz"), 0.0);
    }

    #[test]
    fn instantiation_into_stage_netlist() {
        let lib = CellLibrary::standard(tech_018());
        let nand = lib.get("nand2").unwrap();
        let mut stage = Netlist::new();
        let _vdd = stage.node("vdd");
        stage.instantiate(&nand.netlist, "u1_", &["vdd"]).unwrap();
        assert!(stage.find_node("u1_a").is_some());
        assert!(stage.find_node("u1_out").is_some());
        assert_eq!(stage.mosfets().len(), 4);
    }
}
