//! SPICE level-1 (Shichman–Hodges) MOSFET model.
//!
//! The level-1 model is the analytical square-law device: cutoff, triode and
//! saturation regions with channel-length modulation and a body effect. The
//! paper's Example 3 explicitly uses this model in both SPICE and TETA, so
//! the two engines in this workspace share this implementation and their
//! accuracy comparison isolates the *interconnect* modeling difference.
//!
//! Dynamic behaviour uses constant effective capacitances (gate-oxide plus
//! overlap, and drain/source junction), the standard timing-analysis
//! simplification; both engines stamp the same capacitors, so comparisons
//! remain apples-to-apples (documented in `DESIGN.md`).

use linvar_circuit::MosType;

/// Level-1 model parameters.
///
/// All values are in SI units. Polarity-dependent signs follow the SPICE
/// convention: `vto` is positive for NMOS and negative for PMOS.
#[derive(Debug, Clone, PartialEq)]
pub struct MosParams {
    /// Polarity.
    pub mos_type: MosType,
    /// Zero-bias threshold voltage (V). Negative for PMOS.
    pub vto: f64,
    /// Transconductance parameter KP = µ·Cox (A/V²).
    pub kp: f64,
    /// Channel-length modulation λ (1/V).
    pub lambda: f64,
    /// Body-effect coefficient γ (√V).
    pub gamma: f64,
    /// Surface potential 2φF (V).
    pub phi: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox: f64,
    /// Gate-source/drain overlap capacitance per width (F/m).
    pub cgo: f64,
    /// Junction capacitance per width (F/m) for drain/source diffusions.
    pub cj_per_width: f64,
    /// Lateral diffusion LD (m); effective length is `L - 2·LD`.
    pub ld: f64,
}

/// Operating-point result of the level-1 evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Level1Op {
    /// Drain current (A), positive flowing into the drain for NMOS.
    pub ids: f64,
    /// Gate transconductance ∂I/∂V_gs (S).
    pub gm: f64,
    /// Output conductance ∂I/∂V_ds (S).
    pub gds: f64,
}

impl MosParams {
    /// Effective channel length after lateral diffusion and an optional
    /// channel-length reduction ΔL (the paper's `DL` variation source).
    ///
    /// The result is clamped to 1 % of the drawn length so that extreme
    /// variation samples cannot produce a non-physical non-positive length.
    pub fn effective_length(&self, drawn_length: f64, delta_l: f64) -> f64 {
        (drawn_length - 2.0 * self.ld - delta_l).max(0.01 * drawn_length)
    }

    /// Threshold voltage including body effect at source-bulk voltage `vsb`
    /// (NMOS convention: `vsb >= 0` increases the threshold).
    pub fn threshold(&self, vsb: f64) -> f64 {
        let vsb_eff = vsb.max(-self.phi * 0.5);
        let body = self.gamma * ((self.phi + vsb_eff).max(0.0).sqrt() - self.phi.sqrt());
        match self.mos_type {
            MosType::Nmos => self.vto + body,
            MosType::Pmos => self.vto - body,
        }
    }

    /// Evaluates drain current and small-signal conductances at the given
    /// terminal voltages (all referred to the source for NMOS; the method
    /// handles PMOS polarity and source/drain swap internally).
    ///
    /// `width`/`length` are drawn geometry in meters; `delta_l` and
    /// `delta_vt` apply the paper's `DL`/`VT` fluctuations.
    ///
    /// Currents follow the SPICE convention: `ids` flows drain→source for
    /// NMOS (positive when conducting) and source→drain for PMOS (`ids`
    /// is then negative in absolute terms when the PMOS conducts with
    /// `vds < 0`).
    #[allow(clippy::too_many_arguments)]
    pub fn eval(
        &self,
        vgs: f64,
        vds: f64,
        vbs: f64,
        width: f64,
        length: f64,
        delta_l: f64,
        delta_vt: f64,
    ) -> Level1Op {
        match self.mos_type {
            MosType::Nmos => {
                self.eval_nmos_oriented(vgs, vds, vbs, width, length, delta_l, delta_vt, 1.0)
            }
            MosType::Pmos => {
                // Evaluate the mirrored NMOS problem with negated voltages
                // and |vto|; flip the current sign back. `delta_vt` always
                // means "increase in threshold magnitude" for both
                // polarities, so it passes through unchanged.
                self.eval_nmos_oriented(-vgs, -vds, -vbs, width, length, delta_l, delta_vt, -1.0)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_nmos_oriented(
        &self,
        vgs: f64,
        vds: f64,
        vbs: f64,
        width: f64,
        length: f64,
        delta_l: f64,
        delta_vt: f64,
        sign: f64,
    ) -> Level1Op {
        // Source/drain symmetry: if vds < 0, swap roles.
        if vds < 0.0 {
            let op =
                self.eval_forward(vgs - vds, -vds, vbs - vds, width, length, delta_l, delta_vt);
            // After the swap, the terminal current at the original drain is
            // -id'(vgs - vds, -vds). Chain rule through the voltage swap:
            // dI/dvgs = -gm', dI/dvds = gm' + gds'.
            return Level1Op {
                ids: sign * -op.ids,
                gm: -op.gm,
                gds: op.gds + op.gm,
            };
        }
        let op = self.eval_forward(vgs, vds, vbs, width, length, delta_l, delta_vt);
        Level1Op {
            ids: sign * op.ids,
            gm: op.gm,
            gds: op.gds,
        }
    }

    /// Core square-law evaluation with `vds >= 0`, NMOS orientation.
    #[allow(clippy::too_many_arguments)]
    fn eval_forward(
        &self,
        vgs: f64,
        vds: f64,
        vbs: f64,
        width: f64,
        length: f64,
        delta_l: f64,
        delta_vt: f64,
    ) -> Level1Op {
        let leff = self.effective_length(length, delta_l);
        let beta = self.kp * width / leff;
        let vth = self.vto.abs() + delta_vt + {
            let vsb = -vbs;
            let vsb_eff = vsb.max(-self.phi * 0.5);
            self.gamma * ((self.phi + vsb_eff).max(0.0).sqrt() - self.phi.sqrt())
        };
        let vov = vgs - vth;
        if vov <= 0.0 {
            return Level1Op::default();
        }
        let clm = 1.0 + self.lambda * vds;
        if vds < vov {
            // Triode region.
            let ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
            let gm = beta * vds * clm;
            let gds = beta * ((vov - vds) * clm + self.lambda * (vov * vds - 0.5 * vds * vds));
            Level1Op { ids, gm, gds }
        } else {
            // Saturation region.
            let ids = 0.5 * beta * vov * vov * clm;
            let gm = beta * vov * clm;
            let gds = 0.5 * beta * vov * vov * self.lambda;
            Level1Op { ids, gm, gds }
        }
    }

    /// Effective gate-source (or gate-drain) capacitance for a device of the
    /// given drawn geometry: half the oxide capacitance plus overlap.
    pub fn gate_cap_half(&self, width: f64, length: f64) -> f64 {
        0.5 * self.cox * width * length + self.cgo * width
    }

    /// Drain/source junction capacitance for the given width.
    pub fn junction_cap(&self, width: f64) -> f64 {
        self.cj_per_width * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosParams {
        MosParams {
            mos_type: MosType::Nmos,
            vto: 0.43,
            kp: 170e-6,
            lambda: 0.06,
            gamma: 0.4,
            phi: 0.8,
            cox: 8.6e-3,
            cgo: 3e-10,
            cj_per_width: 8e-10,
            ld: 0.01e-6,
        }
    }

    fn pmos() -> MosParams {
        MosParams {
            mos_type: MosType::Pmos,
            vto: -0.40,
            kp: 60e-6,
            ..nmos()
        }
    }

    #[test]
    fn cutoff_region_is_zero() {
        let m = nmos();
        let op = m.eval(0.2, 1.0, 0.0, 1e-6, 0.18e-6, 0.0, 0.0);
        assert_eq!(op.ids, 0.0);
        assert_eq!(op.gm, 0.0);
        assert_eq!(op.gds, 0.0);
    }

    #[test]
    fn saturation_square_law() {
        let m = nmos();
        let (w, l) = (1e-6, 0.18e-6);
        let op = m.eval(1.8, 1.8, 0.0, w, l, 0.0, 0.0);
        let leff = m.effective_length(l, 0.0);
        let beta = m.kp * w / leff;
        let vov = 1.8 - 0.43;
        let expect = 0.5 * beta * vov * vov * (1.0 + m.lambda * 1.8);
        assert!((op.ids - expect).abs() < 1e-9 * expect.abs());
        assert!(op.ids > 0.0);
        assert!(op.gm > 0.0);
        assert!(op.gds > 0.0);
    }

    #[test]
    fn triode_region_current_and_continuity() {
        let m = nmos();
        let (w, l) = (1e-6, 0.18e-6);
        // Continuity at the triode/saturation boundary vds = vov.
        let vov = 1.8 - 0.43;
        let below = m.eval(1.8, vov - 1e-9, 0.0, w, l, 0.0, 0.0);
        let above = m.eval(1.8, vov + 1e-9, 0.0, w, l, 0.0, 0.0);
        assert!(
            (below.ids - above.ids).abs() < 1e-6 * above.ids,
            "current continuous at boundary"
        );
        assert!((below.gm - above.gm).abs() < 1e-3 * above.gm);
    }

    #[test]
    fn numeric_gm_gds_match_analytic() {
        let m = nmos();
        let (w, l) = (2e-6, 0.18e-6);
        for &(vgs, vds) in &[(1.0, 0.2), (1.5, 1.5), (1.8, 0.9)] {
            let op = m.eval(vgs, vds, 0.0, w, l, 0.0, 0.0);
            let h = 1e-7;
            let gm_fd = (m.eval(vgs + h, vds, 0.0, w, l, 0.0, 0.0).ids
                - m.eval(vgs - h, vds, 0.0, w, l, 0.0, 0.0).ids)
                / (2.0 * h);
            let gds_fd = (m.eval(vgs, vds + h, 0.0, w, l, 0.0, 0.0).ids
                - m.eval(vgs, vds - h, 0.0, w, l, 0.0, 0.0).ids)
                / (2.0 * h);
            assert!(
                (op.gm - gm_fd).abs() < 1e-4 * gm_fd.abs().max(1e-12),
                "gm mismatch at ({vgs},{vds}): {} vs {gm_fd}",
                op.gm
            );
            assert!(
                (op.gds - gds_fd).abs() < 1e-4 * gds_fd.abs().max(1e-12),
                "gds mismatch at ({vgs},{vds}): {} vs {gds_fd}",
                op.gds
            );
        }
    }

    #[test]
    fn reverse_vds_antisymmetric_current() {
        // Symmetric device with vbs = 0 and no body tie asymmetry:
        // swapping drain/source negates the current.
        let mut m = nmos();
        m.gamma = 0.0; // remove body effect for exact symmetry
        let (w, l) = (1e-6, 0.18e-6);
        let fwd = m.eval(1.8, 0.5, 0.0, w, l, 0.0, 0.0);
        // Same physical node voltages (Vg=1.8, V1=0.5, V2=0) viewed with
        // the terminal roles swapped: vgs=1.3, vds=-0.5, vbs=-0.5.
        let rev = m.eval(1.3, -0.5, -0.5, w, l, 0.0, 0.0);
        assert!(
            (fwd.ids + rev.ids).abs() < 1e-9 * fwd.ids.abs(),
            "fwd {} rev {}",
            fwd.ids,
            rev.ids
        );
    }

    #[test]
    fn pmos_conducts_with_negative_voltages() {
        let m = pmos();
        let (w, l) = (2e-6, 0.18e-6);
        // PMOS with source at VDD: vgs = -1.8, vds = -1.8 → conducting.
        let op = m.eval(-1.8, -1.8, 0.0, w, l, 0.0, 0.0);
        assert!(op.ids < 0.0, "pmos current flows source→drain: {}", op.ids);
        assert!(op.gm > 0.0);
        // Off when gate at source potential.
        let off = m.eval(0.0, -1.8, 0.0, w, l, 0.0, 0.0);
        assert_eq!(off.ids, 0.0);
    }

    #[test]
    fn delta_vt_shifts_threshold() {
        let m = nmos();
        let (w, l) = (1e-6, 0.18e-6);
        let base = m.eval(1.0, 1.8, 0.0, w, l, 0.0, 0.0).ids;
        let shifted = m.eval(1.0, 1.8, 0.0, w, l, 0.0, 0.1).ids;
        assert!(shifted < base, "raising VT lowers current");
        // A +0.1 VT shift is equivalent to a -0.1 vgs shift.
        let equiv = m.eval(0.9, 1.8, 0.0, w, l, 0.0, 0.0).ids;
        assert!((shifted - equiv).abs() < 1e-12);
    }

    #[test]
    fn delta_l_increases_current() {
        let m = nmos();
        let (w, l) = (1e-6, 0.18e-6);
        let base = m.eval(1.8, 1.8, 0.0, w, l, 0.0, 0.0).ids;
        let shorter = m.eval(1.8, 1.8, 0.0, w, l, 0.02e-6, 0.0).ids;
        assert!(shorter > base, "channel-length reduction raises current");
    }

    #[test]
    fn effective_length_clamps() {
        let m = nmos();
        let leff = m.effective_length(0.18e-6, 1.0);
        assert!(leff > 0.0);
        assert!((leff - 0.0018e-6).abs() < 1e-12);
    }

    #[test]
    fn body_effect_raises_nmos_threshold() {
        let m = nmos();
        assert!(m.threshold(0.5) > m.threshold(0.0));
        assert!((m.threshold(0.0) - m.vto).abs() < 1e-12);
    }

    #[test]
    fn capacitances_scale_with_geometry() {
        let m = nmos();
        assert!(m.gate_cap_half(2e-6, 0.18e-6) > m.gate_cap_half(1e-6, 0.18e-6));
        assert!(m.junction_cap(2e-6) > m.junction_cap(1e-6));
    }
}
