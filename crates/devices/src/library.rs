//! Technology parameter sets and the model library.
//!
//! The paper uses 0.18 µm devices for the statistical experiments and a
//! 0.6 µm inverter for Example 1. Foundry decks are proprietary, so these
//! are representative public-domain level-1 parameter values with the same
//! magnitudes (substitution #2 in `DESIGN.md`): the framework behaviour —
//! delay magnitudes, speedups and distribution shapes — depends only on the
//! model *class* and on reasonable drive strengths.

use crate::level1::MosParams;
use linvar_circuit::MosType;
use std::collections::HashMap;

/// A named collection of MOSFET models plus its supply voltage.
#[derive(Debug, Clone)]
pub struct ModelLibrary {
    models: HashMap<String, MosParams>,
    /// Nominal supply voltage for the technology (V).
    pub vdd: f64,
    /// Human-readable technology label, e.g. `"0.18um"`.
    pub label: String,
    /// Minimum drawn channel length (m).
    pub lmin: f64,
}

impl ModelLibrary {
    /// Creates an empty library.
    pub fn new(label: &str, vdd: f64, lmin: f64) -> Self {
        ModelLibrary {
            models: HashMap::new(),
            vdd,
            label: label.to_string(),
            lmin,
        }
    }

    /// Registers a model under `name`, replacing any previous definition.
    pub fn insert(&mut self, name: &str, params: MosParams) {
        self.models.insert(name.to_string(), params);
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&MosParams> {
        self.models.get(name)
    }

    /// Canonical NMOS model name for this library.
    pub fn nmos_name(&self) -> String {
        format!("nmos_{}", self.label)
    }

    /// Canonical PMOS model name for this library.
    pub fn pmos_name(&self) -> String {
        format!("pmos_{}", self.label)
    }
}

/// Technology descriptor bundling the model library and reference geometry
/// used by the cell builders.
#[derive(Debug, Clone)]
pub struct Technology {
    /// Device model library.
    pub library: ModelLibrary,
    /// Reference NMOS width for a 1x inverter (m).
    pub wn: f64,
    /// Reference PMOS width for a 1x inverter (m).
    pub wp: f64,
}

/// Representative 0.18 µm technology (VDD = 1.8 V), used by Examples 2–3.
pub fn tech_018() -> Technology {
    let mut lib = ModelLibrary::new("0.18um", 1.8, 0.18e-6);
    // tox ≈ 4 nm → Cox = 3.9 ε0 / tox ≈ 8.6e-3 F/m².
    let cox = 3.9 * 8.854e-12 / 4.0e-9;
    lib.insert(
        &lib.nmos_name(),
        MosParams {
            mos_type: MosType::Nmos,
            vto: 0.43,
            kp: 170e-6,
            lambda: 0.06,
            gamma: 0.40,
            phi: 0.84,
            cox,
            cgo: 3.0e-10,
            cj_per_width: 8.0e-10,
            ld: 0.01e-6,
        },
    );
    lib.insert(
        &lib.pmos_name(),
        MosParams {
            mos_type: MosType::Pmos,
            vto: -0.40,
            kp: 60e-6,
            lambda: 0.08,
            gamma: 0.45,
            phi: 0.84,
            cox,
            cgo: 3.0e-10,
            cj_per_width: 8.0e-10,
            ld: 0.01e-6,
        },
    );
    Technology {
        library: lib,
        wn: 0.6e-6,
        wp: 1.5e-6,
    }
}

/// Representative 0.6 µm technology (VDD = 5 V), used by Example 1's
/// "large inverter designed in 0.6 micron CMOS technology".
pub fn tech_06() -> Technology {
    let mut lib = ModelLibrary::new("0.6um", 5.0, 0.6e-6);
    // tox ≈ 10 nm.
    let cox = 3.9 * 8.854e-12 / 10.0e-9;
    lib.insert(
        &lib.nmos_name(),
        MosParams {
            mos_type: MosType::Nmos,
            vto: 0.70,
            kp: 120e-6,
            lambda: 0.03,
            gamma: 0.55,
            phi: 0.75,
            cox,
            cgo: 3.5e-10,
            cj_per_width: 1.0e-9,
            ld: 0.05e-6,
        },
    );
    lib.insert(
        &lib.pmos_name(),
        MosParams {
            mos_type: MosType::Pmos,
            vto: -0.85,
            kp: 40e-6,
            lambda: 0.05,
            gamma: 0.50,
            phi: 0.75,
            cox,
            cgo: 3.5e-10,
            cj_per_width: 1.0e-9,
            ld: 0.05e-6,
        },
    );
    Technology {
        library: lib,
        wn: 2.0e-6,
        wp: 5.0e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tech_018_has_both_polarities() {
        let t = tech_018();
        let n = t.library.get(&t.library.nmos_name()).unwrap();
        let p = t.library.get(&t.library.pmos_name()).unwrap();
        assert_eq!(n.mos_type, MosType::Nmos);
        assert_eq!(p.mos_type, MosType::Pmos);
        assert!(n.vto > 0.0 && p.vto < 0.0);
        assert_eq!(t.library.vdd, 1.8);
    }

    #[test]
    fn tech_06_is_a_5v_process() {
        let t = tech_06();
        assert_eq!(t.library.vdd, 5.0);
        assert!(t.library.lmin > tech_018().library.lmin);
    }

    #[test]
    fn inverter_is_roughly_balanced() {
        // The P/N width ratio should compensate the mobility ratio so that
        // pull-up and pull-down drive strengths are within ~2x.
        let t = tech_018();
        let n = t.library.get(&t.library.nmos_name()).unwrap();
        let p = t.library.get(&t.library.pmos_name()).unwrap();
        let idn = n
            .eval(
                t.library.vdd,
                t.library.vdd,
                0.0,
                t.wn,
                t.library.lmin,
                0.0,
                0.0,
            )
            .ids;
        let idp = p
            .eval(
                -t.library.vdd,
                -t.library.vdd,
                0.0,
                t.wp,
                t.library.lmin,
                0.0,
                0.0,
            )
            .ids;
        let ratio = (idn / -idp).abs();
        assert!(ratio > 0.5 && ratio < 2.0, "drive ratio {ratio}");
    }

    #[test]
    fn unknown_model_is_none() {
        let t = tech_018();
        assert!(t.library.get("bsim4").is_none());
    }

    #[test]
    fn insert_replaces() {
        let mut lib = ModelLibrary::new("x", 1.0, 1e-7);
        let t = tech_018();
        let m = t.library.get(&t.library.nmos_name()).unwrap().clone();
        lib.insert("m", m.clone());
        let mut m2 = m.clone();
        m2.vto = 0.9;
        lib.insert("m", m2);
        assert_eq!(lib.get("m").unwrap().vto, 0.9);
    }
}
