//! Nonlinear device models, their parameter fluctuations, and the
//! linear-centric *chord* models of the TETA engine.
//!
//! The paper evaluates everything with "the analytical level-1 model from
//! SPICE3f5" — the Shichman–Hodges square-law MOSFET. This crate provides:
//!
//! * [`MosParams`] / [`level1::Level1Op`] — the level-1 I/V equations with
//!   small-signal derivatives, for both polarities;
//! * [`ModelLibrary`] with representative 0.18 µm and 0.6 µm technology
//!   parameter sets ([`tech_018`], [`tech_06`]);
//! * [`DeviceVariation`] — the ΔL (channel-length reduction) and ΔV_T
//!   fluctuations of the paper's Example 3;
//! * [`chord`] — Successive-Chords fixed linearizations: the per-device
//!   chord conductance and Norton companion current that make nonlinear
//!   devices look like constant impedances to the linear solver;
//! * [`cells`] — a transistor-level standard-cell library (the paper's
//!   benchmark set uses "ten different logic cells").
//!
//! Device *instances* live in `linvar-circuit`; this crate resolves their
//! `model` names to parameters.

pub mod cells;
pub mod chord;
pub mod level1;
pub mod library;
pub mod variation;

pub use cells::{Cell, CellLibrary};
pub use chord::{chord_conductance, ChordModel};
pub use level1::{Level1Op, MosParams};
pub use library::{tech_018, tech_06, ModelLibrary, Technology};
pub use variation::DeviceVariation;
