//! Device parameter fluctuations (the paper's `DL` and `VT` sources).
//!
//! Example 3 of the paper analyzes path delay "under nonlinear device model
//! variations in threshold voltage and channel length reduction", with
//! normalized standard deviations `std(DL)` and `std(VT)` (Table 5 uses
//! 0.33 for both). [`DeviceVariation`] carries one sample of those two
//! sources in *normalized* units and converts them to the absolute ΔL / ΔV_T
//! shifts the level-1 evaluation consumes.

/// One sample of the global device variation sources.
///
/// Both fields are in normalized units: a value of 1.0 means "one unit of
/// the source", which maps to [`DeviceVariation::DL_SCALE`] meters of
/// channel-length reduction and [`DeviceVariation::VT_SCALE`] volts of
/// threshold increase. The paper's `std(DL) = 0.33` therefore corresponds
/// to a normal sample with σ = 0.33 on the normalized axis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceVariation {
    /// Normalized channel-length reduction sample.
    pub dl: f64,
    /// Normalized threshold-voltage sample.
    pub vt: f64,
}

impl DeviceVariation {
    /// Absolute channel-length reduction per normalized unit (m).
    ///
    /// One unit shortens the channel by 10 % of a 0.18 µm drawn length —
    /// the 3σ ≈ 10 % ΔL tolerance reported for 180 nm-era processes.
    pub const DL_SCALE: f64 = 0.018e-6;

    /// Absolute threshold shift per normalized unit (V).
    ///
    /// One unit raises |V_T| by 30 mV (3σ ≈ 30 mV for 180 nm-era processes;
    /// the normalized σ = 0.33 of the paper then gives σ(V_T) ≈ 10 mV).
    pub const VT_SCALE: f64 = 0.030;

    /// The nominal (no-variation) sample.
    pub fn nominal() -> Self {
        DeviceVariation::default()
    }

    /// Creates a sample from normalized source values.
    pub fn new(dl: f64, vt: f64) -> Self {
        DeviceVariation { dl, vt }
    }

    /// Absolute channel-length reduction in meters.
    pub fn delta_l(&self) -> f64 {
        self.dl * Self::DL_SCALE
    }

    /// Absolute threshold-magnitude shift in volts.
    pub fn delta_vt(&self) -> f64 {
        self.vt * Self::VT_SCALE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_zero() {
        let v = DeviceVariation::nominal();
        assert_eq!(v.delta_l(), 0.0);
        assert_eq!(v.delta_vt(), 0.0);
    }

    #[test]
    fn scales_apply() {
        let v = DeviceVariation::new(1.0, -2.0);
        assert!((v.delta_l() - 0.018e-6).abs() < 1e-18);
        assert!((v.delta_vt() + 0.060).abs() < 1e-12);
    }

    #[test]
    fn three_sigma_sample_is_physical() {
        // A 3σ sample with the paper's σ = 0.33 must keep Leff positive for
        // a minimum-length 0.18 µm device (checked against the level-1
        // clamping threshold of 1 % drawn length).
        let v = DeviceVariation::new(3.0 * 0.33, 0.0);
        assert!(v.delta_l() < 0.18e-6 * 0.9);
    }
}
