//! Successive-Chords fixed linearizations (the TETA "chord models").
//!
//! The Successive Chords (SC) method replaces Newton's per-iteration
//! tangent with a *fixed* chord conductance chosen once, before the
//! analysis. Each nonlinear device then looks like a constant conductance
//! `G_chord` in parallel with an iteration-dependent Norton current source
//! `i_eq(v) = I(v) − G_chord·v_ds`:
//!
//! * the constant conductances can be folded into the linear load *before*
//!   model order reduction (paper eq. 12), which is what lets the framework
//!   tolerate non-passive variational macromodels;
//! * the fixed-point iteration `v ← Z·i_eq(v)` converges for any monotone
//!   device I/V whose slope never exceeds `G_chord` (the chord is chosen as
//!   the maximum small-signal output conductance over the operating region,
//!   making the iteration a contraction);
//! * crucially for statistics, the chord is computed from *nominal* device
//!   parameters and **kept constant across all variation samples** — the
//!   paper's key observation that only a single macromodel
//!   characterization is needed for an entire Monte-Carlo run.

use crate::level1::MosParams;

/// Fixed linearization of one device: the chord conductance between drain
/// and source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChordModel {
    /// Chord (output) conductance in siemens.
    pub g_chord: f64,
}

impl ChordModel {
    /// Norton companion current for the SC iteration: given the device
    /// current `ids` evaluated at the previous iterate and the previous
    /// drain-source voltage, returns the equivalent injected current
    /// `i_eq = ids − g_chord · vds`.
    pub fn norton_current(&self, ids: f64, vds: f64) -> f64 {
        ids - self.g_chord * vds
    }
}

/// Selects the chord conductance for a device of the given geometry in a
/// rail-to-rail digital environment with supply `vdd`.
///
/// The choice is the maximum output conductance over the switching
/// trajectory, which for the level-1 model is the triode-region conductance
/// at `vds → 0` with the gate fully driven:
/// `G = β·(VDD − |V_T0|)`. Because the device I/V slope never exceeds this
/// value, the SC fixed-point iteration is a contraction (see module docs).
///
/// The chord is evaluated at *nominal* parameters — per the paper, it stays
/// fixed under device and interconnect variations.
pub fn chord_conductance(params: &MosParams, width: f64, length: f64, vdd: f64) -> f64 {
    let leff = params.effective_length(length, 0.0);
    let beta = params.kp * width / leff;
    let vov = (vdd - params.vto.abs()).max(0.1 * vdd);
    // Include the worst-case channel-length-modulation boost so the chord
    // bounds the slope across the whole vds range.
    beta * vov * (1.0 + params.lambda * vdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::tech_018;

    #[test]
    fn chord_bounds_device_slope() {
        // The chord conductance must dominate gds at every point of the
        // output characteristic with the gate fully driven — this is the
        // contraction condition of the SC iteration.
        let t = tech_018();
        let params = t.library.get(&t.library.nmos_name()).unwrap();
        let (w, l) = (1e-6, 0.18e-6);
        let g = chord_conductance(params, w, l, t.library.vdd);
        for i in 0..=100 {
            let vds = t.library.vdd * i as f64 / 100.0;
            let op = params.eval(t.library.vdd, vds, 0.0, w, l, 0.0, 0.0);
            assert!(
                op.gds <= g * (1.0 + 1e-9),
                "gds {} exceeds chord {} at vds {}",
                op.gds,
                g,
                vds
            );
        }
    }

    #[test]
    fn chord_scales_with_width() {
        let t = tech_018();
        let params = t.library.get(&t.library.nmos_name()).unwrap();
        let g1 = chord_conductance(params, 1e-6, 0.18e-6, 1.8);
        let g2 = chord_conductance(params, 2e-6, 0.18e-6, 1.8);
        assert!((g2 / g1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn norton_current_definition() {
        let chord = ChordModel { g_chord: 1e-3 };
        let i = chord.norton_current(5e-4, 1.0);
        assert!((i - (5e-4 - 1e-3)).abs() < 1e-18);
    }

    #[test]
    fn sc_iteration_converges_on_inverter_pulldown() {
        // Scalar demonstration of the SC contraction: an NMOS discharging
        // a resistive load R from VDD. Exact solution from Newton; SC must
        // converge to it with the fixed chord.
        let t = tech_018();
        let params = t.library.get(&t.library.nmos_name()).unwrap();
        let (w, l) = (1e-6, 0.18e-6);
        let vdd = t.library.vdd;
        let r = 10e3;
        let g_load = 1.0 / r;
        let g_chord = chord_conductance(params, w, l, vdd);
        // Solve: (v - vdd)/r + ids(v) = 0 via SC iteration:
        // v = (vdd/r - i_eq(v_prev)) / (g_load + g_chord)
        let mut v = vdd;
        let mut iterations = 0;
        loop {
            let ids = params.eval(vdd, v, 0.0, w, l, 0.0, 0.0).ids;
            let i_eq = ids - g_chord * v;
            let v_new = (vdd / r - i_eq) / (g_load + g_chord);
            iterations += 1;
            if (v_new - v).abs() < 1e-12 || iterations > 500 {
                v = v_new;
                break;
            }
            v = v_new;
        }
        assert!(iterations < 400, "SC should converge, took {iterations}");
        // Verify KCL at the solution.
        let ids = params.eval(vdd, v, 0.0, w, l, 0.0, 0.0).ids;
        let kcl = (v - vdd) / r + ids;
        assert!(kcl.abs() < 1e-9, "KCL residual {kcl}");
        assert!(v > 0.0 && v < vdd);
    }
}
