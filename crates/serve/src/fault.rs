//! Fault injection for the campaign service, mirroring the shard
//! supervisor's `ShardFault` matrix.
//!
//! Set `LINVAR_SERVE_FAULT` to one of:
//!
//! | value                  | effect (fires once)                                       |
//! |------------------------|-----------------------------------------------------------|
//! | `crash-before-journal` | `abort()` in the submit handler *before* the job record is journaled — the crash window where the server never acknowledged the job |
//! | `crash-after-journal`  | `abort()` right *after* the queued record reaches disk, before the client gets a response — the job exists, nobody was told |
//! | `crash-mid-checkpoint` | worker runs half the campaign, writes a **torn** `*.tmp` checkpoint sibling, then `abort()` — the window inside `save_checkpoint` |
//! | `worker-panic`         | the worker thread panics while running the job (contained; the job is re-queued) |
//! | `stall:<millis>`       | the worker stalls that long before starting the job (the server must stay responsive) |
//!
//! Crashes use [`std::process::abort`] — no unwinding, no destructors —
//! the closest in-process stand-in for `kill -9`. Every fault fires at
//! most once per process so the restarted server (same env) makes
//! progress; injections are counted under `serve.faults_injected`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// An injectable fault. See the module table for the crash windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// Die before the submission is journaled.
    CrashBeforeJournal,
    /// Die after the queued record is durable, before the response.
    CrashAfterJournal,
    /// Run half the job, leave a torn checkpoint staging file, die.
    CrashMidCheckpoint,
    /// Panic the worker thread mid-job (must be contained).
    WorkerPanic,
    /// Stall the worker before the job starts.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

impl ServeFault {
    /// Parses the `LINVAR_SERVE_FAULT` spelling.
    pub fn parse(s: &str) -> Option<ServeFault> {
        let s = s.trim();
        match s {
            "crash-before-journal" => Some(ServeFault::CrashBeforeJournal),
            "crash-after-journal" => Some(ServeFault::CrashAfterJournal),
            "crash-mid-checkpoint" => Some(ServeFault::CrashMidCheckpoint),
            "worker-panic" => Some(ServeFault::WorkerPanic),
            _ => {
                let millis = s.strip_prefix("stall:")?.trim().parse::<u64>().ok()?;
                Some(ServeFault::Stall { millis })
            }
        }
    }

    /// Reads `LINVAR_SERVE_FAULT` through the hardened knob parser;
    /// unknown spellings warn and inject nothing (a typo'd fault knob
    /// must not silently change what a test believes it exercised).
    pub fn from_env() -> Option<ServeFault> {
        let raw = linvar_stats::env_knob_str("LINVAR_SERVE_FAULT", "no fault").valid()?;
        let parsed = ServeFault::parse(&raw);
        if parsed.is_none() {
            eprintln!(
                "warning: ignoring invalid LINVAR_SERVE_FAULT={raw:?} \
                 (expected crash-before-journal | crash-after-journal | \
                 crash-mid-checkpoint | worker-panic | stall:<millis>); using no fault"
            );
        }
        parsed
    }

    /// The stall duration, when this is a stall.
    pub fn stall_duration(self) -> Option<Duration> {
        match self {
            ServeFault::Stall { millis } => Some(Duration::from_millis(millis)),
            _ => None,
        }
    }
}

/// Fire-once latch: the first [`FaultArm::fire`] call returns `true`,
/// later calls `false`. The latch is per-process state and nothing
/// about faults is journaled, so a restarted process re-arms — the
/// recovery tests clear `LINVAR_SERVE_FAULT` before the second run so
/// the resumed campaign completes.
#[derive(Debug, Default)]
pub struct FaultArm {
    fired: AtomicBool,
}

impl FaultArm {
    /// A fresh (armed) latch.
    pub fn new() -> FaultArm {
        FaultArm::default()
    }

    /// True exactly once.
    pub fn fire(&self) -> bool {
        let first = !self.fired.swap(true, Ordering::SeqCst);
        if first {
            linvar_metrics::incr(linvar_metrics::Counter::ServeFaultsInjected);
        }
        first
    }
}

/// `kill -9` stand-in: immediate abnormal termination, no unwinding,
/// no buffered writes, no destructors.
pub fn crash_now(window: &str) -> ! {
    eprintln!("serve-fault: aborting in window {window:?}");
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spellings_parse_and_garbage_does_not() {
        assert_eq!(
            ServeFault::parse("crash-before-journal"),
            Some(ServeFault::CrashBeforeJournal)
        );
        assert_eq!(
            ServeFault::parse(" crash-after-journal "),
            Some(ServeFault::CrashAfterJournal)
        );
        assert_eq!(
            ServeFault::parse("crash-mid-checkpoint"),
            Some(ServeFault::CrashMidCheckpoint)
        );
        assert_eq!(
            ServeFault::parse("worker-panic"),
            Some(ServeFault::WorkerPanic)
        );
        assert_eq!(
            ServeFault::parse("stall:250"),
            Some(ServeFault::Stall { millis: 250 })
        );
        for bad in ["", "crash", "stall:", "stall:abc", "stall:-1", "panic"] {
            assert_eq!(ServeFault::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn fault_arm_fires_once() {
        let arm = FaultArm::new();
        assert!(arm.fire());
        assert!(!arm.fire());
        assert!(!arm.fire());
    }

    #[test]
    fn stall_duration_only_for_stalls() {
        assert_eq!(
            ServeFault::Stall { millis: 30 }.stall_duration(),
            Some(Duration::from_millis(30))
        );
        assert_eq!(ServeFault::WorkerPanic.stall_duration(), None);
    }
}
