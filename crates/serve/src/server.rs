//! The campaign server: listener, handler pool, tenant-fair scheduler,
//! bounded worker pool, and graceful shutdown.
//!
//! Thread structure (all std):
//!
//! * **acceptor** — non-blocking `TcpListener` polled every few
//!   milliseconds (std has no accept timeout) so it can observe the
//!   stop flag; accepted sockets get their read/write timeouts set
//!   *before* they reach a handler, then go down an mpsc channel.
//! * **handlers** (small fixed pool) — parse one request per
//!   connection, route it, write the response. A slow client costs one
//!   handler slot for at most the socket timeout; `/healthz` keeps
//!   answering on the remaining slots.
//! * **workers** (`LINVAR_SERVE_WORKERS`) — claim jobs round-robin
//!   across tenants and run them through the durable campaign driver,
//!   journaling every lifecycle transition.
//!
//! Shutdown (SIGTERM/ctrl-c via [`install_signal_handlers`], or
//! `POST /shutdown`, or [`ServerHandle::shutdown`]): admissions start
//! answering 503, every running campaign's cancel flag is raised so
//! in-flight *samples* finish and a final snapshot is written, workers
//! drain and exit, then the acceptor and handlers wind down.
//! Interrupted jobs stay journaled as `running`, which is precisely
//! what the next process's recovery scan re-queues — kill -9 and
//! graceful shutdown converge on the same restart path.

use crate::bits_hex;
use crate::config::ServeConfig;
use crate::fault::{crash_now, FaultArm, ServeFault};
use crate::http::{read_request, HttpError, Request, Response};
use crate::json::{parse_json, JsonGet};
use crate::store::{JobRecord, JobState, JobStore, RecoveryReport};
use linvar_core::{CampaignConfig, CampaignVerdict, ModelRegistry};
use linvar_metrics::{Counter, Json, Phase};
use linvar_stats::RecoveryPolicy;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Handler-pool size. Small and fixed: handlers only parse/route/write,
/// the heavy lifting lives in the worker pool.
const N_HANDLERS: usize = 4;

/// `Retry-After` seconds advertised on shed (429) and draining (503)
/// responses.
const RETRY_AFTER_SECS: u64 = 1;

/// Samples between periodic snapshots while a job runs.
const JOB_CHECKPOINT_EVERY: usize = 8;

/// Server-level error (startup and teardown).
#[derive(Debug)]
pub enum ServeError {
    /// Listener could not be created/bound.
    Bind(String),
    /// The job store failed (journal I/O).
    Store(linvar_stats::CheckpointError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind: {e}"),
            ServeError::Store(e) => write!(f, "job store: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

struct Sched {
    /// Per-tenant FIFO of queued job ids.
    queues: BTreeMap<String, VecDeque<String>>,
    /// Tenant rotation order (first-seen order) and cursor.
    tenant_rr: Vec<String>,
    rr_next: usize,
    /// Total queued across tenants (the admission bound).
    queued: usize,
    /// Jobs currently being run by a worker.
    running: usize,
    /// In-memory view of every job (authoritative journal on disk).
    jobs: BTreeMap<String, JobRecord>,
    /// Cancel flag per running job.
    cancel_flags: BTreeMap<String, Arc<AtomicBool>>,
    /// Running jobs whose cancellation was requested.
    cancel_requested: BTreeSet<String>,
}

struct Shared {
    config: ServeConfig,
    registry: ModelRegistry,
    store: JobStore,
    sched: Mutex<Sched>,
    work_cv: Condvar,
    /// Admissions closed; workers drain.
    shutdown: AtomicBool,
    /// Acceptor may exit (set after workers drained).
    accept_stop: AtomicBool,
    fault: Option<ServeFault>,
    fault_arm: FaultArm,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let sched = self.sched.lock().unwrap_or_else(|e| e.into_inner());
        // Raise every running campaign's cancel flag: in-flight samples
        // finish, a final snapshot is written, the worker comes back.
        // Deliberately NOT marked cancel_requested — these jobs stay
        // journaled as running, for the next process to resume.
        for flag in sched.cancel_flags.values() {
            flag.store(true, Ordering::SeqCst);
        }
        drop(sched);
        self.work_cv.notify_all();
    }

    fn fire(&self, which: ServeFault) -> bool {
        self.fault == Some(which) && self.fault_arm.fire()
    }
}

/// The server. Construct with [`Server::start`].
pub struct Server;

/// A running server: bound address plus the thread handles.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    handlers: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Recovery-scan report from startup.
    pub recovery: RecoveryReport,
}

impl Server {
    /// Opens the job store, runs the recovery scan, binds the
    /// listener, and spawns the acceptor/handler/worker threads.
    pub fn start(config: ServeConfig, registry: ModelRegistry) -> Result<ServerHandle, ServeError> {
        let store = JobStore::open(&config.jobs_dir).map_err(ServeError::Store)?;

        // Recovery scan: reap staging files, prevalidate checkpoints,
        // re-queue interrupted jobs.
        let (recovery, requeued) = store.recover(|rec| {
            registry
                .get(&rec.model)
                .map(|m| rec.campaign_fingerprint(m.model_fingerprint()))
        });
        if !recovery.requeued.is_empty() || recovery.tmp_reaped > 0 {
            eprintln!(
                "serve: recovery scan: requeued {} job(s) ({} interrupted mid-run), \
                 reaped {} staging file(s), deleted {} corrupt checkpoint(s), \
                 quarantined {} record(s)",
                recovery.requeued.len(),
                recovery.interrupted,
                recovery.tmp_reaped,
                recovery.corrupt_checkpoints,
                recovery.quarantined_records
            );
        }

        let mut sched = Sched {
            queues: BTreeMap::new(),
            tenant_rr: Vec::new(),
            rr_next: 0,
            queued: 0,
            running: 0,
            jobs: BTreeMap::new(),
            cancel_flags: BTreeMap::new(),
            cancel_requested: BTreeSet::new(),
        };
        // Terminal jobs from previous lives stay visible (idempotent
        // resubmission answers from them); requeued jobs enter the
        // queues. Recovered work bypasses the admission bound: it was
        // admitted by a previous life.
        let (all_records, _) = store.load_all();
        for rec in all_records {
            sched.jobs.insert(rec.id.clone(), rec);
        }
        for rec in requeued {
            enqueue_locked(&mut sched, &rec);
            sched.jobs.insert(rec.id.clone(), rec);
        }

        let listener =
            TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind(e.to_string()))?;

        let shared = Arc::new(Shared {
            fault: config.fault,
            fault_arm: FaultArm::new(),
            config,
            registry,
            store,
            sched: Mutex::new(sched),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            accept_stop: AtomicBool::new(false),
        });

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(&shared, &listener, &conn_tx))
        };
        let handlers = (0..N_HANDLERS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&conn_rx);
                std::thread::spawn(move || handler_loop(&shared, &rx))
            })
            .collect();
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            handlers,
            workers,
            recovery,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been initiated (by any path).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is initiated (signal, `/shutdown`, or
    /// [`ServerHandle::shutdown`]), then drains: workers finish their
    /// in-flight samples and snapshot, the acceptor and handlers wind
    /// down. Returns once every thread has exited.
    pub fn join(mut self) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            if signal_received() {
                self.shared.begin_shutdown();
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Re-notify in case shutdown was set without begin_shutdown
        // having seen later-registered flags.
        self.shared.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.accept_stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join(); // dropping the acceptor drops conn_tx …
        }
        for h in self.handlers.drain(..) {
            let _ = h.join(); // … which unblocks the handlers' recv.
        }
    }
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener, conn_tx: &mpsc::Sender<TcpStream>) {
    loop {
        if shared.accept_stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _span = linvar_metrics::timer(Phase::ServeAccept);
                // Slow-client armor: timeouts are set before the
                // stream can reach a handler.
                let t = shared.config.io_timeout;
                let _ = stream.set_read_timeout(Some(t));
                let _ = stream.set_write_timeout(Some(t));
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handler_loop(shared: &Shared, rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        let next = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(mut stream) = next else { return };
        let _span = linvar_metrics::timer(Phase::ServeHandle);
        linvar_metrics::incr(Counter::ServeRequests);
        let response = match read_request(&mut stream) {
            Ok(req) => route(shared, &req),
            Err(HttpError::TooLarge) => {
                linvar_metrics::incr(Counter::ServeBadRequests);
                Response::error(413, "request exceeds the size cap")
            }
            Err(HttpError::Timeout) => {
                linvar_metrics::incr(Counter::ServeBadRequests);
                Response::error(408, "request timed out")
            }
            Err(HttpError::Malformed(m)) => {
                linvar_metrics::incr(Counter::ServeBadRequests);
                Response::error(400, &m)
            }
            Err(HttpError::Io(_)) => continue, // connection died; nothing to say
        };
        let _ = response.write_to(&mut stream);
        linvar_metrics::flush_local();
    }
}

// ---------------------------------------------------------------------------
// Routing and endpoint handlers.
// ---------------------------------------------------------------------------

fn route(shared: &Shared, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["models"]) => models(shared),
        ("POST", ["jobs"]) => submit(shared, &req.body),
        ("GET", ["jobs"]) => list_jobs(shared),
        ("GET", ["jobs", id]) => job_status(shared, id),
        ("GET", ["jobs", id, "result"]) => job_result(shared, id),
        ("POST", ["jobs", id, "cancel"]) => cancel_job(shared, id),
        ("POST", ["shutdown"]) => {
            shared.begin_shutdown();
            let mut j = Json::obj();
            j.set("ok", true).set("draining", true);
            Response::json(200, &j)
        }
        (_, ["healthz" | "models" | "jobs", ..]) | (_, ["shutdown"]) => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

fn healthz(shared: &Shared) -> Response {
    let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    let mut j = Json::obj();
    j.set("ok", true)
        .set("queued", sched.queued as u64)
        .set("running", sched.running as u64)
        .set("jobs", sched.jobs.len() as u64)
        .set("queue_cap", shared.config.queue_cap as u64)
        .set("draining", shared.shutdown.load(Ordering::SeqCst));
    Response::json(200, &j)
}

fn models(shared: &Shared) -> Response {
    let mut j = Json::obj();
    j.set("models", shared.registry.ids());
    Response::json(200, &j)
}

fn job_json(rec: &JobRecord) -> Json {
    let mut j = Json::obj();
    j.set("job", rec.id.as_str())
        .set("tenant", rec.tenant.as_str())
        .set("model", rec.model.as_str())
        .set("seed", rec.seed)
        .set("n", rec.n as u64)
        .set("state", rec.state.name());
    if let Some(b) = rec.budget {
        j.set("budget", b as u64);
    }
    if let Some(r) = &rec.result {
        j.set("result", r.as_str());
    }
    if let Some(e) = &rec.error {
        j.set("error", e.as_str());
    }
    j
}

fn submit(shared: &Shared, body: &[u8]) -> Response {
    let bad = |msg: &str| {
        linvar_metrics::incr(Counter::ServeBadRequests);
        Response::error(400, msg)
    };
    let doc = match parse_json(body) {
        Ok(d) => d,
        Err(e) => return bad(&e.to_string()),
    };
    let Some(model_id) = doc.get_str("model") else {
        return bad("missing string field \"model\"");
    };
    let Some(n) = doc.get_u64("n").map(|v| v as usize).filter(|&v| v > 0) else {
        return bad("missing positive integer field \"n\"");
    };
    let seed = match doc.get("seed") {
        Some(Json::U64(s)) => *s,
        None => 0,
        Some(_) => return bad("field \"seed\" must be a non-negative integer"),
    };
    let tenant = doc.get_str("tenant").unwrap_or("default").to_string();
    let mut policy = RecoveryPolicy::default();
    if let Some(r) = doc.get_u64("max_retries") {
        policy.max_retries = r as usize;
    }
    if let Some(fb) = doc.get_bool("allow_fallback") {
        policy.allow_fallback = fb;
    }
    // fail_fast is a per-sample-driver knob; campaigns ignore it, so
    // the API does not accept it.
    let budget = doc.get_u64("budget").map(|b| b as usize);

    let Some(model) = shared.registry.get(model_id) else {
        return bad(&format!("unknown model {model_id:?}"));
    };

    // Crash window 1: the submission was parsed and admitted but never
    // journaled. The client sees a dead connection and retries; the
    // restarted server has no trace — idempotent resubmission covers it.
    if shared.fire(ServeFault::CrashBeforeJournal) {
        crash_now("crash-before-journal");
    }

    let rec = JobRecord::new(
        &tenant,
        model_id,
        model.model_fingerprint(),
        seed,
        n,
        policy,
        budget,
    );

    let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = sched.jobs.get(&rec.id) {
        // Idempotent resubmission: same campaign fingerprint → the
        // existing job, whatever state it is in. Never double-run.
        linvar_metrics::incr(Counter::ServeDuplicateSubmits);
        let mut j = job_json(existing);
        j.set("existing", true);
        return Response::json(200, &j);
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining").with_retry_after(RETRY_AFTER_SECS);
    }
    if sched.queued >= shared.config.queue_cap {
        // Admission control: shed rather than grow without bound.
        linvar_metrics::incr(Counter::ServeShed429);
        return Response::error(429, "admission queue is full").with_retry_after(RETRY_AFTER_SECS);
    }
    // Journal before acknowledging: once the client hears "queued", the
    // job survives any crash.
    if let Err(e) = shared.store.save(&rec) {
        return Response::error(500, &format!("journal write failed: {e}"));
    }
    // Crash window 2: the record is durable but the client was never
    // told. Restart re-queues it from the journal; the client's retry
    // dedups onto it.
    if shared.fire(ServeFault::CrashAfterJournal) {
        crash_now("crash-after-journal");
    }
    linvar_metrics::incr(Counter::ServeJobsSubmitted);
    enqueue_locked(&mut sched, &rec);
    let mut j = job_json(&rec);
    j.set("existing", false);
    sched.jobs.insert(rec.id.clone(), rec);
    drop(sched);
    shared.work_cv.notify_one();
    Response::json(200, &j)
}

fn enqueue_locked(sched: &mut Sched, rec: &JobRecord) {
    if !sched.queues.contains_key(&rec.tenant) {
        sched.tenant_rr.push(rec.tenant.clone());
        sched.queues.insert(rec.tenant.clone(), VecDeque::new());
    }
    if let Some(q) = sched.queues.get_mut(&rec.tenant) {
        q.push_back(rec.id.clone());
        sched.queued += 1;
    }
}

fn list_jobs(shared: &Shared) -> Response {
    let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    let jobs: Vec<Json> = sched.jobs.values().map(job_json).collect();
    let mut j = Json::obj();
    j.set("jobs", Json::Arr(jobs));
    Response::json(200, &j)
}

fn job_status(shared: &Shared, id: &str) -> Response {
    let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    match sched.jobs.get(id) {
        Some(rec) => Response::json(200, &job_json(rec)),
        None => Response::error(404, "no such job"),
    }
}

fn job_result(shared: &Shared, id: &str) -> Response {
    let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    match sched.jobs.get(id) {
        None => Response::error(404, "no such job"),
        Some(rec) if rec.state.is_terminal() => Response::json(200, &job_json(rec)),
        Some(rec) => {
            // Not finished: 202 with the current state so pollers can
            // distinguish "keep waiting" from "gone".
            Response::json(202, &job_json(rec))
        }
    }
}

fn cancel_job(shared: &Shared, id: &str) -> Response {
    let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    let Some(rec) = sched.jobs.get(id).cloned() else {
        return Response::error(404, "no such job");
    };
    match rec.state {
        JobState::Queued => {
            // Remove from its tenant queue and journal the terminal
            // state before answering.
            if let Some(q) = sched.queues.get_mut(&rec.tenant) {
                if let Some(pos) = q.iter().position(|j| j == id) {
                    q.remove(pos);
                    sched.queued -= 1;
                }
            }
            let mut rec = rec;
            rec.state = JobState::Cancelled;
            if let Err(e) = shared.store.save(&rec) {
                return Response::error(500, &format!("journal write failed: {e}"));
            }
            linvar_metrics::incr(Counter::ServeJobsCancelled);
            let j = job_json(&rec);
            sched.jobs.insert(rec.id.clone(), rec);
            Response::json(200, &j)
        }
        JobState::Running => {
            // Raise the campaign's cancel flag; the worker journals the
            // terminal state once in-flight samples finish.
            sched.cancel_requested.insert(id.to_string());
            if let Some(flag) = sched.cancel_flags.get(id) {
                flag.store(true, Ordering::SeqCst);
            }
            let mut j = job_json(&rec);
            j.set("cancelling", true);
            Response::json(202, &j)
        }
        _ => Response::error(409, &format!("job is already {}", rec.state.name())),
    }
}

// ---------------------------------------------------------------------------
// Worker pool.
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let claimed = {
            let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(rec) = claim_locked(&mut sched) {
                    break Some(rec);
                }
                sched = shared
                    .work_cv
                    .wait_timeout(sched, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let Some(rec) = claimed else {
            linvar_metrics::flush_local();
            return;
        };
        run_job(shared, rec);
        linvar_metrics::flush_local();
    }
}

/// Fair claim: round-robin over tenants in first-seen order, FIFO
/// within a tenant. One chatty tenant cannot starve the rest — each
/// pass serves at most one job per tenant before moving on.
fn claim_locked(sched: &mut Sched) -> Option<JobRecord> {
    let nt = sched.tenant_rr.len();
    for k in 0..nt {
        let ti = (sched.rr_next + k) % nt;
        let tenant = sched.tenant_rr[ti].clone();
        let Some(q) = sched.queues.get_mut(&tenant) else {
            continue;
        };
        let Some(id) = q.pop_front() else { continue };
        sched.rr_next = (ti + 1) % nt;
        sched.queued -= 1;
        sched.running += 1;
        let flag = Arc::new(AtomicBool::new(false));
        sched.cancel_flags.insert(id.clone(), flag);
        return sched.jobs.get(&id).cloned();
    }
    None
}

/// The deterministic result line — the byte-identity payload of the
/// service's crash-recovery guarantee. Mirrors the bench bins' `mc`
/// lines: statistics as raw f64 bit patterns, no timings.
fn result_line(rec: &JobRecord, run: &linvar_core::ModelRun) -> String {
    format!(
        "mc {} seed={} n={}: n={} mean={} std={} failures={}",
        rec.model,
        rec.seed,
        rec.n,
        run.summary.n,
        bits_hex(run.summary.mean),
        bits_hex(run.summary.std),
        run.failures
    )
}

fn run_job(shared: &Shared, mut rec: JobRecord) {
    let id = rec.id.clone();
    let finish = |rec: &mut JobRecord, to: JobState| {
        // In-memory map and journal move together under the lock; the
        // journal write is the authoritative one.
        rec.state = to;
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = shared.store.save(rec) {
            eprintln!("serve: journal write for job {} failed: {e}", rec.id);
        }
        sched.jobs.insert(rec.id.clone(), rec.clone());
        sched.cancel_flags.remove(&rec.id);
        sched.cancel_requested.remove(&rec.id);
        sched.running -= 1;
    };

    // Stalled-worker fault: the job sits on a worker that has gone
    // quiet. The server must stay responsive throughout.
    if let Some(d) = shared.fault.and_then(ServeFault::stall_duration) {
        if shared.fault_arm.fire() {
            std::thread::sleep(d);
        }
    }

    // Queued → Running, journaled before any work happens.
    rec.state = JobState::Running;
    {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = shared.store.save(&rec) {
            eprintln!("serve: journal write for job {id} failed: {e}");
        }
        sched.jobs.insert(id.clone(), rec.clone());
    }

    let Some(model) = shared.registry.get(&rec.model) else {
        rec.error = Some(format!("model {:?} is not registered", rec.model));
        linvar_metrics::incr(Counter::ServeJobsFailed);
        finish(&mut rec, JobState::Failed);
        return;
    };

    let cancel = {
        let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        sched.cancel_flags.get(&id).cloned()
    }
    .unwrap_or_default();

    let ckpt = shared.store.checkpoint_path(&id);
    let mid_checkpoint_crash = shared.fire(ServeFault::CrashMidCheckpoint);
    let config = CampaignConfig {
        checkpoint: Some(ckpt.clone()),
        resume: ckpt.exists().then(|| ckpt.clone()),
        checkpoint_every: JOB_CHECKPOINT_EVERY,
        cancel: Some(Arc::clone(&cancel)),
        // The mid-checkpoint fault stops the campaign halfway (final
        // snapshot written) so the torn staging file below sits next to
        // real resumable state — the worst-case crash window.
        sample_budget: if mid_checkpoint_crash {
            Some((rec.n / 2).max(1))
        } else {
            rec.budget
        },
        ..CampaignConfig::default()
    };

    let inject_panic = shared.fire(ServeFault::WorkerPanic);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected worker panic");
        }
        model.run(
            rec.seed,
            rec.n,
            shared.config.job_threads,
            rec.policy,
            &config,
        )
    }));

    if mid_checkpoint_crash {
        // Crash window 3: inside save_checkpoint, after the staging
        // file was created but before the rename. The snapshot that the
        // rename would have replaced is intact; the staging file is
        // torn garbage the recovery scan must reap.
        let mut tmp = ckpt.as_os_str().to_owned();
        tmp.push(".tmp");
        let _ = std::fs::write(tmp, b"torn partial checkpoint write\x00garbage");
        crash_now("crash-mid-checkpoint");
    }

    match outcome {
        Err(_) => {
            // A panicking worker must not take the server or the job
            // down: the panic is contained, the job goes back to the
            // queue, and the next attempt (fault fires once) serves it.
            eprintln!("serve: worker panicked on job {id}; re-queuing");
            let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            rec.state = JobState::Queued;
            if let Err(e) = shared.store.save(&rec) {
                eprintln!("serve: journal write for job {id} failed: {e}");
            }
            enqueue_locked(&mut sched, &rec);
            sched.jobs.insert(id.clone(), rec.clone());
            sched.cancel_flags.remove(&id);
            sched.running -= 1;
            drop(sched);
            shared.work_cv.notify_one();
        }
        Ok(Err(e)) => {
            rec.error = Some(e.to_string());
            linvar_metrics::incr(Counter::ServeJobsFailed);
            finish(&mut rec, JobState::Failed);
        }
        Ok(Ok(run)) => match run.verdict {
            CampaignVerdict::Complete => {
                rec.result = Some(result_line(&rec, &run));
                linvar_metrics::incr(Counter::ServeJobsCompleted);
                finish(&mut rec, JobState::Done);
            }
            CampaignVerdict::Truncated { .. } => {
                let cancelled = {
                    let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
                    sched.cancel_requested.contains(&id)
                };
                if cancelled {
                    linvar_metrics::incr(Counter::ServeJobsCancelled);
                    finish(&mut rec, JobState::Cancelled);
                } else if shared.shutdown.load(Ordering::SeqCst) {
                    // Graceful-shutdown drain: the campaign snapshotted
                    // and stopped. Leave the job journaled as running —
                    // the next process's recovery scan resumes it from
                    // the checkpoint, byte-identically.
                    let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
                    sched.cancel_flags.remove(&id);
                    sched.running -= 1;
                } else {
                    // A genuine sample-budget truncation: partial
                    // statistics, checkpoint kept.
                    rec.result = Some(result_line(&rec, &run));
                    finish(&mut rec, JobState::Truncated);
                }
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Signal handling (SIGTERM / ctrl-c → graceful shutdown).
// ---------------------------------------------------------------------------

static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been received since
/// [`install_signal_handlers`].
pub fn signal_received() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod sig {
    use super::SIGNAL_SHUTDOWN;
    use std::sync::atomic::Ordering;

    // std links libc on unix; declaring the symbol directly keeps the
    // crate dependency-free. `signal()` with a flag-store handler is
    // the async-signal-safe minimum — no allocation, no locks.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_sig: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_terminate as *const () as usize);
            signal(SIGTERM, on_terminate as *const () as usize);
        }
    }
}

/// Installs SIGTERM/SIGINT handlers that flip the flag
/// [`signal_received`] polls; [`ServerHandle::join`] turns it into a
/// graceful shutdown. No-op off unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sig::install();
}
