//! Minimal HTTP/1.1 request reader and response writer over blocking
//! streams.
//!
//! Scope is exactly what the campaign service needs: one request per
//! connection (`Connection: close`), methods GET/POST, a
//! `Content-Length` body, and hard caps on header and body size so a
//! slow or malicious client is bounded in both bytes and — via the
//! socket timeouts the server sets before calling in here — time.
//! Every failure is a typed [`HttpError`] the server maps to a status
//! code; nothing in this module panics on wire data.

use std::io::{Read, Write};

/// Header-section byte cap (request line + headers).
pub const HEADER_CAP: usize = 8 * 1024;
/// Body byte cap (the request-size cap of the robustness contract).
pub const BODY_CAP: usize = 64 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// Path including any query string, e.g. `/jobs/1a2b/result`.
    pub path: String,
    /// Raw body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
}

/// Typed wire-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Header section or body exceeds its cap → 413.
    TooLarge,
    /// The socket timed out mid-request → 408.
    Timeout,
    /// Anything non-HTTP on the wire → 400.
    Malformed(String),
    /// Connection-level I/O failure (reset, broken pipe) → drop.
    Io(String),
}

fn classify_io(e: &std::io::Error) -> HttpError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e.to_string()),
    }
}

/// Reads one request from `stream`. The caller is responsible for
/// having set read/write timeouts on the underlying socket; a timeout
/// surfaces as [`HttpError::Timeout`].
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, HttpError> {
    // Accumulate until the blank line that ends the header section,
    // never holding more than the cap.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_crlf_crlf(&buf) {
            break pos;
        }
        if buf.len() >= HEADER_CAP {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|e| classify_io(&e))?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the header section ended".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > HEADER_CAP + 4 {
            return Err(HttpError::TooLarge);
        }
    };
    let header_text = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 header section".into()))?;
    let mut lines = header_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed("missing or relative path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
        }
    }
    if content_length > BODY_CAP {
        return Err(HttpError::TooLarge);
    }
    // Body: whatever followed the blank line in the buffer, then read
    // the remainder.
    let mut body = buf[header_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "more body bytes than Content-Length".into(),
        ));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| classify_io(&e))?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize. JSON bodies only — the whole API
/// speaks JSON, including its errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text (JSON).
    pub body: String,
    /// `Retry-After` seconds — set on 429/503 shed responses.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &linvar_metrics::Json) -> Response {
        Response {
            status,
            body: body.render(),
            retry_after: None,
        }
    }

    /// A JSON error response: `{"error": <message>}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut j = linvar_metrics::Json::obj();
        j.set("error", message);
        Response::json(status, &j)
    }

    /// Attaches a `Retry-After` header (backpressure contract).
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Serializes status line, headers, and body to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_get_and_post_with_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());

        let req = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 9\r\nHost: x\r\n\r\n{\"n\": 4}\n")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"n\": 4}\n");
    }

    #[test]
    fn header_names_are_case_insensitive_and_methods_uppercased() {
        let req = parse(b"post /x HTTP/1.1\r\ncontent-LENGTH: 2\r\n\r\nok").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x SMTP/1.0\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn size_caps_reject_oversized_requests() {
        let mut huge = b"GET /x HTTP/1.1\r\nX-Pad: ".to_vec();
        huge.extend(vec![b'a'; HEADER_CAP + 10]);
        huge.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse(&huge), Err(HttpError::TooLarge));

        let declared = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            BODY_CAP + 1
        );
        assert_eq!(parse(declared.as_bytes()), Err(HttpError::TooLarge));
    }

    #[test]
    fn response_serialization_includes_retry_after() {
        let mut j = linvar_metrics::Json::obj();
        j.set("ok", true);
        let mut out = Vec::new();
        Response::json(200, &j).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Content-Length:"));
        assert!(!text.contains("Retry-After"));

        let mut out = Vec::new();
        Response::error(429, "queue full")
            .with_retry_after(1)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("queue full"));
    }
}
