//! A tiny blocking HTTP client — the mirror image of [`crate::http`],
//! used by the bench bins (`serve` client mode, `loadgen`) and the
//! recovery tests so nothing in the workspace needs `curl`.
//!
//! One request per connection, matching the server's
//! `Connection: close` contract.

use crate::json::parse_json;
use linvar_metrics::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed server response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Parsed JSON body (the whole API speaks JSON).
    pub body: Json,
    /// `Retry-After` seconds, when the server sent the header.
    pub retry_after: Option<u64>,
}

impl ClientResponse {
    /// Whether the status is 2xx.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Sends one request and reads the response. `timeout` bounds connect,
/// read, and write individually.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&Json>,
    timeout: Duration,
) -> Result<ClientResponse, String> {
    let sock_addr = addr
        .parse()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let body_text = body.map(Json::render).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body_text.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body_text.as_bytes()))
        .map_err(|e| format!("send {method} {path}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {method} {path}: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "non-UTF-8 response".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response has no header/body separator".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse::<u64>().ok();
            }
        }
    }
    let body = parse_json(body.as_bytes()).map_err(|e| format!("response body: {e}"))?;
    Ok(ClientResponse {
        status,
        body,
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_retry_after() {
        let mut raw = Vec::new();
        crate::http::Response::error(429, "full")
            .with_retry_after(2)
            .write_to(&mut raw)
            .unwrap();
        let resp = parse_response(&raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after, Some(2));
        assert!(!resp.ok());
        use crate::json::JsonGet;
        assert_eq!(resp.body.get_str("error"), Some("full"));
    }
}
