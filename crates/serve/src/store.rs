//! The durable job store: journal format, lifecycle state machine, and
//! the startup recovery scan.
//!
//! Every job owns two files inside the store directory:
//!
//! * `job-<id>.rec` — the **journal record**: identity (tenant, model,
//!   seed, n, policy, budget), current lifecycle state, and — once
//!   terminal — the result or error. Rewritten atomically (temp
//!   sibling + fsync + rename + directory fsync, the `campaign.rs`
//!   discipline) on *every* state transition, with an FNV-1a checksum
//!   trailer, so a crash at any instant leaves either the previous
//!   record or the complete new one.
//! * `job-<id>.ckpt` — the campaign checkpoint, written by the durable
//!   campaign driver itself while the job runs.
//!
//! The job id is a fingerprint of the submission (model fingerprint,
//! seed, n, policy, budget), which is what makes submission
//! **idempotent**: the same campaign submitted twice maps to the same
//! record file, so the server returns the existing job instead of
//! double-running it.
//!
//! **Recovery scan** ([`JobStore::recover`]): reap orphaned `*.tmp`
//! staging files (crash mid-write), quarantine unreadable records
//! (renamed to `.bad` — bit rot must not block restart), prevalidate
//! the checkpoint of every interrupted job against its fingerprint
//! (corrupt snapshots are deleted — costing a re-run, never a wrong
//! answer — exactly the shard supervisor's prevalidation), and journal
//! interrupted jobs back to [`JobState::Queued`] for re-dispatch.

use linvar_metrics::Counter;
use linvar_stats::{
    fingerprint_str, fingerprint_words, fnv1a64, load_checkpoint, reap_tmp_in_dir,
    CampaignFingerprint, CheckpointError, RecoveryPolicy,
};
use std::path::{Path, PathBuf};

/// On-disk format tag, first line of every job record.
pub const JOB_FORMAT_VERSION: &str = "linvar-job-v1";

/// Lifecycle state of a job.
///
/// ```text
///            ┌────────────► Cancelled
///            │                  ▲
/// Queued ──► Running ──┬─► Done │
///    ▲          │      ├─► Failed
///    └──────────┘      └─► Truncated
///     (recovery scan)
/// ```
///
/// `Done`/`Failed`/`Cancelled`/`Truncated` are terminal. The one
/// backward edge — `Running → Queued` — is the restart recovery scan
/// re-queuing a job the previous process died while running; it never
/// happens inside a live process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobState {
    /// Journaled, waiting for a worker.
    Queued,
    /// A worker owns it.
    Running,
    /// Campaign complete; result recorded.
    Done,
    /// Campaign errored; diagnostic recorded.
    Failed,
    /// Cancelled by request (from queue or mid-run).
    Cancelled,
    /// Sample budget exhausted; partial result recorded, checkpoint
    /// kept for a future resubmission with a larger budget.
    Truncated,
}

impl JobState {
    /// Every state, in declaration order.
    pub const ALL: [JobState; 6] = [
        JobState::Queued,
        JobState::Running,
        JobState::Done,
        JobState::Failed,
        JobState::Cancelled,
        JobState::Truncated,
    ];

    /// Stable lowercase name (journal spelling and API spelling).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Truncated => "truncated",
        }
    }

    /// Inverse of [`JobState::name`].
    pub fn from_name(s: &str) -> Option<JobState> {
        JobState::ALL.into_iter().find(|st| st.name() == s)
    }

    /// No further transitions out of these.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::Truncated
        )
    }

    /// The exhaustive transition relation. Everything not listed is
    /// invalid — in particular, terminal states accept nothing, and no
    /// state transitions to itself.
    pub fn can_transition(self, to: JobState) -> bool {
        matches!(
            (self, to),
            (JobState::Queued, JobState::Running)
                | (JobState::Queued, JobState::Cancelled)
                | (JobState::Running, JobState::Done)
                | (JobState::Running, JobState::Failed)
                | (JobState::Running, JobState::Cancelled)
                | (JobState::Running, JobState::Truncated)
                | (JobState::Running, JobState::Queued)
        )
    }
}

/// One job: submission identity plus current lifecycle state.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Fingerprint-derived id (16 hex digits); also the record filename.
    pub id: String,
    /// Submitting tenant (fairness key, not identity).
    pub tenant: String,
    /// Registry model id.
    pub model: String,
    /// Campaign master seed.
    pub seed: u64,
    /// Campaign sample count.
    pub n: usize,
    /// Recovery policy for the attempts.
    pub policy: RecoveryPolicy,
    /// Optional total sample budget (jobs over budget end Truncated).
    pub budget: Option<usize>,
    /// Lifecycle state.
    pub state: JobState,
    /// Deterministic result line, once Done/Truncated.
    pub result: Option<String>,
    /// Diagnostic, once Failed.
    pub error: Option<String>,
}

impl JobRecord {
    /// A fresh queued record with the fingerprint-derived id.
    pub fn new(
        tenant: &str,
        model: &str,
        model_fingerprint: u64,
        seed: u64,
        n: usize,
        policy: RecoveryPolicy,
        budget: Option<usize>,
    ) -> JobRecord {
        let id = job_id(model_fingerprint, seed, n, policy, budget);
        JobRecord {
            id,
            tenant: tenant.to_string(),
            model: model.to_string(),
            seed,
            n,
            policy,
            budget,
            state: JobState::Queued,
            result: None,
            error: None,
        }
    }

    /// The campaign fingerprint this job's checkpoints validate
    /// against.
    pub fn campaign_fingerprint(&self, model_fingerprint: u64) -> CampaignFingerprint {
        CampaignFingerprint {
            master_seed: self.seed,
            n_samples: self.n,
            policy: self.policy,
            model: model_fingerprint,
        }
    }
}

/// Deterministic job id: a fingerprint of everything that identifies
/// the campaign (the [`CampaignFingerprint`] fields) plus the budget.
/// The tenant is deliberately excluded — two tenants submitting the
/// identical campaign share the job and its single run.
pub fn job_id(
    model_fingerprint: u64,
    seed: u64,
    n: usize,
    policy: RecoveryPolicy,
    budget: Option<usize>,
) -> String {
    let words = [
        fingerprint_str("job-v1"),
        model_fingerprint,
        seed,
        n as u64,
        policy.max_retries as u64,
        u64::from(policy.allow_fallback),
        u64::from(policy.fail_fast),
        budget.map_or(u64::MAX, |b| b as u64),
    ];
    format!("{:016x}", fingerprint_words(words))
}

fn escape(msg: &str) -> String {
    msg.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    let mut chars = msg.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        op,
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn serialize_record(rec: &JobRecord) -> String {
    let mut body = String::with_capacity(256);
    body.push_str(JOB_FORMAT_VERSION);
    body.push('\n');
    body.push_str(&format!("id={}\n", rec.id));
    body.push_str(&format!("tenant={}\n", escape(&rec.tenant)));
    body.push_str(&format!("model={}\n", escape(&rec.model)));
    body.push_str(&format!("seed={}\n", rec.seed));
    body.push_str(&format!("n={}\n", rec.n));
    body.push_str(&format!(
        "policy={} {} {}\n",
        rec.policy.max_retries,
        u8::from(rec.policy.allow_fallback),
        u8::from(rec.policy.fail_fast)
    ));
    if let Some(b) = rec.budget {
        body.push_str(&format!("budget={b}\n"));
    }
    body.push_str(&format!("state={}\n", rec.state.name()));
    if let Some(r) = &rec.result {
        body.push_str(&format!("result={}\n", escape(r)));
    }
    if let Some(e) = &rec.error {
        body.push_str(&format!("error={}\n", escape(e)));
    }
    let sum = fnv1a64(body.as_bytes());
    body.push_str(&format!("sum={sum:016x}\n"));
    body
}

fn parse_record(text: &str) -> Result<JobRecord, CheckpointError> {
    let malformed = |reason: String| CheckpointError::Malformed { reason };
    let sum_at = text
        .rfind("sum=")
        .ok_or_else(|| malformed("missing checksum line (file truncated?)".into()))?;
    if sum_at > 0 && text.as_bytes()[sum_at - 1] != b'\n' {
        return Err(malformed("checksum line does not start a line".into()));
    }
    let sum_line = text[sum_at..].trim_end();
    let recorded = u64::from_str_radix(sum_line.trim_start_matches("sum="), 16)
        .map_err(|_| malformed(format!("unparseable checksum line {sum_line:?}")))?;
    let payload = &text[..sum_at];
    let found = fnv1a64(payload.as_bytes());
    if found != recorded {
        return Err(CheckpointError::ChecksumMismatch {
            expected: recorded,
            found,
        });
    }
    let mut lines = payload.lines();
    let version = lines
        .next()
        .ok_or_else(|| malformed("empty record".into()))?;
    if version != JOB_FORMAT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version.to_string(),
        });
    }
    let mut id = None;
    let mut tenant = None;
    let mut model = None;
    let mut seed = None;
    let mut n = None;
    let mut policy = None;
    let mut budget = None;
    let mut state = None;
    let mut result = None;
    let mut error = None;
    for line in lines {
        if let Some(v) = line.strip_prefix("id=") {
            id = Some(v.to_string());
        } else if let Some(v) = line.strip_prefix("tenant=") {
            tenant = Some(unescape(v));
        } else if let Some(v) = line.strip_prefix("model=") {
            model = Some(unescape(v));
        } else if let Some(v) = line.strip_prefix("seed=") {
            seed = Some(
                v.parse::<u64>()
                    .map_err(|_| malformed(format!("bad seed {v:?}")))?,
            );
        } else if let Some(v) = line.strip_prefix("n=") {
            n = Some(
                v.parse::<usize>()
                    .map_err(|_| malformed(format!("bad n {v:?}")))?,
            );
        } else if let Some(v) = line.strip_prefix("policy=") {
            let mut it = v.split(' ');
            let bad = || malformed(format!("bad policy line {v:?}"));
            let max_retries: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let allow_fallback = match it.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(bad()),
            };
            let fail_fast = match it.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(bad()),
            };
            policy = Some(RecoveryPolicy {
                max_retries,
                allow_fallback,
                fail_fast,
            });
        } else if let Some(v) = line.strip_prefix("budget=") {
            budget = Some(
                v.parse::<usize>()
                    .map_err(|_| malformed(format!("bad budget {v:?}")))?,
            );
        } else if let Some(v) = line.strip_prefix("state=") {
            state =
                Some(JobState::from_name(v).ok_or_else(|| malformed(format!("bad state {v:?}")))?);
        } else if let Some(v) = line.strip_prefix("result=") {
            result = Some(unescape(v));
        } else if let Some(v) = line.strip_prefix("error=") {
            error = Some(unescape(v));
        } else if !line.is_empty() {
            return Err(malformed(format!("unrecognized line: {line:?}")));
        }
    }
    Ok(JobRecord {
        id: id.ok_or_else(|| malformed("missing id= line".into()))?,
        tenant: tenant.ok_or_else(|| malformed("missing tenant= line".into()))?,
        model: model.ok_or_else(|| malformed("missing model= line".into()))?,
        seed: seed.ok_or_else(|| malformed("missing seed= line".into()))?,
        n: n.ok_or_else(|| malformed("missing n= line".into()))?,
        policy: policy.ok_or_else(|| malformed("missing policy= line".into()))?,
        budget,
        state: state.ok_or_else(|| malformed("missing state= line".into()))?,
        result,
        error,
    })
}

/// What the startup recovery scan found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Job ids journaled back to queued for re-dispatch (previous
    /// process died while they were queued or running), sorted.
    pub requeued: Vec<String>,
    /// Of those, how many were mid-run (state was `running`).
    pub interrupted: usize,
    /// Orphaned `*.tmp` staging files reaped.
    pub tmp_reaped: usize,
    /// Corrupt checkpoints deleted by prevalidation (each costs a
    /// re-run of that job's samples — never a wrong answer).
    pub corrupt_checkpoints: usize,
    /// Unreadable job records quarantined to `*.bad`.
    pub quarantined_records: usize,
}

/// The on-disk job store.
#[derive(Debug, Clone)]
pub struct JobStore {
    dir: PathBuf,
}

impl JobStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: &Path) -> Result<JobStore, CheckpointError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create", dir, e))?;
        Ok(JobStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journal record path of a job id.
    pub fn record_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("job-{id}.rec"))
    }

    /// Campaign checkpoint path of a job id.
    pub fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("job-{id}.ckpt"))
    }

    /// Journals `rec` atomically: temp sibling + fsync + rename +
    /// parent-directory fsync. After this returns `Ok`, a crash at any
    /// later instant leaves the complete new record visible.
    pub fn save(&self, rec: &JobRecord) -> Result<(), CheckpointError> {
        use std::io::Write as _;
        let path = self.record_path(&rec.id);
        let body = serialize_record(rec);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(body.as_bytes())
                .map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename", &path, e))?;
        #[cfg(unix)]
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Loads and checksum-verifies one record file.
    pub fn load(&self, id: &str) -> Result<JobRecord, CheckpointError> {
        let path = self.record_path(id);
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, e))?;
        let text = String::from_utf8(bytes).map_err(|_| CheckpointError::Malformed {
            reason: "record is not valid UTF-8".into(),
        })?;
        parse_record(&text)
    }

    /// Loads every readable record, sorted by id. Unreadable records
    /// are renamed to `<name>.bad` (quarantine — restart must not be
    /// blocked by one rotten file) and counted.
    pub fn load_all(&self) -> (Vec<JobRecord>, usize) {
        let mut out = Vec::new();
        let mut quarantined = 0usize;
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return (out, 0);
        };
        let mut rec_files: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "rec")
                    && p.file_name()
                        .and_then(|f| f.to_str())
                        .is_some_and(|f| f.starts_with("job-"))
            })
            .collect();
        rec_files.sort();
        for path in rec_files {
            let parsed = std::fs::read(&path)
                .map_err(|e| io_err("read", &path, e))
                .and_then(|bytes| {
                    String::from_utf8(bytes).map_err(|_| CheckpointError::Malformed {
                        reason: "record is not valid UTF-8".into(),
                    })
                })
                .and_then(|text| parse_record(&text));
            match parsed {
                Ok(rec) => out.push(rec),
                Err(e) => {
                    eprintln!(
                        "serve: quarantining unreadable job record {}: {e}",
                        path.display()
                    );
                    let mut bad = path.as_os_str().to_owned();
                    bad.push(".bad");
                    let _ = std::fs::rename(&path, PathBuf::from(bad));
                    quarantined += 1;
                }
            }
        }
        (out, quarantined)
    }

    /// The startup recovery scan. `fingerprint_of` maps a record to its
    /// campaign fingerprint (`None` = the model is no longer
    /// registered; the job is journaled as failed rather than wedging
    /// the queue forever).
    ///
    /// Returns the report plus the records re-queued for dispatch, in
    /// id order (deterministic restart behavior).
    pub fn recover(
        &self,
        fingerprint_of: impl Fn(&JobRecord) -> Option<CampaignFingerprint>,
    ) -> (RecoveryReport, Vec<JobRecord>) {
        let mut report = RecoveryReport {
            tmp_reaped: reap_tmp_in_dir(&self.dir),
            ..RecoveryReport::default()
        };
        let (records, quarantined) = self.load_all();
        report.quarantined_records = quarantined;
        let mut requeue = Vec::new();
        for mut rec in records {
            match rec.state {
                JobState::Queued => {
                    requeue.push(rec);
                }
                JobState::Running => {
                    report.interrupted += 1;
                    linvar_metrics::incr(Counter::ServeJobsRecovered);
                    match fingerprint_of(&rec) {
                        Some(fp) => {
                            // Checkpoint prevalidation, shard-supervisor
                            // style: a corrupt or mismatched snapshot is
                            // deleted so the resumed run starts clean —
                            // one re-run, never a wrong answer.
                            let ckpt = self.checkpoint_path(&rec.id);
                            if ckpt.exists() {
                                let ok = load_checkpoint(&ckpt)
                                    .and_then(|ck| ck.validate(&fp).map(|()| ck))
                                    .is_ok();
                                if !ok {
                                    report.corrupt_checkpoints += 1;
                                    let _ = std::fs::remove_file(&ckpt);
                                }
                            }
                            rec.state = JobState::Queued;
                            let _ = self.save(&rec);
                            requeue.push(rec);
                        }
                        None => {
                            rec.state = JobState::Failed;
                            rec.error = Some(format!("model {:?} is not registered", rec.model));
                            let _ = self.save(&rec);
                        }
                    }
                }
                _ => {}
            }
        }
        requeue.sort_by(|a, b| a.id.cmp(&b.id));
        report.requeued = requeue.iter().map(|r| r.id.clone()).collect();
        (report, requeue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let k = SEQ.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "linvar-store-unit-{}-{tag}-{k}",
            std::process::id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(state: JobState) -> JobRecord {
        let mut r = JobRecord::new(
            "acme",
            "demo-fast",
            0x1234,
            7,
            40,
            RecoveryPolicy::default(),
            None,
        );
        r.state = state;
        r
    }

    #[test]
    fn exhaustive_transition_table() {
        use JobState::*;
        let valid = [
            (Queued, Running),
            (Queued, Cancelled),
            (Running, Done),
            (Running, Failed),
            (Running, Cancelled),
            (Running, Truncated),
            (Running, Queued), // recovery scan only
        ];
        for from in JobState::ALL {
            for to in JobState::ALL {
                let expect = valid.contains(&(from, to));
                assert_eq!(
                    from.can_transition(to),
                    expect,
                    "{from:?} -> {to:?} must be {}",
                    if expect { "valid" } else { "invalid" }
                );
            }
        }
        // Terminal states accept nothing; non-terminals go somewhere.
        for s in JobState::ALL {
            let outgoing = JobState::ALL.iter().any(|&t| s.can_transition(t));
            assert_eq!(outgoing, !s.is_terminal(), "{s:?}");
        }
    }

    #[test]
    fn state_names_roundtrip() {
        for s in JobState::ALL {
            assert_eq!(JobState::from_name(s.name()), Some(s));
        }
        assert_eq!(JobState::from_name("bogus"), None);
    }

    #[test]
    fn record_roundtrip_with_special_characters() {
        let store = JobStore::open(&tmp_dir("roundtrip")).unwrap();
        let mut r = rec(JobState::Failed);
        r.tenant = "ten\nant \\ x".into();
        r.error = Some("line1\nline2 \\ tail".into());
        r.budget = Some(17);
        store.save(&r).unwrap();
        let back = store.load(&r.id).unwrap();
        assert_eq!(back, r);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_record_is_rejected_and_quarantined() {
        let store = JobStore::open(&tmp_dir("corrupt")).unwrap();
        let r = rec(JobState::Queued);
        store.save(&r).unwrap();
        // Flip one byte of the payload: checksum must catch it.
        let path = store.record_path(&r.id);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(&r.id),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        let (records, quarantined) = store.load_all();
        assert_eq!(records.len(), 0);
        assert_eq!(quarantined, 1);
        assert!(!path.exists(), "rotten record renamed away");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn job_id_is_deterministic_and_sensitive() {
        let p = RecoveryPolicy::default();
        let a = job_id(1, 2, 3, p, None);
        assert_eq!(a, job_id(1, 2, 3, p, None));
        assert_ne!(a, job_id(1, 2, 3, p, Some(3)));
        assert_ne!(a, job_id(1, 9, 3, p, None));
        assert_ne!(a, job_id(9, 2, 3, p, None));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn recovery_scan_requeues_reaps_and_prevalidates() {
        let store = JobStore::open(&tmp_dir("recover")).unwrap();
        // One of each persisted state.
        let mut ids = std::collections::BTreeMap::new();
        for (k, st) in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Cancelled,
        ]
        .iter()
        .enumerate()
        {
            let mut r = rec(*st);
            r.seed = 100 + k as u64; // distinct ids
            r.id = job_id(0x1234, r.seed, r.n, r.policy, None);
            store.save(&r).unwrap();
            ids.insert(*st, r.id.clone());
        }
        // Orphaned staging files + a *corrupt* checkpoint for the
        // running job (prevalidation must delete it).
        std::fs::write(store.dir().join("junk.ckpt.tmp"), b"torn").unwrap();
        let running_id = ids[&JobState::Running].clone();
        let ckpt = store.checkpoint_path(&running_id);
        std::fs::write(&ckpt, b"not a checkpoint at all").unwrap();

        let fp = |r: &JobRecord| {
            Some(CampaignFingerprint {
                master_seed: r.seed,
                n_samples: r.n,
                policy: r.policy,
                model: 0x1234,
            })
        };
        let (report, requeued) = store.recover(fp);
        assert_eq!(report.tmp_reaped, 1);
        assert_eq!(report.interrupted, 1);
        assert_eq!(report.corrupt_checkpoints, 1);
        assert!(!ckpt.exists(), "corrupt checkpoint deleted");
        assert_eq!(requeued.len(), 2, "queued + running come back");
        assert!(requeued.iter().all(|r| r.state == JobState::Queued));
        // The interrupted job's journal now says queued again.
        assert_eq!(store.load(&running_id).unwrap().state, JobState::Queued);
        // Terminal jobs are untouched.
        assert_eq!(
            store.load(&ids[&JobState::Done]).unwrap().state,
            JobState::Done
        );
        // A second scan is a no-op fixed point.
        let (report2, requeued2) = store.recover(fp);
        assert_eq!(report2.tmp_reaped, 0);
        assert_eq!(report2.interrupted, 0);
        assert_eq!(requeued2.len(), 2);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn recovery_fails_jobs_of_unregistered_models() {
        let store = JobStore::open(&tmp_dir("unreg")).unwrap();
        let r = rec(JobState::Running);
        store.save(&r).unwrap();
        let (report, requeued) = store.recover(|_| None);
        assert!(requeued.is_empty());
        assert_eq!(report.interrupted, 1);
        let back = store.load(&r.id).unwrap();
        assert_eq!(back.state, JobState::Failed);
        assert!(back.error.unwrap().contains("not registered"));
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
