//! Recursive-descent JSON parser producing [`linvar_metrics::Json`]
//! values — the reader side of the workspace's hand-rolled writer.
//!
//! Scope matches what the service accepts: RFC-8259 syntax with a
//! nesting-depth cap (stack safety against `[[[[…`), numbers parsed as
//! `u64` when they are non-negative integers (seeds, counts) and `f64`
//! otherwise, and strict trailing-garbage rejection. Errors are typed
//! and positioned; a malformed body can never panic the handler.

use linvar_metrics::Json;
use std::fmt;

/// Maximum nesting depth accepted (arrays + objects combined).
const MAX_DEPTH: usize = 32;

/// Typed parse failure with a byte offset for the diagnostics the
/// server returns in its 400 responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset the failure was detected at.
    pub at: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            at: self.pos,
            reason: reason.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {word:?}"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte {:?}", other as char)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut obj = Json::obj();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            obj.set(&key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(obj);
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonParseError {
                        at: self.pos,
                        reason: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the service's ids and model names are ASCII.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("\\u escape is not a scalar value"),
                            }
                        }
                        other => {
                            return self.err(format!("unknown escape \\{}", other as char));
                        }
                    }
                }
                Some(c) if c < 0x20 => return self.err("raw control byte in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar (input was validated as UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(_) => return self.err("invalid UTF-8"),
                    };
                    let Some(c) = s.chars().next() else {
                        return self.err("unterminated string");
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonParseError {
                at: start,
                reason: "invalid UTF-8 in number".into(),
            })?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::F64(f)),
            _ => Err(JsonParseError {
                at: start,
                reason: format!("unparseable number {text:?}"),
            }),
        }
    }
}

/// Parses `bytes` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_json(bytes: &[u8]) -> Result<Json, JsonParseError> {
    // Validate UTF-8 once up front so string scanning can assume it.
    if std::str::from_utf8(bytes).is_err() {
        return Err(JsonParseError {
            at: 0,
            reason: "body is not valid UTF-8".into(),
        });
    }
    let mut p = Parser { bytes, pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return p.err("trailing garbage after the JSON document");
    }
    Ok(v)
}

/// Accessor helpers over the parsed value, shaped for the submission
/// endpoint: every getter returns `None` on a type mismatch so the
/// handler maps it to a 400 with a field-specific message.
pub trait JsonGet {
    /// Field of an object, if present.
    fn get(&self, key: &str) -> Option<&Json>;
    /// String field.
    fn get_str(&self, key: &str) -> Option<&str>;
    /// Non-negative integer field.
    fn get_u64(&self, key: &str) -> Option<u64>;
    /// Boolean field.
    fn get_bool(&self, key: &str) -> Option<bool>;
}

impl JsonGet for Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Json::U64(u)) => Some(*u),
            _ => None,
        }
    }

    fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_writers_canonical_output() {
        let mut j = Json::obj();
        j.set("name", "demo-fast")
            .set("seed", 42u64)
            .set("ratio", 2.5f64)
            .set("ok", true)
            .set("none", Json::Null)
            .set("tags", vec!["a", "b"]);
        let text = j.render();
        let back = parse_json(text.as_bytes()).unwrap();
        assert_eq!(back, j);
        // And the reparse of the re-render is a fixed point.
        assert_eq!(parse_json(back.render().as_bytes()).unwrap(), back);
    }

    #[test]
    fn integers_stay_u64_and_floats_stay_f64() {
        let v = parse_json(b"{\"n\": 100, \"x\": 1.5, \"e\": 1e3}").unwrap();
        assert_eq!(v.get_u64("n"), Some(100));
        assert_eq!(v.get("x"), Some(&Json::F64(1.5)));
        assert_eq!(v.get("e"), Some(&Json::F64(1000.0)));
        // Negative integers fall to F64 (the Json enum is writer-shaped).
        assert_eq!(parse_json(b"-3").unwrap(), Json::F64(-3.0));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse_json(br#""a\"b\\c\n\u0041""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\nA".into()));
        let v = parse_json("\"π\"".as_bytes()).unwrap();
        assert_eq!(v, Json::Str("π".into()));
    }

    #[test]
    fn malformed_documents_are_typed_errors_not_panics() {
        for bad in [
            &b""[..],
            b"{",
            b"[1,",
            b"{\"a\" 1}",
            b"{\"a\": }",
            b"truth",
            b"\"unterminated",
            b"1 2",
            b"{} garbage",
            b"\"bad \\q escape\"",
            b"\"\\ud800\"",
            b"nan",
            b"{\"a\": 1,}",
            b"\x01",
            b"\xff\xfe",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn depth_cap_rejects_stack_bombs() {
        let bomb = "[".repeat(2000) + &"]".repeat(2000);
        let err = parse_json(bomb.as_bytes()).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
        // ... while reasonable nesting is fine.
        assert!(parse_json(b"[[[[[[[[1]]]]]]]]").is_ok());
    }

    #[test]
    fn getters_are_type_strict() {
        let v = parse_json(b"{\"s\": \"x\", \"n\": 3, \"b\": false}").unwrap();
        assert_eq!(v.get_str("s"), Some("x"));
        assert_eq!(v.get_str("n"), None);
        assert_eq!(v.get_u64("s"), None);
        assert_eq!(v.get_bool("b"), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::U64(1).get("x"), None, "non-objects have no fields");
    }
}
