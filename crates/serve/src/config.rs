//! Server configuration: defaults, and hardened environment-knob
//! resolution through `linvar-stats`' shared [`env_knob`] helpers, so
//! the serve knobs get exactly the whitespace/overflow/zero treatment
//! `LINVAR_THREADS` has — malformed values warn on stderr and fall back
//! to the default, never pass silently, never panic.
//!
//! Knobs:
//! * `LINVAR_SERVE_ADDR` — listen address (default `127.0.0.1:7171`);
//! * `LINVAR_SERVE_WORKERS` — campaign worker pool size (default 2);
//! * `LINVAR_SERVE_QUEUE` — admission-queue bound across all tenants
//!   (default 64; beyond it submissions shed with 429);
//! * `LINVAR_SERVE_FAULT` — fault injection, see [`crate::ServeFault`].
//!
//! [`env_knob`]: linvar_stats::envknob

use crate::fault::ServeFault;
use linvar_stats::{env_knob_str, env_knob_usize};
use std::path::PathBuf;
use std::time::Duration;

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";
/// Default worker-pool size.
pub const DEFAULT_WORKERS: usize = 2;
/// Default admission-queue bound.
pub const DEFAULT_QUEUE: usize = 64;

/// Everything the server needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Campaign worker threads (jobs run one per worker).
    pub workers: usize,
    /// Admission-queue bound across all tenants.
    pub queue_cap: usize,
    /// Directory for job records and campaign checkpoints.
    pub jobs_dir: PathBuf,
    /// Worker threads *inside* each job's campaign.
    pub job_threads: usize,
    /// Socket read/write timeout per request.
    pub io_timeout: Duration,
    /// Fault to inject (fires once), from `LINVAR_SERVE_FAULT`.
    pub fault: Option<ServeFault>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            workers: DEFAULT_WORKERS,
            queue_cap: DEFAULT_QUEUE,
            jobs_dir: PathBuf::from("serve-jobs"),
            job_threads: 1,
            io_timeout: Duration::from_secs(5),
            fault: None,
        }
    }
}

impl ServeConfig {
    /// Resolves the config from the environment on top of the defaults.
    /// Malformed knobs warn (via the shared hardened parser) and keep
    /// the default.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(addr) = env_knob_str("LINVAR_SERVE_ADDR", "the default address").valid() {
            cfg.addr = addr;
        }
        if let Some(w) = env_knob_usize("LINVAR_SERVE_WORKERS", "the default worker count").valid()
        {
            cfg.workers = w;
        }
        if let Some(q) = env_knob_usize("LINVAR_SERVE_QUEUE", "the default queue bound").valid() {
            cfg.queue_cap = q;
        }
        cfg.fault = ServeFault::from_env();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_stats::envknob::{parse_str_knob, parse_usize_knob, EnvKnob};
    use std::ffi::OsString;

    // The env-reading path itself is process-global; the parsing it
    // delegates to is covered shape-by-shape here through the pure core
    // (see also linvar-stats' envknob tests).
    #[test]
    fn serve_knobs_share_the_hardened_parser() {
        for bad in ["0", " -1 ", "many", "", "99999999999999999999999"] {
            assert_eq!(
                parse_usize_knob(
                    "LINVAR_SERVE_WORKERS",
                    Some(OsString::from(bad)),
                    "the default worker count"
                ),
                EnvKnob::Invalid,
                "{bad:?}"
            );
            assert_eq!(
                parse_usize_knob(
                    "LINVAR_SERVE_QUEUE",
                    Some(OsString::from(bad)),
                    "the default queue bound"
                ),
                EnvKnob::Invalid,
                "{bad:?}"
            );
        }
        assert_eq!(
            parse_usize_knob("LINVAR_SERVE_WORKERS", Some(OsString::from(" 8 ")), "d"),
            EnvKnob::Valid(8)
        );
        assert_eq!(
            parse_str_knob("LINVAR_SERVE_ADDR", Some(OsString::from("  ")), "d"),
            EnvKnob::Invalid
        );
        assert_eq!(
            parse_str_knob(
                "LINVAR_SERVE_ADDR",
                Some(OsString::from(" 0.0.0.0:9999 ")),
                "d"
            ),
            EnvKnob::Valid("0.0.0.0:9999".into())
        );
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_cap >= 1);
        assert!(!cfg.addr.is_empty());
        assert!(cfg.fault.is_none());
    }
}
