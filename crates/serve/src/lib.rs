//! `linvar-serve`: the fault-tolerant campaign service.
//!
//! A std-only TCP/HTTP-1.1 JSON server (hand-rolled, in the spirit of
//! `linvar-metrics`' hand-rolled JSON writer — the build environment has
//! no registry access, so there are no dependencies to reach for) that
//! turns the durable-campaign substrate of `linvar-stats` /
//! `linvar-core` into a long-running multi-tenant job service.
//!
//! Robustness is the headline, not the API surface:
//!
//! * **Durable job store** ([`store`]) — every job-state transition is
//!   journaled to its own record file with the same atomic
//!   temp+fsync+rename discipline as campaign checkpoints. A `kill -9`
//!   at any instant leaves either the previous record or the complete
//!   new one; restart runs a **recovery scan** that reaps orphaned
//!   `*.tmp` staging files, prevalidates each in-flight job's
//!   fingerprinted checkpoint (corrupt snapshots are deleted, costing
//!   one re-run — never a wrong answer), and re-queues the job. The
//!   resumed job produces a result line **byte-identical** to an
//!   uninterrupted run.
//! * **Bounded worker pool, fair across tenants** ([`server`]) — jobs
//!   queue per tenant and workers claim round-robin over tenants, so
//!   one chatty tenant cannot starve the rest.
//! * **Admission control** — the queue is bounded
//!   (`LINVAR_SERVE_QUEUE`); excess submissions are shed with HTTP 429
//!   + `Retry-After` instead of growing memory without bound.
//! * **Slow-client armor** ([`http`]) — per-request read/write socket
//!   timeouts and header/body size caps, so a stalled or malicious
//!   client costs one handler slot for a bounded time, never the
//!   acceptor.
//! * **Graceful shutdown** — SIGTERM/ctrl-c or `POST /shutdown` stops
//!   admissions (503), lets in-flight samples finish, snapshots every
//!   running campaign, leaves those jobs journaled as running for the
//!   next process to resume, and exits 0.
//! * **Fault harness** ([`fault`]) — `LINVAR_SERVE_FAULT` injects
//!   crash-before-journal, crash-after-journal, crash-mid-checkpoint,
//!   worker-panic, and stalled-worker faults, mirroring the shard
//!   supervisor's fault matrix, so every crash window is exercised by
//!   `tests/serve_recovery.rs` and ci.sh.
//!
//! See DESIGN.md, "Campaign service: job store, recovery scan &
//! overload semantics".

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod config;
pub mod fault;
pub mod http;
pub mod json;
pub mod server;
pub mod store;

pub use client::{request, ClientResponse};
pub use config::ServeConfig;
pub use fault::ServeFault;
pub use http::{Request, Response};
pub use json::{parse_json, JsonGet, JsonParseError};
pub use server::{install_signal_handlers, Server, ServerHandle};
pub use store::{JobRecord, JobState, JobStore};

/// Raw bit pattern of an `f64` as 16 lowercase hex digits — the exact
/// form the bench bins print in their deterministic `mc` lines (this
/// crate cannot depend on `linvar-bench`, which sits above it).
pub fn bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

#[cfg(test)]
mod tests {
    #[test]
    fn bits_hex_matches_bench_formatting() {
        assert_eq!(super::bits_hex(1.0), "3ff0000000000000");
        assert_eq!(super::bits_hex(-0.0), "8000000000000000");
    }
}
