//! Variational element values and global parameter sets.
//!
//! The paper writes the fluctuating MNA matrices as
//! `G(w) = G0 + dG1·w1 + dG2·w2` (eqs. 3–4). Element-wise this corresponds
//! to each resistance/capacitance carrying a nominal value plus linear
//! sensitivities in a small set of *global* parameters `w` (normalized
//! process variables such as metal width, thickness, spacing, ILD height and
//! resistivity). [`VariationalValue`] is that per-element representation and
//! [`ParamSet`] names the global parameters shared by a netlist.

use crate::error::CircuitError;

/// Registry of named global variation parameters for one netlist.
///
/// Parameters are identified by index; the MNA assembly produces one
/// sensitivity matrix per registered parameter, in registration order.
///
/// # Example
///
/// ```
/// use linvar_circuit::ParamSet;
///
/// let mut ps = ParamSet::new();
/// let w = ps.declare("width");
/// assert_eq!(ps.index_of("width"), Some(w));
/// assert_eq!(ps.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamSet {
    names: Vec<String>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Declares a parameter, returning its index. Re-declaring an existing
    /// name returns the existing index.
    pub fn declare(&mut self, name: &str) -> usize {
        if let Some(i) = self.index_of(name) {
            return i;
        }
        self.names.push(name.to_string());
        self.names.len() - 1
    }

    /// Index of a previously declared parameter.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Name of the parameter at `index`.
    pub fn name(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(|s| s.as_str())
    }

    /// Number of declared parameters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no parameters are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over parameter names in index order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }
}

/// An element value with linear dependence on global parameters:
/// `x(w) = nominal + Σ sens[i].1 · w_{sens[i].0}`.
///
/// Sensitivities are *absolute* (same unit as the value per unit of the
/// normalized parameter), which lets one element value depend on several
/// parameters with different strengths — e.g. a coupling capacitance grows
/// with metal thickness but shrinks with spacing.
///
/// # Example
///
/// ```
/// use linvar_circuit::VariationalValue;
///
/// // R = 10 Ω nominal, +50 Ω per unit of parameter 0 (the paper's
/// // Example-1 element R1: 10 Ω at p=0, 15 Ω at p=0.1).
/// let r = VariationalValue::new(10.0).with_sensitivity(0, 50.0);
/// assert_eq!(r.eval(&[0.1]), 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VariationalValue {
    /// Value at `w = 0`.
    pub nominal: f64,
    /// `(parameter index, absolute sensitivity)` pairs.
    pub sens: Vec<(usize, f64)>,
}

impl VariationalValue {
    /// Creates a constant (non-varying) value.
    pub fn new(nominal: f64) -> Self {
        VariationalValue {
            nominal,
            sens: Vec::new(),
        }
    }

    /// Adds an absolute sensitivity with respect to parameter `param`.
    ///
    /// Builder-style: consumes and returns `self`.
    pub fn with_sensitivity(mut self, param: usize, dvalue_dparam: f64) -> Self {
        self.sens.push((param, dvalue_dparam));
        self
    }

    /// Adds a *relative* sensitivity: the value changes by
    /// `rel · nominal` per unit of the parameter.
    pub fn with_relative_sensitivity(self, param: usize, rel: f64) -> Self {
        let abs = self.nominal * rel;
        self.with_sensitivity(param, abs)
    }

    /// Evaluates the value at a parameter sample `w` (indices beyond
    /// `w.len()` contribute nothing).
    pub fn eval(&self, w: &[f64]) -> f64 {
        let mut v = self.nominal;
        for &(i, s) in &self.sens {
            if let Some(&wi) = w.get(i) {
                v += s * wi;
            }
        }
        v
    }

    /// Returns the sensitivity with respect to parameter `param`
    /// (0 if the value does not depend on it).
    pub fn sensitivity(&self, param: usize) -> f64 {
        self.sens
            .iter()
            .filter(|(i, _)| *i == param)
            .map(|(_, s)| *s)
            .sum()
    }

    /// Returns `true` if the value depends on at least one parameter.
    pub fn is_variational(&self) -> bool {
        self.sens.iter().any(|(_, s)| *s != 0.0)
    }

    /// Validates that all parameter indices are within `param_count`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownParameter`] naming the first offending
    /// index.
    pub fn validate(&self, param_count: usize) -> Result<(), CircuitError> {
        for &(i, _) in &self.sens {
            if i >= param_count {
                return Err(CircuitError::UnknownParameter(format!("index {i}")));
            }
        }
        Ok(())
    }
}

impl From<f64> for VariationalValue {
    fn from(nominal: f64) -> Self {
        VariationalValue::new(nominal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_set_declare_and_lookup() {
        let mut ps = ParamSet::new();
        let a = ps.declare("w1");
        let b = ps.declare("w2");
        assert_eq!((a, b), (0, 1));
        assert_eq!(ps.declare("w1"), 0, "re-declaring returns existing index");
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.name(1), Some("w2"));
        assert!(ps.index_of("nope").is_none());
        assert_eq!(ps.iter().collect::<Vec<_>>(), vec!["w1", "w2"]);
    }

    #[test]
    fn eval_linear_combination() {
        let v = VariationalValue::new(2.0)
            .with_sensitivity(0, 10.0)
            .with_sensitivity(1, -4.0);
        assert_eq!(v.eval(&[0.0, 0.0]), 2.0);
        assert_eq!(v.eval(&[0.1, 0.0]), 3.0);
        assert_eq!(v.eval(&[0.1, 0.5]), 1.0);
        // Short sample vectors are allowed: missing parameters are nominal.
        assert_eq!(v.eval(&[0.1]), 3.0);
    }

    #[test]
    fn relative_sensitivity() {
        let v = VariationalValue::new(100.0).with_relative_sensitivity(0, 0.2);
        assert_eq!(v.eval(&[1.0]), 120.0);
        assert_eq!(v.sensitivity(0), 20.0);
    }

    #[test]
    fn repeated_parameter_sensitivities_accumulate() {
        let v = VariationalValue::new(1.0)
            .with_sensitivity(0, 1.0)
            .with_sensitivity(0, 2.0);
        assert_eq!(v.sensitivity(0), 3.0);
        assert_eq!(v.eval(&[1.0]), 4.0);
    }

    #[test]
    fn validation_catches_out_of_range() {
        let v = VariationalValue::new(1.0).with_sensitivity(3, 1.0);
        assert!(v.validate(2).is_err());
        assert!(v.validate(4).is_ok());
    }

    #[test]
    fn from_f64_is_constant() {
        let v: VariationalValue = 5.0.into();
        assert!(!v.is_variational());
        assert_eq!(v.eval(&[9.9]), 5.0);
    }
}
