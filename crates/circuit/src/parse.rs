//! A small SPICE-like deck parser for linear RC decks.
//!
//! Supported cards (case-insensitive first letter selects the element):
//!
//! ```text
//! * comment
//! R<name> <node+> <node-> <ohms>
//! C<name> <node+> <node-> <farads>
//! L<name> <node+> <node-> <henries>
//! V<name> <node+> <node-> DC <volts>
//! V<name> <node+> <node-> RAMP <v0> <v1> <t0> <tr>
//! I<name> <node+> <node-> DC <amps>
//! .port <node> [<node> ...]
//! .param <name>
//! ```
//!
//! Values accept SPICE engineering suffixes (`f p n u m k meg g`). Element
//! values may carry variational terms: `R1 a b 10 p=50` declares
//! `R = 10 + 50·p` for a previously declared `.param p`.

use crate::element::SourceWaveform;
use crate::error::CircuitError;
use crate::netlist::Netlist;
use crate::variation::VariationalValue;

/// Parses a SPICE-like deck into a [`Netlist`].
///
/// # Errors
///
/// Returns [`CircuitError::ParseError`] with the 1-based line number of the
/// first malformed card, or the underlying netlist-construction error.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), linvar_circuit::CircuitError> {
/// let deck = "\
/// * simple rc
/// .param p
/// R1 in out 10 p=50
/// C1 out 0 2p
/// .port out
/// ";
/// let nl = linvar_circuit::parse_deck(deck)?;
/// assert_eq!(nl.elements().len(), 2);
/// assert_eq!(nl.ports().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_deck(deck: &str) -> Result<Netlist, CircuitError> {
    let mut nl = Netlist::new();
    for (lineno, raw) in deck.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let head = tokens[0];
        let err = |message: String| CircuitError::ParseError {
            line: lineno,
            message,
        };
        if head.starts_with('.') {
            match head.to_ascii_lowercase().as_str() {
                ".param" => {
                    for name in &tokens[1..] {
                        nl.params.declare(name);
                    }
                }
                ".port" => {
                    for name in &tokens[1..] {
                        let node = nl.node(name);
                        nl.mark_port(node)
                            .map_err(|e| err(format!("bad port {name}: {e}")))?;
                    }
                }
                other => return Err(err(format!("unknown directive {other}"))),
            }
            continue;
        }
        let kind = head.chars().next().unwrap_or(' ').to_ascii_uppercase();
        match kind {
            'R' | 'C' | 'L' => {
                if tokens.len() < 4 {
                    return Err(err("expected: <name> <n+> <n-> <value>".into()));
                }
                let a = nl.node(tokens[1]);
                let b = nl.node(tokens[2]);
                let nominal = parse_value(tokens[3])
                    .ok_or_else(|| err(format!("bad value {}", tokens[3])))?;
                let mut value = VariationalValue::new(nominal);
                for extra in &tokens[4..] {
                    let (pname, sens) = extra
                        .split_once('=')
                        .ok_or_else(|| err(format!("bad variational term {extra}")))?;
                    let pidx = nl
                        .params
                        .index_of(pname)
                        .ok_or_else(|| err(format!("undeclared parameter {pname}")))?;
                    let s =
                        parse_value(sens).ok_or_else(|| err(format!("bad sensitivity {sens}")))?;
                    value = value.with_sensitivity(pidx, s);
                }
                let res = match kind {
                    'R' => nl.add_variational_resistor(head, a, b, value),
                    'C' => nl.add_variational_capacitor(head, a, b, value),
                    _ => nl.add_variational_inductor(head, a, b, value),
                };
                res.map_err(|e| err(e.to_string()))?;
            }
            'V' | 'I' => {
                if tokens.len() < 5 {
                    return Err(err("expected: <name> <n+> <n-> DC|RAMP <args>".into()));
                }
                let pos = nl.node(tokens[1]);
                let neg = nl.node(tokens[2]);
                let waveform = match tokens[3].to_ascii_uppercase().as_str() {
                    "DC" => SourceWaveform::Dc(
                        parse_value(tokens[4])
                            .ok_or_else(|| err(format!("bad value {}", tokens[4])))?,
                    ),
                    "RAMP" => {
                        if tokens.len() < 8 {
                            return Err(err("RAMP needs <v0> <v1> <t0> <tr>".into()));
                        }
                        let vals: Vec<f64> = tokens[4..8]
                            .iter()
                            .map(|t| parse_value(t))
                            .collect::<Option<_>>()
                            .ok_or_else(|| err("bad RAMP argument".into()))?;
                        SourceWaveform::Ramp {
                            v0: vals[0],
                            v1: vals[1],
                            t0: vals[2],
                            tr: vals[3],
                        }
                    }
                    other => return Err(err(format!("unknown source kind {other}"))),
                };
                let res = if kind == 'V' {
                    nl.add_vsource(head, pos, neg, waveform)
                } else {
                    nl.add_isource(head, pos, neg, waveform)
                };
                res.map_err(|e| err(e.to_string()))?;
            }
            other => return Err(err(format!("unknown element kind {other}"))),
        }
    }
    Ok(nl)
}

/// Parses a number with an optional SPICE engineering suffix.
///
/// Returns `None` on malformed input. `meg` is the 10⁶ suffix; a bare `m`
/// is milli, matching SPICE conventions.
pub fn parse_value(token: &str) -> Option<f64> {
    let lower = token.to_ascii_lowercase();
    let (num_str, mult) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else {
        let last = lower.chars().last()?;
        let mult = match last {
            'f' => 1e-15,
            'p' => 1e-12,
            'n' => 1e-9,
            'u' => 1e-6,
            'm' => 1e-3,
            'k' => 1e3,
            'g' => 1e9,
            _ => 1.0,
        };
        if mult != 1.0 {
            (&lower[..lower.len() - 1], mult)
        } else {
            (lower.as_str(), 1.0)
        }
    };
    num_str.parse::<f64>().ok().map(|v| v * mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn engineering_suffixes() {
        let approx = |tok: &str, expect: f64| {
            let v = parse_value(tok).unwrap_or_else(|| panic!("failed to parse {tok}"));
            assert!(
                (v - expect).abs() <= 1e-12 * expect.abs(),
                "{tok} parsed to {v}, expected {expect}"
            );
        };
        approx("2p", 2e-12);
        approx("1.5n", 1.5e-9);
        approx("3k", 3e3);
        approx("2meg", 2e6);
        approx("10", 10.0);
        approx("4u", 4e-6);
        approx("1m", 1e-3);
        approx("7f", 7e-15);
        assert_eq!(parse_value("xyz"), None);
        assert_eq!(parse_value(""), None);
    }

    #[test]
    fn parse_simple_rc_deck() {
        let deck = "\
* example
R1 a b 100
C1 b 0 2p
V1 a 0 DC 1.8
.port b
";
        let nl = parse_deck(deck).unwrap();
        assert_eq!(nl.elements().len(), 3);
        assert_eq!(nl.node_count(), 2);
        assert_eq!(nl.ports().len(), 1);
    }

    #[test]
    fn parse_variational_terms() {
        let deck = "\
.param p
R1 a 0 10 p=50
C1 a 0 2p p=10p
";
        let nl = parse_deck(deck).unwrap();
        match &nl.elements()[0] {
            Element::Resistor { value, .. } => {
                assert_eq!(value.eval(&[0.1]), 15.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &nl.elements()[1] {
            Element::Capacitor { value, .. } => {
                assert!((value.eval(&[0.1]) - 3e-12).abs() < 1e-24);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_ramp_source() {
        let deck = "V1 in 0 RAMP 0 1.8 1n 0.2n";
        let nl = parse_deck(deck).unwrap();
        match &nl.elements()[0] {
            Element::VSource { waveform, .. } => {
                assert!((waveform.eval(2e-9) - 1.8).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let deck = "R1 a b 100\nQ1 x y z";
        match parse_deck(deck) {
            Err(CircuitError::ParseError { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_parameter_is_an_error() {
        let deck = "R1 a 0 10 p=50";
        assert!(parse_deck(deck).is_err());
    }

    #[test]
    fn short_card_is_an_error() {
        assert!(parse_deck("R1 a 0").is_err());
        assert!(parse_deck("V1 a 0 DC").is_err());
        assert!(parse_deck("V1 a 0 RAMP 0 1").is_err());
        assert!(parse_deck("V1 a 0 SINE 0 1 2 3").is_err());
        assert!(parse_deck(".bogus x").is_err());
    }
}
