//! The [`Netlist`] container and node management.

use crate::element::{Element, MosInstance, MosType, SourceWaveform};
use crate::error::CircuitError;
use crate::variation::{ParamSet, VariationalValue};
use std::collections::HashMap;

/// Identifier of a circuit node.
///
/// `NodeId(0)` is ground; non-ground nodes are numbered from 1 and map to
/// MNA matrix row `id - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// The MNA matrix index of this node, or `None` for ground.
    pub fn mna_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

/// A flat circuit netlist: nodes, linear elements, sources and MOSFETs.
///
/// The same netlist type serves the SPICE baseline, the MOR front end and
/// the TETA engine; ports (for reduction) are ordinary nodes flagged with
/// [`Netlist::mark_port`].
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    elements: Vec<Element>,
    mosfets: Vec<MosInstance>,
    element_names: HashMap<String, ()>,
    ports: Vec<NodeId>,
    /// Global variation parameters referenced by element values.
    pub params: ParamSet,
}

impl Netlist {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist {
            names: vec!["0".to_string()],
            name_to_node: HashMap::from([("0".to_string(), NodeId(0))]),
            ..Default::default()
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"` and `"gnd"` refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        if let Some(&id) = self.name_to_node.get(key) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.names.push(key.to_string());
        self.name_to_node.insert(key.to_string(), id);
        id
    }

    /// Creates a fresh anonymous node.
    pub fn fresh_node(&mut self) -> NodeId {
        let name = format!("__n{}", self.names.len());
        self.node(&name)
    }

    /// The name of a node.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.names.get(id.0).map(|s| s.as_str())
    }

    /// Looks up a node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let key = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        self.name_to_node.get(key).copied()
    }

    /// Number of non-ground nodes (the MNA node count).
    pub fn node_count(&self) -> usize {
        self.names.len() - 1
    }

    /// All linear elements and sources.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// All MOSFET instances.
    pub fn mosfets(&self) -> &[MosInstance] {
        &self.mosfets
    }

    /// Nodes marked as reduction ports, in marking order.
    pub fn ports(&self) -> &[NodeId] {
        &self.ports
    }

    /// Marks a node as a port for model order reduction. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for ids not in this netlist and
    /// [`CircuitError::InvalidValue`] when marking ground.
    pub fn mark_port(&mut self, node: NodeId) -> Result<(), CircuitError> {
        self.check_node(node)?;
        if node.is_ground() {
            return Err(CircuitError::InvalidValue {
                element: "port".into(),
                value: 0.0,
                requirement: "ground cannot be a port",
            });
        }
        if !self.ports.contains(&node) {
            self.ports.push(node);
        }
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<(), CircuitError> {
        if node.0 < self.names.len() {
            Ok(())
        } else {
            Err(CircuitError::UnknownNode(node.0))
        }
    }

    fn check_name(&mut self, name: &str) -> Result<(), CircuitError> {
        if self.element_names.insert(name.to_string(), ()).is_some() {
            Err(CircuitError::DuplicateElement(name.to_string()))
        } else {
            Ok(())
        }
    }

    /// Adds a fixed-value resistor.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for a non-positive or
    /// non-finite resistance, [`CircuitError::UnknownNode`] for foreign
    /// nodes, and [`CircuitError::DuplicateElement`] for a reused name.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), CircuitError> {
        self.add_variational_resistor(name, a, b, VariationalValue::new(ohms))
    }

    /// Adds a resistor whose value varies with global parameters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_resistor`], plus
    /// [`CircuitError::UnknownParameter`] if a sensitivity references an
    /// undeclared parameter.
    pub fn add_variational_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        value: VariationalValue,
    ) -> Result<(), CircuitError> {
        if !(value.nominal.is_finite() && value.nominal > 0.0) {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                value: value.nominal,
                requirement: "resistance must be positive and finite",
            });
        }
        self.check_node(a)?;
        self.check_node(b)?;
        value.validate(self.params.len())?;
        self.check_name(name)?;
        self.elements.push(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            value,
        });
        Ok(())
    }

    /// Adds a fixed-value capacitor (grounded or coupling).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for a negative or non-finite
    /// capacitance, [`CircuitError::UnknownNode`] for foreign nodes, and
    /// [`CircuitError::DuplicateElement`] for a reused name.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<(), CircuitError> {
        self.add_variational_capacitor(name, a, b, VariationalValue::new(farads))
    }

    /// Adds a capacitor whose value varies with global parameters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_capacitor`], plus
    /// [`CircuitError::UnknownParameter`] for undeclared parameters.
    pub fn add_variational_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        value: VariationalValue,
    ) -> Result<(), CircuitError> {
        if !(value.nominal.is_finite() && value.nominal >= 0.0) {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                value: value.nominal,
                requirement: "capacitance must be non-negative and finite",
            });
        }
        self.check_node(a)?;
        self.check_node(b)?;
        value.validate(self.params.len())?;
        self.check_name(name)?;
        self.elements.push(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            value,
        });
        Ok(())
    }

    /// Adds a fixed-value inductor.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for a non-positive or
    /// non-finite inductance, [`CircuitError::UnknownNode`] for foreign
    /// nodes, and [`CircuitError::DuplicateElement`] for a reused name.
    pub fn add_inductor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
    ) -> Result<(), CircuitError> {
        self.add_variational_inductor(name, a, b, VariationalValue::new(henries))
    }

    /// Adds an inductor whose value varies with global parameters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_inductor`], plus
    /// [`CircuitError::UnknownParameter`] for undeclared parameters.
    pub fn add_variational_inductor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        value: VariationalValue,
    ) -> Result<(), CircuitError> {
        if !(value.nominal.is_finite() && value.nominal > 0.0) {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                value: value.nominal,
                requirement: "inductance must be positive and finite",
            });
        }
        self.check_node(a)?;
        self.check_node(b)?;
        value.validate(self.params.len())?;
        self.check_name(name)?;
        self.elements.push(Element::Inductor {
            name: name.to_string(),
            a,
            b,
            value,
        });
        Ok(())
    }

    /// Number of inductors (each adds one MNA branch unknown in the
    /// frequency-domain formulations).
    pub fn inductor_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Inductor { .. }))
            .count()
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] or
    /// [`CircuitError::DuplicateElement`].
    pub fn add_vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: SourceWaveform,
    ) -> Result<(), CircuitError> {
        self.check_node(pos)?;
        self.check_node(neg)?;
        self.check_name(name)?;
        self.elements.push(Element::VSource {
            name: name.to_string(),
            pos,
            neg,
            waveform,
        });
        Ok(())
    }

    /// Adds an independent current source (current flows into `pos`).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] or
    /// [`CircuitError::DuplicateElement`].
    pub fn add_isource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: SourceWaveform,
    ) -> Result<(), CircuitError> {
        self.check_node(pos)?;
        self.check_node(neg)?;
        self.check_name(name)?;
        self.elements.push(Element::ISource {
            name: name.to_string(),
            pos,
            neg,
            waveform,
        });
        Ok(())
    }

    /// Adds a MOSFET instance.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for non-positive geometry,
    /// [`CircuitError::UnknownNode`] for foreign nodes, and
    /// [`CircuitError::DuplicateElement`] for a reused name.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        bulk: NodeId,
        mos_type: MosType,
        model: &str,
        width: f64,
        length: f64,
    ) -> Result<(), CircuitError> {
        if !(width.is_finite() && width > 0.0 && length.is_finite() && length > 0.0) {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                value: width.min(length),
                requirement: "mosfet width and length must be positive",
            });
        }
        for n in [drain, gate, source, bulk] {
            self.check_node(n)?;
        }
        self.check_name(name)?;
        self.mosfets.push(MosInstance {
            name: name.to_string(),
            drain,
            gate,
            source,
            bulk,
            mos_type,
            model: model.to_string(),
            width,
            length,
        });
        Ok(())
    }

    /// Replaces the element list wholesale. The caller must keep element
    /// names consistent with the name registry (used by
    /// [`Netlist::frozen_at`], which preserves names).
    ///
    /// [`Netlist::frozen_at`]: crate::Netlist::frozen_at
    pub(crate) fn set_elements(&mut self, elements: Vec<Element>) {
        self.elements = elements;
    }

    /// Number of independent voltage sources (each adds one MNA unknown).
    pub fn vsource_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }

    /// Merges all elements, MOSFETs and nodes of `other` into `self`,
    /// prefixing `other`'s node and element names with `prefix` (ground and
    /// nodes listed in `shared` map to `self`'s nodes of the same name).
    ///
    /// This is the mechanism used to instantiate gate subcircuits along a
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates element-insertion errors (duplicate names are avoided by
    /// the prefix unless the caller reuses a prefix).
    pub fn instantiate(
        &mut self,
        other: &Netlist,
        prefix: &str,
        shared: &[&str],
    ) -> Result<(), CircuitError> {
        let mut node_map: HashMap<NodeId, NodeId> = HashMap::new();
        node_map.insert(Netlist::GROUND, Netlist::GROUND);
        for (idx, name) in other.names.iter().enumerate().skip(1) {
            let new_id = if shared.contains(&name.as_str()) {
                self.node(name)
            } else {
                self.node(&format!("{prefix}{name}"))
            };
            node_map.insert(NodeId(idx), new_id);
        }
        // Carry over parameter declarations by name.
        let mut param_map: Vec<usize> = Vec::with_capacity(other.params.len());
        for pname in other.params.iter() {
            param_map.push(self.params.declare(pname));
        }
        let remap_value = |v: &VariationalValue| -> VariationalValue {
            VariationalValue {
                nominal: v.nominal,
                sens: v.sens.iter().map(|&(i, s)| (param_map[i], s)).collect(),
            }
        };
        for e in &other.elements {
            match e {
                Element::Resistor { name, a, b, value } => self.add_variational_resistor(
                    &format!("{prefix}{name}"),
                    node_map[a],
                    node_map[b],
                    remap_value(value),
                )?,
                Element::Capacitor { name, a, b, value } => self.add_variational_capacitor(
                    &format!("{prefix}{name}"),
                    node_map[a],
                    node_map[b],
                    remap_value(value),
                )?,
                Element::Inductor { name, a, b, value } => self.add_variational_inductor(
                    &format!("{prefix}{name}"),
                    node_map[a],
                    node_map[b],
                    remap_value(value),
                )?,
                Element::VSource {
                    name,
                    pos,
                    neg,
                    waveform,
                } => self.add_vsource(
                    &format!("{prefix}{name}"),
                    node_map[pos],
                    node_map[neg],
                    waveform.clone(),
                )?,
                Element::ISource {
                    name,
                    pos,
                    neg,
                    waveform,
                } => self.add_isource(
                    &format!("{prefix}{name}"),
                    node_map[pos],
                    node_map[neg],
                    waveform.clone(),
                )?,
            }
        }
        for m in &other.mosfets {
            self.add_mosfet(
                &format!("{prefix}{}", m.name),
                node_map[&m.drain],
                node_map[&m.gate],
                node_map[&m.source],
                node_map[&m.bulk],
                m.mos_type,
                &m.model,
                m.width,
                m.length,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_node_zero() {
        let mut nl = Netlist::new();
        assert_eq!(nl.node("0"), Netlist::GROUND);
        assert_eq!(nl.node("gnd"), Netlist::GROUND);
        assert!(Netlist::GROUND.is_ground());
        assert_eq!(Netlist::GROUND.mna_index(), None);
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        assert_eq!(a, a2);
        assert_eq!(nl.node_count(), 1);
        assert_eq!(nl.node_name(a), Some("a"));
        assert_eq!(nl.find_node("a"), Some(a));
        assert_eq!(nl.find_node("b"), None);
    }

    #[test]
    fn fresh_nodes_are_distinct() {
        let mut nl = Netlist::new();
        let a = nl.fresh_node();
        let b = nl.fresh_node();
        assert_ne!(a, b);
    }

    #[test]
    fn element_validation() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        assert!(nl.add_resistor("R1", a, Netlist::GROUND, -5.0).is_err());
        assert!(nl.add_resistor("R1", a, Netlist::GROUND, f64::NAN).is_err());
        assert!(nl.add_capacitor("C1", a, Netlist::GROUND, -1e-12).is_err());
        assert!(nl.add_resistor("R1", a, Netlist::GROUND, 5.0).is_ok());
        // Duplicate name rejected.
        assert!(matches!(
            nl.add_resistor("R1", a, Netlist::GROUND, 5.0),
            Err(CircuitError::DuplicateElement(_))
        ));
        // Unknown node rejected.
        assert!(matches!(
            nl.add_resistor("R2", NodeId(99), Netlist::GROUND, 5.0),
            Err(CircuitError::UnknownNode(99))
        ));
    }

    #[test]
    fn variational_resistor_requires_declared_param() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let v = VariationalValue::new(10.0).with_sensitivity(0, 50.0);
        assert!(nl
            .add_variational_resistor("R1", a, Netlist::GROUND, v.clone())
            .is_err());
        nl.params.declare("p");
        assert!(nl
            .add_variational_resistor("R2", a, Netlist::GROUND, v)
            .is_ok());
    }

    #[test]
    fn port_marking() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.mark_port(a).unwrap();
        nl.mark_port(a).unwrap(); // idempotent
        assert_eq!(nl.ports(), &[a]);
        assert!(nl.mark_port(Netlist::GROUND).is_err());
        assert!(nl.mark_port(NodeId(42)).is_err());
    }

    #[test]
    fn mosfet_validation() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        assert!(nl
            .add_mosfet(
                "M1",
                d,
                g,
                Netlist::GROUND,
                Netlist::GROUND,
                MosType::Nmos,
                "nmos018",
                -1.0,
                0.18e-6
            )
            .is_err());
        assert!(nl
            .add_mosfet(
                "M1",
                d,
                g,
                Netlist::GROUND,
                Netlist::GROUND,
                MosType::Nmos,
                "nmos018",
                1e-6,
                0.18e-6
            )
            .is_ok());
        assert_eq!(nl.mosfets().len(), 1);
    }

    #[test]
    fn vsource_count() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_vsource("V1", a, Netlist::GROUND, SourceWaveform::Dc(1.0))
            .unwrap();
        nl.add_isource("I1", a, Netlist::GROUND, SourceWaveform::Dc(1e-3))
            .unwrap();
        assert_eq!(nl.vsource_count(), 1);
    }

    #[test]
    fn instantiate_prefixes_and_shares_nodes() {
        let mut sub = Netlist::new();
        let i = sub.node("in");
        let o = sub.node("out");
        sub.add_resistor("R", i, o, 100.0).unwrap();
        sub.add_capacitor("C", o, Netlist::GROUND, 1e-15).unwrap();

        let mut top = Netlist::new();
        let _shared_in = top.node("in");
        top.instantiate(&sub, "x1_", &["in"]).unwrap();
        // "in" is shared, "out" became "x1_out".
        assert!(top.find_node("in").is_some());
        assert!(top.find_node("x1_out").is_some());
        assert!(top.find_node("out").is_none());
        assert_eq!(top.elements().len(), 2);
        // Instantiating again with a different prefix works.
        top.instantiate(&sub, "x2_", &["in"]).unwrap();
        assert_eq!(top.elements().len(), 4);
    }

    #[test]
    fn instantiate_carries_variational_params() {
        let mut sub = Netlist::new();
        sub.params.declare("width");
        let a = sub.node("a");
        let v = VariationalValue::new(10.0).with_sensitivity(0, 1.0);
        sub.add_variational_resistor("R", a, Netlist::GROUND, v)
            .unwrap();

        let mut top = Netlist::new();
        top.params.declare("rho"); // pre-existing unrelated parameter
        top.instantiate(&sub, "u_", &[]).unwrap();
        assert_eq!(top.params.index_of("width"), Some(1));
        // The remapped sensitivity must point at index 1.
        match &top.elements()[0] {
            Element::Resistor { value, .. } => {
                assert_eq!(value.sens, vec![(1, 1.0)]);
            }
            other => panic!("unexpected element {other:?}"),
        }
    }
}
