//! Circuit element definitions.

use crate::netlist::NodeId;
use crate::variation::VariationalValue;

/// Waveform of an independent source.
///
/// The framework drives logic stages with saturated ramps and propagates
/// piecewise-linear waveforms between stages, so those two shapes plus DC
/// and pulse cover every use in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// Piecewise-linear `(time, value)` points; constant extrapolation
    /// before the first and after the last point.
    Pwl(Vec<(f64, f64)>),
    /// Saturated ramp from `v0` to `v1` starting at `t0` with rise time `tr`.
    Ramp {
        /// Initial level.
        v0: f64,
        /// Final level.
        v1: f64,
        /// Ramp start time in seconds.
        t0: f64,
        /// 0–100 % transition time in seconds (must be positive).
        tr: f64,
    },
    /// Rectangular pulse with linear edges.
    Pulse {
        /// Base level.
        v0: f64,
        /// Pulsed level.
        v1: f64,
        /// Delay before the rising edge.
        delay: f64,
        /// Rise time.
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Width at the pulsed level.
        width: f64,
    },
}

impl SourceWaveform {
    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Pwl(points) => eval_pwl(points, t),
            SourceWaveform::Ramp { v0, v1, t0, tr } => {
                if t <= *t0 {
                    *v0
                } else if t >= t0 + tr {
                    *v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / tr
                }
            }
            SourceWaveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
            } => {
                let t1 = *delay;
                let t2 = t1 + rise;
                let t3 = t2 + width;
                let t4 = t3 + fall;
                if t <= t1 || t >= t4 {
                    *v0
                } else if t < t2 {
                    v0 + (v1 - v0) * (t - t1) / rise
                } else if t <= t3 {
                    *v1
                } else {
                    v1 + (v0 - v1) * (t - t3) / fall
                }
            }
        }
    }

    /// The value at `t = 0⁻`, used as the DC initial condition.
    pub fn initial_value(&self) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Pwl(points) => points.first().map_or(0.0, |p| p.1),
            SourceWaveform::Ramp { v0, .. } => *v0,
            SourceWaveform::Pulse { v0, .. } => *v0,
        }
    }

    /// Time of the last breakpoint, after which the waveform is constant.
    pub fn settle_time(&self) -> f64 {
        match self {
            SourceWaveform::Dc(_) => 0.0,
            SourceWaveform::Pwl(points) => points.last().map_or(0.0, |p| p.0),
            SourceWaveform::Ramp { t0, tr, .. } => t0 + tr,
            SourceWaveform::Pulse {
                delay,
                rise,
                fall,
                width,
                ..
            } => delay + rise + width + fall,
        }
    }
}

fn eval_pwl(points: &[(f64, f64)], t: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    if t <= points[0].0 {
        return points[0].1;
    }
    if t >= points[points.len() - 1].0 {
        return points[points.len() - 1].1;
    }
    // Binary search for the surrounding segment.
    let mut lo = 0;
    let mut hi = points.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if points[mid].0 <= t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (t0, v0) = points[lo];
    let (t1, v1) = points[hi];
    if t1 <= t0 {
        v1
    } else {
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }
}

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// A transistor instance in a netlist.
///
/// The instance references a device *model* by name; model parameters (and
/// their process fluctuations) are resolved by the analysis engines through
/// `linvar-devices`.
#[derive(Debug, Clone, PartialEq)]
pub struct MosInstance {
    /// Instance name (unique within its netlist).
    pub name: String,
    /// Drain node.
    pub drain: NodeId,
    /// Gate node.
    pub gate: NodeId,
    /// Source node.
    pub source: NodeId,
    /// Bulk node.
    pub bulk: NodeId,
    /// Polarity.
    pub mos_type: MosType,
    /// Model name resolved against the device library.
    pub model: String,
    /// Drawn channel width in meters.
    pub width: f64,
    /// Drawn channel length in meters.
    pub length: f64,
}

/// A linear element or source in a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Two-terminal resistor with (possibly variational) resistance in ohms.
    Resistor {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance value.
        value: VariationalValue,
    },
    /// Two-terminal capacitor (grounded or coupling) in farads.
    Capacitor {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance value.
        value: VariationalValue,
    },
    /// Two-terminal inductor in henries (wire self-inductance for RLC
    /// interconnect models).
    Inductor {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance value.
        value: VariationalValue,
    },
    /// Independent voltage source from `neg` to `pos`.
    VSource {
        /// Element name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Drive waveform.
        waveform: SourceWaveform,
    },
    /// Independent current source injecting into `pos` (out of `neg`).
    ISource {
        /// Element name.
        name: String,
        /// Terminal current flows into.
        pos: NodeId,
        /// Terminal current flows out of.
        neg: NodeId,
        /// Drive waveform.
        waveform: SourceWaveform,
    },
}

impl Element {
    /// The element's name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Inductor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. } => name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_waveform() {
        let w = SourceWaveform::Dc(1.8);
        assert_eq!(w.eval(0.0), 1.8);
        assert_eq!(w.eval(1.0), 1.8);
        assert_eq!(w.initial_value(), 1.8);
        assert_eq!(w.settle_time(), 0.0);
    }

    #[test]
    fn ramp_waveform() {
        let w = SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.0,
            t0: 1e-9,
            tr: 2e-9,
        };
        assert_eq!(w.eval(0.0), 0.0);
        assert!((w.eval(2e-9) - 0.5).abs() < 1e-12);
        assert_eq!(w.eval(5e-9), 1.0);
        assert!((w.settle_time() - 3e-9).abs() < 1e-18);
    }

    #[test]
    fn pwl_waveform_interpolation_and_extrapolation() {
        let w = SourceWaveform::Pwl(vec![(1.0, 0.0), (2.0, 2.0), (4.0, 0.0)]);
        assert_eq!(w.eval(0.5), 0.0, "constant before first point");
        assert!((w.eval(1.5) - 1.0).abs() < 1e-12);
        assert!((w.eval(3.0) - 1.0).abs() < 1e-12);
        assert_eq!(w.eval(9.0), 0.0, "constant after last point");
        assert_eq!(w.initial_value(), 0.0);
    }

    #[test]
    fn pwl_empty_is_zero() {
        let w = SourceWaveform::Pwl(vec![]);
        assert_eq!(w.eval(1.0), 0.0);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = SourceWaveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
        };
        assert_eq!(w.eval(0.5), 0.0);
        assert!((w.eval(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.eval(3.0), 1.0);
        assert!((w.eval(4.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.eval(6.0), 0.0);
        assert_eq!(w.settle_time(), 5.0);
    }

    #[test]
    fn element_names() {
        let e = Element::Resistor {
            name: "R1".into(),
            a: NodeId(1),
            b: NodeId(0),
            value: VariationalValue::new(1.0),
        };
        assert_eq!(e.name(), "R1");
    }
}
