//! Circuit representation and MNA assembly for the `linvar` workspace.
//!
//! This crate owns the netlist data model shared by every analysis engine:
//!
//! * [`Netlist`] — nodes, linear elements (resistors, grounded and coupling
//!   capacitors), independent sources, and MOSFET instances (whose device
//!   *models* live in `linvar-devices`);
//! * [`VariationalValue`] — element values expressed as
//!   `x(w) = x0 · (1 + Σ si·wi)` in a set of named global parameters, the
//!   representation behind the paper's variational matrices
//!   `G(w) = G0 + Σ dGi·wi` (eqs. 3–4);
//! * [`MnaSystem`] / [`VariationalMna`] — assembled modified-nodal-analysis
//!   matrices, nominal and variational;
//! * a small SPICE-like deck parser for RC decks ([`parse_deck`]).
//!
//! # Example
//!
//! ```
//! use linvar_circuit::Netlist;
//!
//! # fn main() -> Result<(), linvar_circuit::CircuitError> {
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! let b = nl.node("b");
//! nl.add_resistor("R1", a, b, 100.0)?;
//! nl.add_capacitor("C1", b, Netlist::GROUND, 1e-12)?;
//! let mna = nl.assemble_mna()?;
//! assert_eq!(mna.g.rows(), 2);
//! # Ok(())
//! # }
//! ```

// User-reachable library paths must surface typed errors, never panic.
// Tests are exempt: unwrap/expect on known-good fixtures is idiomatic there.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod element;
pub mod error;
pub mod mna;
pub mod netlist;
pub mod parse;
pub mod variation;

pub use element::{Element, MosInstance, MosType, SourceWaveform};
pub use error::CircuitError;
pub use mna::{MnaSystem, VariationalMna};
pub use netlist::{Netlist, NodeId};
pub use parse::parse_deck;
pub use variation::{ParamSet, VariationalValue};
