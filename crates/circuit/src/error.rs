//! Error type for netlist construction and MNA assembly.

use std::fmt;

/// Error produced while building a netlist or assembling its MNA system.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// An element value is non-positive or non-finite where that is invalid.
    InvalidValue {
        /// Element name as given by the caller.
        element: String,
        /// Offending value.
        value: f64,
        /// What was expected of the value.
        requirement: &'static str,
    },
    /// A node id does not belong to this netlist.
    UnknownNode(usize),
    /// A named variation parameter was not declared in the parameter set.
    UnknownParameter(String),
    /// Two elements share a name.
    DuplicateElement(String),
    /// Deck parsing failed at a given line.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The netlist cannot be assembled (e.g. it has no non-ground nodes).
    EmptyNetlist,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidValue {
                element,
                value,
                requirement,
            } => write!(
                f,
                "element {element} has invalid value {value}: {requirement}"
            ),
            CircuitError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            CircuitError::UnknownParameter(p) => write!(f, "unknown variation parameter {p}"),
            CircuitError::DuplicateElement(n) => write!(f, "duplicate element name {n}"),
            CircuitError::ParseError { line, message } => {
                write!(f, "deck parse error at line {line}: {message}")
            }
            CircuitError::EmptyNetlist => write!(f, "netlist has no non-ground nodes"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_context() {
        let e = CircuitError::InvalidValue {
            element: "R1".into(),
            value: -1.0,
            requirement: "resistance must be positive",
        };
        assert!(e.to_string().contains("R1"));
        assert!(e.to_string().contains("positive"));

        let e = CircuitError::ParseError {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CircuitError>();
    }
}
