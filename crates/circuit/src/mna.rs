//! Modified nodal analysis (MNA) assembly.
//!
//! Two products are assembled from a [`Netlist`]:
//!
//! * [`MnaSystem`] — the nominal `(G + sC)` system including voltage-source
//!   branch equations, used by the linear analyses and as the skeleton of
//!   the SPICE baseline;
//! * [`VariationalMna`] — node-space admittance/susceptance matrices in the
//!   paper's variational form `G(w) = G0 + Σ dGi·wi`, `C(w) = C0 + Σ dCi·wi`
//!   (eqs. 3–4), restricted to the linear R/C portion of the netlist. This
//!   is the input to variational reduced-order modeling.

use crate::element::Element;
use crate::error::CircuitError;
use crate::netlist::Netlist;
use linvar_numeric::{Matrix, NumericError};

/// Assembled nominal MNA system.
///
/// Unknown ordering: the `node_count` node voltages first, then one branch
/// current per voltage source (in element order).
#[derive(Debug, Clone)]
pub struct MnaSystem {
    /// Conductance/incidence matrix (`n + m` square).
    pub g: Matrix,
    /// Susceptance (capacitance) matrix (`n + m` square).
    pub c: Matrix,
    /// Number of node unknowns.
    pub node_count: usize,
    /// Names of the voltage sources, in branch-equation order.
    pub vsource_names: Vec<String>,
}

/// Node-space variational admittance/susceptance matrices.
#[derive(Debug, Clone)]
pub struct VariationalMna {
    /// Nominal admittance matrix `G0` (`n` square, node space).
    pub g0: Matrix,
    /// Nominal susceptance matrix `C0`.
    pub c0: Matrix,
    /// Admittance sensitivities `dGi`, one per declared parameter.
    pub dg: Vec<Matrix>,
    /// Susceptance sensitivities `dCi`, one per declared parameter.
    pub dc: Vec<Matrix>,
    /// Parameter names, index-aligned with `dg`/`dc`.
    pub param_names: Vec<String>,
    /// MNA indices of the ports, in port-marking order.
    pub port_indices: Vec<usize>,
}

impl VariationalMna {
    /// Evaluates `(G(w), C(w))` at the parameter sample `w`.
    ///
    /// Entries of `w` beyond the declared parameters are ignored; missing
    /// entries are treated as 0 (nominal).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if a sensitivity matrix
    /// disagrees in shape with the nominal matrices (possible only if the
    /// struct fields were mutated inconsistently after assembly).
    pub fn eval(&self, w: &[f64]) -> Result<(Matrix, Matrix), NumericError> {
        let mut g = self.g0.clone();
        let mut c = self.c0.clone();
        for (i, (dg, dc)) in self.dg.iter().zip(&self.dc).enumerate() {
            if let Some(&wi) = w.get(i) {
                if wi != 0.0 {
                    g.axpy(wi, dg)?;
                    c.axpy(wi, dc)?;
                }
            }
        }
        Ok((g, c))
    }

    /// Number of variation parameters.
    pub fn param_count(&self) -> usize {
        self.dg.len()
    }

    /// Number of node unknowns.
    pub fn order(&self) -> usize {
        self.g0.rows()
    }

    /// Port incidence matrix `B` (`n x Np`), with a 1 at each port row.
    pub fn port_incidence(&self) -> Matrix {
        let mut b = Matrix::zeros(self.order(), self.port_indices.len());
        for (j, &idx) in self.port_indices.iter().enumerate() {
            b[(idx, j)] = 1.0;
        }
        b
    }

    /// Adds conductance `g` from MNA index `idx` to ground on all matrices
    /// (the nominal *and* every sensitivity stays consistent because a
    /// constant conductance has no parameter dependence).
    ///
    /// This is the `G_SC` folding step of the framework (paper eq. 12): the
    /// successive-chords output conductances of the nonlinear drivers are
    /// added to the port diagonals *before* reduction.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if `idx` is out of range.
    pub fn add_grounded_conductance(&mut self, idx: usize, g: f64) -> Result<(), CircuitError> {
        if idx >= self.order() {
            return Err(CircuitError::UnknownNode(idx + 1));
        }
        self.g0[(idx, idx)] += g;
        Ok(())
    }
}

fn stamp_conductance(m: &mut Matrix, a: Option<usize>, b: Option<usize>, g: f64) {
    if let Some(i) = a {
        m[(i, i)] += g;
    }
    if let Some(j) = b {
        m[(j, j)] += g;
    }
    if let (Some(i), Some(j)) = (a, b) {
        m[(i, j)] -= g;
        m[(j, i)] -= g;
    }
}

impl Netlist {
    /// Assembles the nominal MNA system (node equations + voltage-source
    /// branch equations). MOSFETs are *not* stamped — nonlinear devices are
    /// handled by the analysis engines.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyNetlist`] if there are no non-ground
    /// nodes.
    pub fn assemble_mna(&self) -> Result<MnaSystem, CircuitError> {
        let n = self.node_count();
        if n == 0 {
            return Err(CircuitError::EmptyNetlist);
        }
        let m = self.vsource_count();
        let n_ind = self.inductor_count();
        let dim = n + m + n_ind;
        let mut g = Matrix::zeros(dim, dim);
        let mut c = Matrix::zeros(dim, dim);
        let mut vsource_names = Vec::with_capacity(m);
        let mut branch = n;
        let mut ind_branch = n + m;
        for e in self.elements() {
            match e {
                Element::Resistor { a, b, value, .. } => {
                    stamp_conductance(&mut g, a.mna_index(), b.mna_index(), 1.0 / value.nominal);
                }
                Element::Capacitor { a, b, value, .. } => {
                    stamp_conductance(&mut c, a.mna_index(), b.mna_index(), value.nominal);
                }
                Element::VSource { name, pos, neg, .. } => {
                    if let Some(i) = pos.mna_index() {
                        g[(i, branch)] += 1.0;
                        g[(branch, i)] += 1.0;
                    }
                    if let Some(j) = neg.mna_index() {
                        g[(j, branch)] -= 1.0;
                        g[(branch, j)] -= 1.0;
                    }
                    vsource_names.push(name.clone());
                    branch += 1;
                }
                Element::Inductor { a, b, value, .. } => {
                    // Branch current unknown with the PRIMA-friendly sign
                    // convention: KCL gets +i, branch row is
                    // -(v_a - v_b) + sL·i = 0.
                    if let Some(i) = a.mna_index() {
                        g[(i, ind_branch)] += 1.0;
                        g[(ind_branch, i)] -= 1.0;
                    }
                    if let Some(j) = b.mna_index() {
                        g[(j, ind_branch)] -= 1.0;
                        g[(ind_branch, j)] += 1.0;
                    }
                    c[(ind_branch, ind_branch)] += value.nominal;
                    ind_branch += 1;
                }
                Element::ISource { .. } => {
                    // Sources enter the RHS, not the matrices.
                }
            }
        }
        Ok(MnaSystem {
            g,
            c,
            node_count: n,
            vsource_names,
        })
    }

    /// Assembles the node-space variational matrices of the linear R/C
    /// portion (sources and MOSFETs are excluded — the linear load of a
    /// logic stage is driven at its ports).
    ///
    /// The element values' absolute sensitivities are converted to matrix
    /// sensitivities by stamping: for a resistor,
    /// `d(1/R)/dw = -(1/R0²)·dR/dw` (first-order), for a capacitor the
    /// stamp is linear in the value so `dC/dw` stamps directly.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyNetlist`] if there are no non-ground
    /// nodes.
    pub fn assemble_variational(&self) -> Result<VariationalMna, CircuitError> {
        let n = self.node_count();
        if n == 0 {
            return Err(CircuitError::EmptyNetlist);
        }
        let np = self.params.len();
        let n_ind = self.inductor_count();
        let dim = n + n_ind;
        let mut g0 = Matrix::zeros(dim, dim);
        let mut c0 = Matrix::zeros(dim, dim);
        let mut dg = vec![Matrix::zeros(dim, dim); np];
        let mut dc = vec![Matrix::zeros(dim, dim); np];
        let mut ind_branch = n;
        for e in self.elements() {
            match e {
                Element::Resistor { a, b, value, .. } => {
                    let g_nom = 1.0 / value.nominal;
                    stamp_conductance(&mut g0, a.mna_index(), b.mna_index(), g_nom);
                    for &(p, s) in &value.sens {
                        // dG/dw = -dR/dw / R0^2
                        let dgdw = -s / (value.nominal * value.nominal);
                        stamp_conductance(&mut dg[p], a.mna_index(), b.mna_index(), dgdw);
                    }
                }
                Element::Capacitor { a, b, value, .. } => {
                    stamp_conductance(&mut c0, a.mna_index(), b.mna_index(), value.nominal);
                    for &(p, s) in &value.sens {
                        stamp_conductance(&mut dc[p], a.mna_index(), b.mna_index(), s);
                    }
                }
                Element::Inductor { a, b, value, .. } => {
                    if let Some(i) = a.mna_index() {
                        g0[(i, ind_branch)] += 1.0;
                        g0[(ind_branch, i)] -= 1.0;
                    }
                    if let Some(j) = b.mna_index() {
                        g0[(j, ind_branch)] -= 1.0;
                        g0[(ind_branch, j)] += 1.0;
                    }
                    c0[(ind_branch, ind_branch)] += value.nominal;
                    for &(p, sns) in &value.sens {
                        dc[p][(ind_branch, ind_branch)] += sns;
                    }
                    ind_branch += 1;
                }
                Element::VSource { .. } | Element::ISource { .. } => {}
            }
        }
        let port_indices = self.ports().iter().filter_map(|p| p.mna_index()).collect();
        Ok(VariationalMna {
            g0,
            c0,
            dg,
            dc,
            param_names: self.params.iter().map(str::to_string).collect(),
            port_indices,
        })
    }

    /// Evaluates the netlist at a parameter sample, returning a plain
    /// netlist whose element values are frozen at `x(w)`.
    ///
    /// Used by the "exact" reference flow: simulate the fully re-evaluated
    /// circuit instead of the variational macromodel.
    pub fn frozen_at(&self, w: &[f64]) -> Netlist {
        let mut out = self.clone();
        out.params = self.params.clone();
        let elements = out
            .elements()
            .iter()
            .map(|e| match e {
                Element::Resistor { name, a, b, value } => Element::Resistor {
                    name: name.clone(),
                    a: *a,
                    b: *b,
                    value: crate::variation::VariationalValue::new(value.eval(w)),
                },
                Element::Capacitor { name, a, b, value } => Element::Capacitor {
                    name: name.clone(),
                    a: *a,
                    b: *b,
                    value: crate::variation::VariationalValue::new(value.eval(w).max(0.0)),
                },
                Element::Inductor { name, a, b, value } => Element::Inductor {
                    name: name.clone(),
                    a: *a,
                    b: *b,
                    value: crate::variation::VariationalValue::new(value.eval(w)),
                },
                other => other.clone(),
            })
            .collect::<Vec<_>>();
        out.set_elements(elements);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::SourceWaveform;
    use crate::variation::VariationalValue;
    use linvar_numeric::LuFactor;

    fn divider() -> Netlist {
        // V1 (1V) -> R1 (1k) -> mid -> R2 (1k) -> gnd
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let mid = nl.node("mid");
        nl.add_vsource("V1", top, Netlist::GROUND, SourceWaveform::Dc(1.0))
            .unwrap();
        nl.add_resistor("R1", top, mid, 1000.0).unwrap();
        nl.add_resistor("R2", mid, Netlist::GROUND, 1000.0).unwrap();
        nl
    }

    #[test]
    fn resistive_divider_dc_solution() {
        let nl = divider();
        let mna = nl.assemble_mna().unwrap();
        assert_eq!(mna.g.rows(), 3); // 2 nodes + 1 vsource branch
                                     // Solve G x = b with b enforcing V1 = 1.
        let mut b = vec![0.0; 3];
        b[2] = 1.0;
        let x = LuFactor::new(&mna.g).unwrap().solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12, "top node at 1 V");
        assert!((x[1] - 0.5).abs() < 1e-12, "mid node at 0.5 V");
        // Branch current = -(1 V / 2 kΩ) by MNA sign convention.
        assert!((x[2] + 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn capacitor_stamps_into_c() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_capacitor("C1", a, b, 2e-12).unwrap();
        nl.add_capacitor("C2", a, Netlist::GROUND, 1e-12).unwrap();
        let mna = nl.assemble_mna().unwrap();
        assert!((mna.c[(0, 0)] - 3e-12).abs() < 1e-24);
        assert!((mna.c[(0, 1)] + 2e-12).abs() < 1e-24);
        assert!((mna.c[(1, 1)] - 2e-12).abs() < 1e-24);
        assert!(mna.c.is_symmetric(1e-30));
    }

    #[test]
    fn empty_netlist_rejected() {
        let nl = Netlist::new();
        assert!(matches!(nl.assemble_mna(), Err(CircuitError::EmptyNetlist)));
        assert!(matches!(
            nl.assemble_variational(),
            Err(CircuitError::EmptyNetlist)
        ));
    }

    #[test]
    fn variational_matrices_match_frozen_netlist() {
        // R(w) = 10 + 50 w; at w = 0.1 the conductance matrix of the
        // first-order variational form must be close to (but not exactly)
        // the exact re-evaluated one; the capacitance form is exact because
        // C stamps linearly.
        let mut nl = Netlist::new();
        let p = nl.params.declare("p");
        let a = nl.node("a");
        nl.add_variational_resistor(
            "R1",
            a,
            Netlist::GROUND,
            VariationalValue::new(10.0).with_sensitivity(p, 50.0),
        )
        .unwrap();
        nl.add_variational_capacitor(
            "C1",
            a,
            Netlist::GROUND,
            VariationalValue::new(2e-12).with_sensitivity(p, 1e-11),
        )
        .unwrap();
        let var = nl.assemble_variational().unwrap();
        assert_eq!(var.param_count(), 1);
        let (g, c) = var.eval(&[0.1]).unwrap();
        // Exact: 1/15 S; first-order: 1/10 - 50/100*0.1 = 0.05 S.
        assert!((g[(0, 0)] - 0.05).abs() < 1e-12);
        assert!(
            (1.0 / 15.0 - g[(0, 0)]).abs() < 0.02,
            "first-order is close"
        );
        // C exact: 2p + 0.1*10p = 3 pF.
        assert!((c[(0, 0)] - 3e-12).abs() < 1e-24);

        let frozen = nl.frozen_at(&[0.1]);
        let exact = frozen.assemble_variational().unwrap();
        assert!((exact.g0[(0, 0)] - 1.0 / 15.0).abs() < 1e-12);
        assert!((exact.c0[(0, 0)] - 3e-12).abs() < 1e-24);
    }

    #[test]
    fn eval_at_nominal_returns_nominal() {
        let mut nl = Netlist::new();
        nl.params.declare("p");
        let a = nl.node("a");
        nl.add_variational_resistor(
            "R1",
            a,
            Netlist::GROUND,
            VariationalValue::new(100.0).with_sensitivity(0, 10.0),
        )
        .unwrap();
        let var = nl.assemble_variational().unwrap();
        let (g, _) = var.eval(&[0.0]).unwrap();
        assert_eq!(g, var.g0);
        let (g, _) = var.eval(&[]).unwrap();
        assert_eq!(g, var.g0);
    }

    #[test]
    fn port_incidence_matrix() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_resistor("R", a, b, 1.0).unwrap();
        nl.mark_port(b).unwrap();
        nl.mark_port(a).unwrap();
        let var = nl.assemble_variational().unwrap();
        let binc = var.port_incidence();
        assert_eq!(binc.rows(), 2);
        assert_eq!(binc.cols(), 2);
        // First marked port is b -> MNA index 1.
        assert_eq!(binc[(1, 0)], 1.0);
        assert_eq!(binc[(0, 1)], 1.0);
    }

    #[test]
    fn gsc_folding_adds_to_diagonal() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_resistor("R", a, Netlist::GROUND, 2.0).unwrap();
        let mut var = nl.assemble_variational().unwrap();
        var.add_grounded_conductance(0, 0.5).unwrap();
        assert!((var.g0[(0, 0)] - 1.0).abs() < 1e-15);
        assert!(var.add_grounded_conductance(7, 1.0).is_err());
    }
}
