//! `linvar` — a linear-centric simulation framework for parametric
//! fluctuations.
//!
//! Reproduction of Acar, Pileggi, Nassif, *"A Linear-Centric Simulation
//! Framework for Parametric Fluctuations"*, DATE 2002. This umbrella crate
//! re-exports the workspace members; see `README.md` for the architecture
//! and `DESIGN.md` for the experiment index.
//!
//! # Quickstart
//!
//! ```no_run
//! use linvar::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 3-stage critical path with 10 linear elements between stages.
//! let spec = PathSpec {
//!     cells: vec!["inv".into(), "nand2".into(), "nor2".into()],
//!     linear_elements_between_stages: 10,
//!     input_slew: 50e-12,
//! };
//! let model = PathModel::build(&spec, &tech_018(), &WireTech::m018())?;
//!
//! // Monte-Carlo path-delay distribution under DL/VT fluctuations.
//! let sources = VariationSources::example3(0.33, 0.33);
//! let mut rng = rng_from_seed(2002);
//! let mc = model.monte_carlo(&sources, 100, &mut rng)?;
//! println!("delay = {:.1} ± {:.1} ps",
//!          mc.summary.mean * 1e12, mc.summary.std * 1e12);
//!
//! // Gradient Analysis of the same path.
//! let ga = model.gradient_analysis(&sources)?;
//! println!("GA     = {:.1} ± {:.1} ps",
//!          ga.nominal_delay * 1e12, ga.std * 1e12);
//! # Ok(())
//! # }
//! ```

pub use linvar_circuit as circuit;
pub use linvar_core as core;
pub use linvar_devices as devices;
pub use linvar_interconnect as interconnect;
pub use linvar_iscas as iscas;
pub use linvar_metrics as metrics;
pub use linvar_mor as mor;
pub use linvar_numeric as numeric;
pub use linvar_serve as serve;
pub use linvar_spice as spice;
pub use linvar_stats as stats;
pub use linvar_teta as teta;

/// Convenient re-exports for application code.
pub mod prelude {
    pub use linvar_circuit::{Netlist, SourceWaveform, VariationalValue};
    pub use linvar_core::path::{
        GaPathResult, McPathResult, PathModel, PathSample, PathSpec, PcCampaignResult,
        PcPathResult, VariationSources,
    };
    pub use linvar_core::{CoreError, DegradationReport, EngineRung, McRecoveryResult};
    pub use linvar_devices::{tech_018, tech_06, CellLibrary, DeviceVariation, Technology};
    pub use linvar_interconnect::{CoupledLineSpec, WireParam, WireTech};
    pub use linvar_mor::{
        extract_pole_residue, pact_reduce, prima_reduce, stabilize, MorDegradation,
        ReductionMethod, VariationalRom,
    };
    pub use linvar_spice::{DcStrategy, RecoveryLog, Transient, TransientOptions};
    pub use linvar_stats::{
        rng_from_seed, GridKind, HealthSummary, Histogram, RecoveryPolicy, SampleHealth,
        SampleSource, SampleStatus, SpectralConfig, SpectralPlan, Summary,
    };
    pub use linvar_teta::{StageModel, StageRecovery, StageSolver, Waveform};
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_subsystems_are_reachable() {
        // Touch one symbol per re-exported crate.
        let _ = crate::numeric::Matrix::identity(1);
        let _ = crate::circuit::Netlist::new();
        let _ = crate::devices::tech_018();
        let _ = crate::interconnect::WireTech::m018();
        let _ = crate::stats::Summary::of(&[1.0]);
        let _ = crate::iscas::benchmark_names();
    }
}
