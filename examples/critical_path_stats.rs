//! The paper's Example 3: critical-path delay statistics on ISCAS-89.
//!
//! Extracts the longest latch-to-latch path of `s27` (the real benchmark)
//! with the unit-delay timing analyzer, decomposes it into primitive
//! stages, and evaluates the delay distribution with both statistical
//! methods — the per-circuit content of the paper's Table 5 and Figure 7.
//!
//! Run with `cargo run --release --example critical_path_stats`.

use linvar::iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmark("s27").expect("s27 is embedded");
    let report = longest_path(&bench.netlist).map_err(CoreError::BadSpec)?;
    println!(
        "s27: critical path {:?} (sink {})",
        report.critical_path, report.critical_sink
    );
    let stages = decompose_to_primitives(&bench.netlist, &report).map_err(CoreError::BadSpec)?;
    let cells: Vec<String> = stages.iter().map(|s| s.cell.clone()).collect();
    println!("primitive stages: {cells:?}");

    let spec = PathSpec {
        cells,
        linear_elements_between_stages: 10,
        input_slew: 60e-12,
    };
    let model = PathModel::build(&spec, &tech_018(), &WireTech::m018())?;

    // Table-5 configuration: std(DL) = std(VT) = 0.33.
    let sources = VariationSources::example3(0.33, 0.33);
    let mut rng = rng_from_seed(27);
    let mc = model.monte_carlo(&sources, 100, &mut rng)?;
    let ga = model.gradient_analysis(&sources)?;

    println!("\nmethod |  mean (ps) |  std (ps)");
    println!(
        "GA     | {:>10.2} | {:>9.2}",
        ga.nominal_delay * 1e12,
        ga.std * 1e12
    );
    println!(
        "MC     | {:>10.2} | {:>9.2}   ({} samples, {} failures)",
        mc.summary.mean * 1e12,
        mc.summary.std * 1e12,
        mc.summary.n,
        mc.failures
    );

    // Figure-7 style histogram.
    let hist = Histogram::auto(&mc.delays, 12)?;
    print!(
        "{}",
        hist.render("\ns27 longest-path delay (MC)", 1e12, "ps")
    );
    Ok(())
}
