//! The paper's Example 1: instability of variational reduced-order models
//! and the framework's fix.
//!
//! Builds the Table-2 coupled RC line, reduces the one-port load (port 2
//! shunted with 100 Ω) with fourth-order variational PACT, and shows:
//!
//! 1. unstable poles of the raw first-order macromodel over the spatial
//!    parameter sweep (paper Table 3);
//! 2. the SPICE baseline diverging on an unstable raw macromodel;
//! 3. the framework (chords folded, stability filter, TETA) producing a
//!    waveform that tracks the exact extreme-case circuit (paper Figure 3).
//!
//! Run with `cargo run --release --example variational_rc`.

use linvar::circuit::Netlist;
use linvar::interconnect::example1_load;
use linvar::mor::StabilityReport;
use linvar::prelude::*;
use linvar::spice::OnePortPoleResidue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (nl, port) = example1_load()?;
    let var = nl.assemble_variational()?;
    println!(
        "Example-1 load: {} nodes, {} elements, spatial parameter p",
        var.order(),
        nl.elements().len()
    );

    // ---- Table 3: raw variational PACT (order 4 = 1 port + 3 modes) ----
    let raw =
        VariationalRom::characterize(&var, ReductionMethod::Pact { internal_modes: 3 }, 0.02)?;
    println!("\np      unstable poles of the raw variational macromodel");
    let mut p_unstable: Option<(f64, f64)> = None; // (p, worst Re)
    for &p in &[0.0, 0.02, 0.05, 0.06, 0.08, 0.09, 0.1] {
        let pr = extract_pole_residue(&raw.evaluate(&[p])?)?;
        let unstable = pr.unstable_poles();
        if let Some(worst) = unstable
            .iter()
            .map(|z| z.re)
            .fold(None, |m: Option<f64>, x| Some(m.map_or(x, |m| m.max(x))))
        {
            if p > 0.0 && p_unstable.is_none_or(|(_, w)| worst > w) {
                p_unstable = Some((p, worst));
            }
        }
        let desc = if unstable.is_empty() {
            "stable".to_string()
        } else {
            unstable
                .iter()
                .map(|z| format!("{:+.3e}", z.re))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{p:<6} {desc}");
    }

    // ---- SPICE on a raw (unstable) macromodel: expect divergence -------
    if let Some((p, _)) = p_unstable {
        let pr = extract_pole_residue(&raw.evaluate(&[p])?)?;
        let mut drive = Netlist::new();
        let inp = drive.node("in");
        let out = drive.node("out");
        drive.add_vsource(
            "V1",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 5.0,
                t0: 1e-9,
                tr: 2e-9,
            },
        )?;
        drive.add_resistor("Rdrv", inp, out, 270.0)?;
        let load = OnePortPoleResidue::from_model(&pr, out.mna_index().unwrap())?;
        let mut opts = TransientOptions::new(50e-9, 20e-12);
        opts.probes.push("out".into());
        match Transient::new(&drive, &opts)?
            .with_poleres_load(load)?
            .run()
        {
            Err(e) => {
                println!("\nSPICE on the raw macromodel at p={p}: FAILED as expected\n  ({e})")
            }
            Ok(_) => {
                println!("\nSPICE on the raw macromodel at p={p}: converged (mild instability)")
            }
        }
    } else {
        println!("\n(no unstable sample found in the sweep — numerics differ from the paper)");
    }

    // ---- Figure 3: framework waveform vs exact circuit at p = 0.1 ------
    // Effective load: fold the 0.6 µm inverter chord conductance first.
    let tech = tech_06();
    // The framework characterizes the effective load with variational
    // PRIMA: Krylov bases vary smoothly with the parameters, unlike the
    // PACT eigenvectors of this (symmetric, hence mode-degenerate) load.
    let stage = StageModel::build(
        &nl,
        &[port],
        &tech,
        ReductionMethod::Prima { order: 4 },
        0.02,
    )?;
    let p_ext = 0.1;
    let input = Waveform::ramp(tech.library.vdd, 0.0, 1e-9, 2e-9);
    let res = stage.evaluate(
        &[p_ext],
        DeviceVariation::nominal(),
        std::slice::from_ref(&input),
        10e-12,
        40e-9,
    )?;
    report_stability(&res.stability);
    let v_macro = &res.waveforms[0];

    // Exact reference: SPICE on the frozen full circuit with the same
    // inverter, at p = 0 (nominal) and p = 0.1 (extreme).
    let v_nom = spice_exact(&nl, port, &tech, 0.0)?;
    let v_ext = spice_exact(&nl, port, &tech, p_ext)?;
    println!("\nFigure-3 comparison at the driven port (driver output):");
    println!("  t (ns) | nominal p=0 (V) | extreme p=0.1 (V) | macromodel p=0.1 (V)");
    for k in 0..=10 {
        let t = 4e-9 * k as f64;
        println!(
            "  {:>6.1} | {:>15.3} | {:>17.3} | {:>20.3}",
            t * 1e9,
            v_nom.eval(t),
            v_ext.eval(t),
            v_macro.eval(t)
        );
    }
    let err: f64 = (0..200)
        .map(|k| {
            let t = 40e-9 * k as f64 / 200.0;
            (v_ext.eval(t) - v_macro.eval(t)).abs()
        })
        .fold(0.0, f64::max);
    println!(
        "\nmax |extreme - macromodel| = {:.3} V (VDD = {} V)",
        err, tech.library.vdd
    );
    Ok(())
}

fn report_stability(rep: &StabilityReport) {
    if rep.was_stable() {
        println!("\nframework: variational macromodel stable at this sample");
    } else {
        println!(
            "\nframework: removed {} unstable pole(s), max |beta - 1| = {:.2e}",
            rep.removed_poles.len(),
            rep.max_beta_deviation
        );
    }
}

/// SPICE reference: the exact (frozen) Example-1 circuit driven by the
/// 0.6 µm inverter, probed at the driver output.
fn spice_exact(
    nl: &Netlist,
    port: linvar::circuit::NodeId,
    tech: &Technology,
    p: f64,
) -> Result<Waveform, Box<dyn std::error::Error>> {
    let frozen = nl.frozen_at(&[p]);
    let mut sim = Netlist::new();
    let vdd = sim.node("vdd");
    let inp = sim.node("in");
    sim.instantiate(&frozen, "", &[])?;
    let port_name = frozen.node_name(port).expect("port exists").to_string();
    let out = sim.find_node(&port_name).expect("instantiated");
    sim.add_vsource(
        "Vdd",
        vdd,
        Netlist::GROUND,
        SourceWaveform::Dc(tech.library.vdd),
    )?;
    sim.add_vsource(
        "Vin",
        inp,
        Netlist::GROUND,
        SourceWaveform::Ramp {
            v0: tech.library.vdd,
            v1: 0.0,
            t0: 1e-9,
            tr: 2e-9,
        },
    )?;
    sim.add_mosfet(
        "MP",
        out,
        inp,
        vdd,
        vdd,
        linvar::circuit::MosType::Pmos,
        &tech.library.pmos_name(),
        tech.wp,
        tech.library.lmin,
    )?;
    sim.add_mosfet(
        "MN",
        out,
        inp,
        Netlist::GROUND,
        Netlist::GROUND,
        linvar::circuit::MosType::Nmos,
        &tech.library.nmos_name(),
        tech.wn,
        tech.library.lmin,
    )?;
    let mut opts = TransientOptions::new(40e-9, 10e-12);
    opts.probes.push(port_name.clone());
    let res =
        Transient::with_devices(&sim, &tech.library, DeviceVariation::nominal(), &opts)?.run()?;
    let pts: Vec<(f64, f64)> = res
        .times
        .iter()
        .copied()
        .zip(res.probe(&port_name).expect("probed").iter().copied())
        .collect();
    Ok(Waveform::from_points(pts).compress(1e-3))
}
