//! Principal Component Analysis of correlated device parameters
//! (paper §4.1.1) and factor-space sampling.
//!
//! The paper cites a study in which the fluctuations of 60 BSIM3 device
//! model parameters are explained by ~10 independent factors. This example
//! reproduces that structure on synthetic correlated data, then uses the
//! PCA factors to drive a path-delay Monte-Carlo in which `DL` and `VT`
//! are *correlated* (they share the gate-patterning factor in real
//! processes) — showing how the factor transformation plugs into the
//! framework's sampling.
//!
//! Run with `cargo run --release --example pca_factors`.

use linvar::prelude::*;
use linvar::stats::{demo_correlated_device_parameters, lhs_normal, Pca};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: dimensionality reduction on a 60-parameter set ---------
    let mut rng = rng_from_seed(11);
    let samples = demo_correlated_device_parameters(&mut rng, 400, 60, 10, 0.05);
    let model = Pca::new(0.95).fit(&samples)?;
    println!(
        "60 correlated parameters -> {} PCA factors explain {:.1}% of variance",
        model.retained,
        model.explained() * 100.0
    );
    println!(
        "leading factor variances: {:?}",
        model.variances[..6.min(model.variances.len())]
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
    );

    // --- Part 2: correlated DL/VT sampling via a factor model ----------
    // Two observable sources driven by two latent factors:
    //   DL = 0.9·f1 + 0.1·f2,  VT = 0.6·f1 - 0.5·f2   (normalized units)
    // giving corr(DL, VT) ≈ 0.74 — lithography couples them.
    let spec = PathSpec {
        cells: vec!["inv".into(), "nand2".into(), "nor2".into(), "inv".into()],
        linear_elements_between_stages: 10,
        input_slew: 50e-12,
    };
    let model_path = PathModel::build(&spec, &tech_018(), &WireTech::m018())?;
    let n = 60;
    let sigma = 0.33;
    let factors = lhs_normal(&mut rng, n, 2, sigma);

    // Correlated sampling through the factor loadings.
    let correlated: Vec<PathSample> = factors
        .iter()
        .map(|f| PathSample {
            wire: [0.0; 5],
            device: DeviceVariation::new(0.9 * f[0] + 0.1 * f[1], 0.6 * f[0] - 0.5 * f[1]),
        })
        .collect();
    // Naive independent sampling with the same marginal variances.
    let s_dl = (0.9f64 * 0.9 + 0.1 * 0.1).sqrt();
    let s_vt = (0.6f64 * 0.6 + 0.5 * 0.5).sqrt();
    let indep: Vec<PathSample> = lhs_normal(&mut rng, n, 2, sigma)
        .iter()
        .map(|z| PathSample {
            wire: [0.0; 5],
            device: DeviceVariation::new(s_dl * z[0], s_vt * z[1]),
        })
        .collect();

    let run = |samples: &[PathSample]| -> Result<Summary, CoreError> {
        let mut delays = Vec::new();
        for s in samples {
            delays.push(model_path.evaluate_sample(s)?);
        }
        Ok(Summary::of(&delays))
    };
    let corr_sum = run(&correlated)?;
    let ind_sum = run(&indep)?;
    println!(
        "\npath delay with correlated DL/VT : mean {:.2} ps, std {:.2} ps",
        corr_sum.mean * 1e12,
        corr_sum.std * 1e12
    );
    println!(
        "path delay, independence assumed : mean {:.2} ps, std {:.2} ps",
        ind_sum.mean * 1e12,
        ind_sum.std * 1e12
    );
    println!("\n(DL and VT push delay in opposite directions for this path, so");
    println!(" ignoring their correlation misestimates the spread — the reason");
    println!(" the paper recommends PCA before sampling.)");
    Ok(())
}
