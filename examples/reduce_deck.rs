//! Deck-to-macromodel utility: parse a SPICE-like RC(L) deck, build its
//! variational reduced-order model, and print the pole/residue summary —
//! the "library pre-characterization" step of the paper as a standalone
//! tool.
//!
//! Run with `cargo run --release --example reduce_deck [path/to/deck.sp]`;
//! without an argument a built-in demonstration deck is used.

use linvar::prelude::*;

const DEMO_DECK: &str = "\
* demonstration: variational RC tree with two ports
.param width
Rdrv1 p1 0 800
Rdrv2 p2 0 800
R1 p1 n1 20 width=-4
C1 n1 0 50f width=10f
R2 n1 n2 20 width=-4
C2 n2 0 50f width=10f
R3 n1 p2 25 width=-5
C3 p2 0 30f width=6f
.port p1 p2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deck = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)?,
        None => {
            println!("(no deck given — using the built-in demo deck)\n");
            DEMO_DECK.to_string()
        }
    };
    let nl = linvar::circuit::parse_deck(&deck)?;
    println!(
        "parsed: {} nodes, {} elements, {} ports, {} parameters",
        nl.node_count(),
        nl.elements().len(),
        nl.ports().len(),
        nl.params.len()
    );
    if nl.ports().is_empty() {
        return Err("deck has no .port directive".into());
    }
    let var = nl.assemble_variational()?;
    let order = 6.min(var.order());
    let vrom = VariationalRom::characterize(&var, ReductionMethod::Prima { order }, 0.02)?;
    println!(
        "variational ROM: order {order}, {} parameter(s)\n",
        vrom.param_count()
    );

    for sample in [-1.0, 0.0, 1.0] {
        let w: Vec<f64> = vec![sample; var.param_count()];
        let pr = extract_pole_residue(&vrom.evaluate(&w)?)?;
        let (stable, report) = stabilize(&pr);
        println!(
            "w = {sample:+}: {} poles ({} removed by the filter)",
            pr.pole_count(),
            report.removed_poles.len()
        );
        for (k, p) in stable.poles.iter().enumerate() {
            let tau = if p.re != 0.0 {
                -1.0 / p.re
            } else {
                f64::INFINITY
            };
            println!("  pole {k}: {p}   (tau = {:.3e} s)", tau);
        }
        let dc = stable.dc();
        print!("  Z(0) =");
        for i in 0..dc.rows() {
            for j in 0..dc.cols() {
                print!(" {:.2}", dc[(i, j)]);
            }
            if i + 1 < dc.rows() {
                print!(" ;");
            }
        }
        println!(" ohm\n");
    }
    Ok(())
}
