//! Crosstalk noise on a quiet victim under parameter variations.
//!
//! The paper's introduction motivates including "the electrical activity
//! in the local vicinity of the signal path … (signal integrity)". This
//! example couples an aggressor and a victim line, holds the victim
//! driver's input high (output quietly low through its NMOS), switches
//! the aggressor, and measures the capacitively coupled noise glitch on
//! the victim's far end — then sweeps the spacing/width variations to
//! show how manufacturing fluctuations modulate the noise peak.
//!
//! Run with `cargo run --release --example crosstalk_noise`.

use linvar::interconnect::builder::build_coupled_lines;
use linvar::prelude::*;
use linvar::stats::lhs_uniform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = tech_018();
    let vdd = tech.library.vdd;
    let spec = CoupledLineSpec::new(2, 60e-6, WireTech::m018());
    let built = build_coupled_lines(&spec)?;
    // Both lines driven: line 0 = aggressor, line 1 = victim.
    let stage = StageModel::build(
        &built.netlist,
        &[built.inputs[0], built.inputs[1]],
        &tech,
        ReductionMethod::Prima { order: 8 },
        0.02,
    )?;
    let victim_far = built
        .netlist
        .ports()
        .iter()
        .position(|p| *p == built.outputs[1])
        .expect("port");

    let noise_at = |w: &[f64]| -> Result<f64, Box<dyn std::error::Error>> {
        // Aggressor input falls → its output rises; victim input held high
        // → victim output held low by its NMOS.
        let aggressor_in = Waveform::ramp(vdd, 0.0, 20e-12, 40e-12);
        let victim_in = Waveform::constant(vdd);
        let res = stage.evaluate(
            w,
            DeviceVariation::nominal(),
            &[aggressor_in, victim_in],
            0.5e-12,
            1.5e-9,
        )?;
        let peak = res.waveforms[victim_far]
            .points()
            .iter()
            .fold(0.0_f64, |m, &(_, v)| m.max(v));
        Ok(peak)
    };

    let nominal = noise_at(&[0.0; 5])?;
    println!(
        "nominal victim noise peak: {:.1} mV ({:.1}% of VDD)",
        nominal * 1e3,
        nominal / vdd * 100.0
    );

    // Spacing is the dominant knob: tighter spacing → more coupling.
    let tight = noise_at(&[0.0, 0.0, -1.0, 0.0, 0.0])?;
    let loose = noise_at(&[0.0, 0.0, 1.0, 0.0, 0.0])?;
    println!(
        "spacing -tol : {:.1} mV   spacing +tol : {:.1} mV",
        tight * 1e3,
        loose * 1e3
    );

    // Distribution over all five wire parameters.
    let mut rng = rng_from_seed(13);
    let samples = lhs_uniform(&mut rng, 60, 5, -1.0, 1.0);
    let mut peaks = Vec::new();
    for s in &samples {
        peaks.push(noise_at(s)? * 1e3);
    }
    let sum = Summary::of(&peaks);
    println!(
        "noise peak over variations: mean {:.1} mV, std {:.1} mV, worst {:.1} mV",
        sum.mean, sum.std, sum.max
    );
    let hist = Histogram::auto(&peaks, 10)?;
    print!("{}", hist.render("victim noise peak", 1.0, "mV"));
    Ok(())
}
