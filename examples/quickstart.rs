//! Quickstart: statistical delay analysis of a small critical path.
//!
//! Builds a three-stage path (inverter → NAND2 → NOR2) with 10 linear
//! interconnect elements between stages, then compares the two statistical
//! methods of the paper on it: Monte-Carlo with full waveform propagation
//! and Gradient Analysis with (M, S) propagation.
//!
//! Run with `cargo run --release --example quickstart`.

use linvar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Construction (paper Table 1): chords folded, vROM library built.
    let spec = PathSpec {
        cells: vec!["inv".into(), "nand2".into(), "nor2".into()],
        linear_elements_between_stages: 10,
        input_slew: 50e-12,
    };
    let tech = tech_018();
    let wire = WireTech::m018();
    let model = PathModel::build(&spec, &tech, &wire)?;
    println!(
        "path: {:?} ({} stages, VDD = {} V)",
        model.cells(),
        model.stage_count(),
        model.vdd()
    );

    // --- Nominal corner.
    let nominal = model.evaluate_sample(&PathSample::default())?;
    println!("nominal delay: {:.2} ps", nominal * 1e12);

    // --- Monte-Carlo under the paper's Example-3 variations.
    let sources = VariationSources::example3(0.33, 0.33);
    let mut rng = rng_from_seed(2002);
    let mc = model.monte_carlo(&sources, 50, &mut rng)?;
    println!(
        "MC  ({} samples): mean = {:.2} ps, std = {:.2} ps",
        mc.summary.n,
        mc.summary.mean * 1e12,
        mc.summary.std * 1e12
    );

    // --- Gradient Analysis on the same sources.
    let ga = model.gradient_analysis(&sources)?;
    println!(
        "GA  ({} stage sims): mean = {:.2} ps, std = {:.2} ps",
        ga.evaluations,
        ga.nominal_delay * 1e12,
        ga.std * 1e12
    );

    // --- Distribution sketch.
    let hist = Histogram::auto(&mc.delays, 12)?;
    print!("{}", hist.render("MC path delay distribution", 1e12, "ps"));
    Ok(())
}
