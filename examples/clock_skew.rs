//! Clock-skew statistics of an H-tree under interconnect variations.
//!
//! The variational interconnect methodology was first applied to the clock
//! network of a gigahertz microprocessor (the paper's references [2][3]).
//! This example builds a 3-level H-tree with unequal latch-bank loads,
//! characterizes it once, and runs a Monte-Carlo over the five wire
//! parameters to obtain the *skew* (max − min sink arrival) distribution.
//!
//! Run with `cargo run --release --example clock_skew`.

use linvar::interconnect::{build_htree, HTreeSpec};
use linvar::prelude::*;
use linvar::stats::lhs_uniform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let levels = 3;
    let n_sinks = 1usize << levels;
    // Unequal latch banks: loads from 4 fF to ~18 fF across the floorplan.
    let sink_loads: Vec<f64> = (0..n_sinks)
        .map(|k| 4e-15 * (1.0 + 0.5 * k as f64))
        .collect();
    let spec = HTreeSpec {
        levels,
        root_length: 100e-6,
        seg_len: 4e-6,
        sink_loads,
        tech: WireTech::m018(),
    };
    let tree = build_htree(&spec)?;
    println!(
        "H-tree: {} levels, {} sinks, {} linear elements",
        levels,
        tree.sinks.len(),
        tree.element_count
    );

    // Framework construction: clock buffer at the root, vROM of the tree.
    let tech = tech_018();
    let stage = StageModel::build(
        &tree.netlist,
        &[tree.root],
        &tech,
        ReductionMethod::Prima { order: 12 },
        0.02,
    )?;
    let sink_ports: Vec<usize> = tree
        .sinks
        .iter()
        .map(|s| {
            tree.netlist
                .ports()
                .iter()
                .position(|p| p == s)
                .expect("sink is a port")
        })
        .collect();

    // Monte-Carlo over the wire parameters (uniform within tolerances).
    let mut rng = rng_from_seed(22);
    let samples = lhs_uniform(&mut rng, 60, 5, -1.0, 1.0);
    let vdd = tech.library.vdd;
    let mut skews = Vec::new();
    let mut latencies = Vec::new();
    for w in &samples {
        let input = Waveform::ramp(0.0, vdd, 20e-12, 40e-12);
        let res = stage.evaluate(w, DeviceVariation::nominal(), &[input], 1e-12, 3e-9)?;
        let arrivals: Vec<f64> = sink_ports
            .iter()
            .map(|&p| {
                res.waveforms[p]
                    .crossing(vdd / 2.0, false)
                    .expect("clock edge reaches every sink")
            })
            .collect();
        let min = arrivals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = arrivals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        skews.push(max - min);
        latencies.push(max);
    }
    let skew = Summary::of(&skews);
    let lat = Summary::of(&latencies);
    println!(
        "insertion delay: mean {:.2} ps, std {:.2} ps",
        lat.mean * 1e12,
        lat.std * 1e12
    );
    println!(
        "skew           : mean {:.2} ps, std {:.2} ps, worst {:.2} ps",
        skew.mean * 1e12,
        skew.std * 1e12,
        skew.max * 1e12
    );
    let hist = Histogram::auto(&skews, 10)?;
    print!("{}", hist.render("skew distribution", 1e12, "ps"));
    Ok(())
}
