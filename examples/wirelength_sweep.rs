//! The paper's Example 2: efficiency on stages with many wires.
//!
//! Sweeps the interconnect size of a logic stage and compares the CPU time
//! of the framework (one vROM characterization + cheap per-sample
//! evaluations) against the SPICE baseline (full re-simulation per
//! sample), plus the delay statistics of both — the content of the
//! paper's Figures 5 and 6.
//!
//! Run with `cargo run --release --example wirelength_sweep`.

use linvar::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = tech_018();
    let wire = WireTech::m018();
    let n_teta_samples = 30;
    let n_spice_samples = 5; // baseline is slow; per-sample time is what matters

    println!("elements | TETA ms/sample | SPICE ms/sample | speedup");
    for &n_elem in &[10usize, 50, 100, 200] {
        let spec = PathSpec {
            cells: vec!["inv".into()],
            linear_elements_between_stages: n_elem,
            input_slew: 50e-12,
        };
        let model = PathModel::build(&spec, &tech, &wire)?;
        let sources = VariationSources::example3_table4();
        let mut rng = rng_from_seed(42);
        let samples = model.draw_samples(&sources, n_teta_samples, &mut rng);

        let t0 = Instant::now();
        let mut teta_delays = Vec::new();
        for s in &samples {
            teta_delays.push(model.evaluate_sample(s)?);
        }
        let teta_ms = t0.elapsed().as_secs_f64() * 1e3 / n_teta_samples as f64;

        let t0 = Instant::now();
        let mut spice_delays = Vec::new();
        for s in samples.iter().take(n_spice_samples) {
            spice_delays.push(model.evaluate_sample_spice(s)?);
        }
        let spice_ms = t0.elapsed().as_secs_f64() * 1e3 / n_spice_samples as f64;

        println!(
            "{n_elem:>8} | {teta_ms:>14.2} | {spice_ms:>15.2} | {:>7.1}x",
            spice_ms / teta_ms
        );

        if n_elem == 100 {
            // Figure-6 style histogram comparison at one size.
            let t_sum = Summary::of(&teta_delays);
            let s_sum = Summary::of(&spice_delays);
            println!(
                "  accuracy at {n_elem} elements: TETA mean {:.2} ps vs SPICE mean {:.2} ps",
                t_sum.mean * 1e12,
                s_sum.mean * 1e12
            );
            let hist = Histogram::auto(&teta_delays, 10)?;
            print!("{}", hist.render("  TETA delay distribution", 1e12, "ps"));
        }
    }
    Ok(())
}
