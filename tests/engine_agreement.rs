//! Engine-agreement tests: the linear-centric engine and the SPICE
//! baseline must produce the same waveforms on shared configurations —
//! the paper's "almost SPICE accuracy" claim for TETA, checked across
//! cell types, loads and variation corners.

use linvar::prelude::*;

fn agreement(cells: Vec<String>, n_elem: usize, sample: PathSample) -> (f64, f64) {
    let spec = PathSpec {
        cells,
        linear_elements_between_stages: n_elem,
        input_slew: 50e-12,
    };
    let model = PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds");
    let teta = model.evaluate_sample(&sample).expect("teta evaluates");
    let spice = model
        .evaluate_sample_spice(&sample)
        .expect("spice evaluates");
    (teta, spice)
}

#[test]
fn agreement_across_cell_types() {
    for cell in ["inv", "nand2", "nand3", "nor2", "nor3"] {
        let (teta, spice) = agreement(
            vec![cell.to_string(), "inv".to_string()],
            20,
            PathSample::default(),
        );
        let rel = (teta - spice).abs() / spice;
        assert!(
            rel < 0.10,
            "{cell}: teta {:.2}ps vs spice {:.2}ps ({:.1}% off)",
            teta * 1e12,
            spice * 1e12,
            rel * 100.0
        );
    }
}

#[test]
fn agreement_at_variation_corners() {
    for (wire, dev) in [
        ([1.0, 1.0, 1.0, 1.0, 1.0], DeviceVariation::new(0.0, 0.0)),
        (
            [-1.0, -1.0, -1.0, -1.0, -1.0],
            DeviceVariation::new(0.0, 0.0),
        ),
        ([0.0; 5], DeviceVariation::new(1.0, 1.0)),
        ([0.0; 5], DeviceVariation::new(-1.0, -1.0)),
        ([1.0, -1.0, 0.5, -0.5, 1.0], DeviceVariation::new(0.5, -0.5)),
    ] {
        let sample = PathSample { wire, device: dev };
        let (teta, spice) = agreement(vec!["inv".into(), "inv".into()], 30, sample);
        let rel = (teta - spice).abs() / spice;
        assert!(
            rel < 0.10,
            "corner {wire:?}/{dev:?}: teta {teta:.3e} vs spice {spice:.3e}"
        );
    }
}

#[test]
fn agreement_on_large_load() {
    let (teta, spice) = agreement(vec!["inv".into()], 300, PathSample::default());
    let rel = (teta - spice).abs() / spice;
    assert!(
        rel < 0.05,
        "300 elements: teta {:.2}ps vs spice {:.2}ps",
        teta * 1e12,
        spice * 1e12
    );
}

#[test]
fn both_engines_monotone_in_resistivity() {
    let d = |rho: f64| {
        let mut s = PathSample::default();
        s.wire[4] = rho;
        agreement(vec!["inv".into()], 100, s)
    };
    let (t_lo, s_lo) = d(-1.0);
    let (t_hi, s_hi) = d(1.0);
    assert!(t_hi > t_lo, "teta monotone in rho");
    assert!(s_hi > s_lo, "spice monotone in rho");
}
