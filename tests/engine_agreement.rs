//! Engine-agreement tests: the linear-centric engine and the SPICE
//! baseline must produce the same waveforms on shared configurations —
//! the paper's "almost SPICE accuracy" claim for TETA, checked across
//! cell types, loads and variation corners.
//!
//! The second half is the *statistics*-engine conformance table: the
//! spectral (gPC) and Sobol quasi-MC engines must reproduce the
//! Monte-Carlo reference moments and quantiles on a shared path, each
//! metric under its own budget, with a full-table failure report in the
//! same format as the TETA-vs-SPICE budget table.

use linvar::prelude::*;

fn agreement(cells: Vec<String>, n_elem: usize, sample: PathSample) -> (f64, f64) {
    let spec = PathSpec {
        cells,
        linear_elements_between_stages: n_elem,
        input_slew: 50e-12,
    };
    let model = PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds");
    let teta = model.evaluate_sample(&sample).expect("teta evaluates");
    let spice = model
        .evaluate_sample_spice(&sample)
        .expect("spice evaluates");
    (teta, spice)
}

#[test]
fn agreement_across_cell_types() {
    for cell in ["inv", "nand2", "nand3", "nor2", "nor3"] {
        let (teta, spice) = agreement(
            vec![cell.to_string(), "inv".to_string()],
            20,
            PathSample::default(),
        );
        let rel = (teta - spice).abs() / spice;
        assert!(
            rel < 0.10,
            "{cell}: teta {:.2}ps vs spice {:.2}ps ({:.1}% off)",
            teta * 1e12,
            spice * 1e12,
            rel * 100.0
        );
    }
}

#[test]
fn agreement_at_variation_corners() {
    for (wire, dev) in [
        ([1.0, 1.0, 1.0, 1.0, 1.0], DeviceVariation::new(0.0, 0.0)),
        (
            [-1.0, -1.0, -1.0, -1.0, -1.0],
            DeviceVariation::new(0.0, 0.0),
        ),
        ([0.0; 5], DeviceVariation::new(1.0, 1.0)),
        ([0.0; 5], DeviceVariation::new(-1.0, -1.0)),
        ([1.0, -1.0, 0.5, -0.5, 1.0], DeviceVariation::new(0.5, -0.5)),
    ] {
        let sample = PathSample { wire, device: dev };
        let (teta, spice) = agreement(vec!["inv".into(), "inv".into()], 30, sample);
        let rel = (teta - spice).abs() / spice;
        assert!(
            rel < 0.10,
            "corner {wire:?}/{dev:?}: teta {teta:.3e} vs spice {spice:.3e}"
        );
    }
}

#[test]
fn agreement_on_large_load() {
    let (teta, spice) = agreement(vec!["inv".into()], 300, PathSample::default());
    let rel = (teta - spice).abs() / spice;
    assert!(
        rel < 0.05,
        "300 elements: teta {:.2}ps vs spice {:.2}ps",
        teta * 1e12,
        spice * 1e12
    );
}

/// The paper's "almost SPICE accuracy" claim as an explicit per-stage
/// tolerance budget: each benchmark configuration carries its own bound
/// on the relative 50% (VDD/2-crossing) delay error between TETA and
/// the SPICE baseline. All rows are evaluated — a failure reports the
/// whole budget table, not just the first violation.
#[test]
fn tolerance_budget_table() {
    struct Row {
        label: &'static str,
        cells: &'static [&'static str],
        n_elem: usize,
        sample: PathSample,
        bound: f64,
    }
    let corner = PathSample {
        wire: [1.0, -1.0, 0.5, -0.5, 1.0],
        device: DeviceVariation::new(0.5, -0.5),
    };
    let budget = [
        Row {
            label: "inv chain, light load",
            cells: &["inv", "inv"],
            n_elem: 10,
            sample: PathSample::default(),
            bound: 0.10,
        },
        Row {
            label: "nand2 stage, light load",
            cells: &["nand2", "inv"],
            n_elem: 20,
            sample: PathSample::default(),
            bound: 0.10,
        },
        Row {
            label: "nor2 stage, light load",
            cells: &["nor2", "inv"],
            n_elem: 20,
            sample: PathSample::default(),
            bound: 0.10,
        },
        Row {
            label: "inv, heavy interconnect",
            cells: &["inv"],
            n_elem: 300,
            sample: PathSample::default(),
            bound: 0.05,
        },
        Row {
            label: "inv chain, mixed corner",
            cells: &["inv", "inv"],
            n_elem: 30,
            sample: corner,
            bound: 0.10,
        },
    ];
    let mut table = String::new();
    let mut violations = 0usize;
    for row in &budget {
        let cells = row.cells.iter().map(|c| c.to_string()).collect();
        let (teta, spice) = agreement(cells, row.n_elem, row.sample);
        let rel = (teta - spice).abs() / spice.abs();
        let verdict = if rel <= row.bound { "ok" } else { "FAIL" };
        if rel > row.bound {
            violations += 1;
        }
        table.push_str(&format!(
            "{:<28} teta {:>7.2} ps  spice {:>7.2} ps  err {:>5.2}%  budget {:>4.1}%  {}\n",
            row.label,
            teta * 1e12,
            spice * 1e12,
            rel * 100.0,
            row.bound * 100.0,
            verdict
        ));
    }
    assert_eq!(violations, 0, "tolerance budget exceeded:\n{table}");
}

/// Cross-engine conformance: the gPC and Sobol statistics engines vs
/// the Monte-Carlo reference on a shared 2-stage path under the (DL, VT)
/// sources. Every row of the table is evaluated — mean, std and the
/// 5/50/95 % quantiles per engine, each with its own budget — and a
/// failure prints the whole table, mirroring `tolerance_budget_table`.
///
/// Budgets: means within 2 % + 4 MC standard errors; stds within 25 %
/// (both estimators are noisy at n=200); quantiles within 2 % + 4·SE
/// of the matching MC order statistic (SE ≈ σ·√(p(1−p)/n)/φ(z_p),
/// bounded below by the mean budget for the tails).
#[test]
fn cross_engine_conformance_table() {
    let spec = PathSpec {
        cells: vec!["inv".into(), "nand2".into()],
        linear_elements_between_stages: 10,
        input_slew: 50e-12,
    };
    let model = PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds");
    let sources = VariationSources::example3(0.33, 0.33);
    let (n, seed, threads) = (200usize, 11u64, 2usize);

    // Monte-Carlo reference: empirical moments and order statistics.
    let mc = model
        .monte_carlo_par(&sources, n, seed, threads)
        .expect("mc");
    assert_eq!(mc.failures, 0, "{:?}", mc.first_error);
    let mut sorted = mc.delays.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mc_q = |p: f64| sorted[((n - 1) as f64 * p).round() as usize];
    let se_mean = mc.summary.std / (n as f64).sqrt();
    // Asymptotic SE of the p-th sample quantile of a normal:
    // σ·√(p(1−p)/n) / φ(Φ⁻¹(p)).
    let se_q = |p: f64| {
        let z = linvar::stats::sampling::inverse_normal_cdf(p);
        let phi = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        mc.summary.std * (p * (1.0 - p) / n as f64).sqrt() / phi
    };
    let mean_budget = 0.02 * mc.summary.mean.abs() + 4.0 * se_mean;
    let q_budget = |p: f64| mean_budget.max(0.02 * mc_q(p).abs() + 4.0 * se_q(p));
    let std_budget = 0.25 * mc.summary.std;

    // gPC: stochastic-testing order 2 over the two active sources.
    let pc = model
        .polynomial_chaos(
            &sources,
            SpectralConfig::stochastic_testing(2),
            seed,
            threads,
            RecoveryPolicy::default(),
        )
        .expect("gpc");
    let pc_q = |p: f64| {
        pc.quantiles
            .iter()
            .find(|(q, _)| (q - p).abs() < 1e-12)
            .map(|&(_, v)| v)
            .expect("surrogate quantile present")
    };

    // Sobol: the same campaign flow over the quasi-MC stream.
    let qmc = model
        .monte_carlo_par_sobol(&sources, n, seed, threads)
        .expect("sobol");
    assert_eq!(qmc.failures, 0, "{:?}", qmc.first_error);
    let mut qs = qmc.delays.clone();
    qs.sort_by(|a, b| a.total_cmp(b));
    let qmc_q = |p: f64| qs[((n - 1) as f64 * p).round() as usize];

    struct Row {
        engine: &'static str,
        metric: &'static str,
        value: f64,
        reference: f64,
        budget: f64,
    }
    let rows = [
        Row {
            engine: "gpc",
            metric: "mean",
            value: pc.mean,
            reference: mc.summary.mean,
            budget: mean_budget,
        },
        Row {
            engine: "gpc",
            metric: "std",
            value: pc.std,
            reference: mc.summary.std,
            budget: std_budget,
        },
        Row {
            engine: "gpc",
            metric: "q05",
            value: pc_q(0.05),
            reference: mc_q(0.05),
            budget: q_budget(0.05),
        },
        Row {
            engine: "gpc",
            metric: "q50",
            value: pc_q(0.50),
            reference: mc_q(0.50),
            budget: q_budget(0.50),
        },
        Row {
            engine: "gpc",
            metric: "q95",
            value: pc_q(0.95),
            reference: mc_q(0.95),
            budget: q_budget(0.95),
        },
        Row {
            engine: "sobol",
            metric: "mean",
            value: qmc.summary.mean,
            reference: mc.summary.mean,
            budget: mean_budget,
        },
        Row {
            engine: "sobol",
            metric: "std",
            value: qmc.summary.std,
            reference: mc.summary.std,
            budget: std_budget,
        },
        Row {
            engine: "sobol",
            metric: "q05",
            value: qmc_q(0.05),
            reference: mc_q(0.05),
            budget: q_budget(0.05),
        },
        Row {
            engine: "sobol",
            metric: "q50",
            value: qmc_q(0.50),
            reference: mc_q(0.50),
            budget: q_budget(0.50),
        },
        Row {
            engine: "sobol",
            metric: "q95",
            value: qmc_q(0.95),
            reference: mc_q(0.95),
            budget: q_budget(0.95),
        },
    ];
    // The spectral engine's whole point: orders of magnitude fewer solves.
    assert!(
        pc.nodes_evaluated * 10 <= n,
        "gPC used {} solves vs the MC reference's {n}",
        pc.nodes_evaluated
    );
    let mut table = String::new();
    let mut violations = 0usize;
    for row in &rows {
        let err = (row.value - row.reference).abs();
        let verdict = if err <= row.budget { "ok" } else { "FAIL" };
        if err > row.budget {
            violations += 1;
        }
        table.push_str(&format!(
            "{:<6} {:<5} engine {:>9.3} ps  mc {:>9.3} ps  err {:>7.4} ps  budget {:>7.4} ps  {}\n",
            row.engine,
            row.metric,
            row.value * 1e12,
            row.reference * 1e12,
            err * 1e12,
            row.budget * 1e12,
            verdict
        ));
    }
    assert_eq!(
        violations, 0,
        "cross-engine conformance budget exceeded:\n{table}"
    );
}

/// The IR-drop counterpart of [`cross_engine_conformance_table`]: the
/// gPC and Sobol engines vs the Monte-Carlo reference on the 8×8
/// stochastic power grid, same budget formulas (means within
/// 2 % + 4 MC standard errors, stds within 25 %, quantiles within
/// 2 % + 4·SE of the matching MC order statistic), full-table failure
/// report. This is the acceptance gate for the `acgrid` workload: every
/// statistics engine must tell the same story about the worst-drop
/// distribution.
#[test]
fn ir_drop_cross_engine_conformance_table() {
    use linvar_bench::grid::{run_case, run_case_spectral, sample_set, sample_set_sobol};
    use linvar_interconnect::{power_grid_case, PowerGridSpec};
    use linvar_numeric::SolverChoice;

    let case = power_grid_case(&PowerGridSpec::new(8, 8, WireTech::m018())).expect("grid builds");
    let (n, threads) = (200usize, 2usize);

    let mc = run_case(&case, &sample_set(n), threads, SolverChoice::Sparse).expect("mc");
    assert_eq!(mc.failures, 0, "{:?}", mc.first_error);
    let mut sorted = mc.values.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mc_q = |p: f64| sorted[((n - 1) as f64 * p).round() as usize];
    let se_mean = mc.summary.std / (n as f64).sqrt();
    let se_q = |p: f64| {
        let z = linvar::stats::sampling::inverse_normal_cdf(p);
        let phi = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        mc.summary.std * (p * (1.0 - p) / n as f64).sqrt() / phi
    };
    let mean_budget = 0.02 * mc.summary.mean.abs() + 4.0 * se_mean;
    let q_budget = |p: f64| mean_budget.max(0.02 * mc_q(p).abs() + 4.0 * se_q(p));
    let std_budget = 0.25 * mc.summary.std;

    let pc = run_case_spectral(&case, threads, SolverChoice::Sparse).expect("gpc");
    let pc_q = |p: f64| {
        pc.quantiles
            .iter()
            .find(|(q, _)| (q - p).abs() < 1e-12)
            .map(|&(_, v)| v)
            .expect("surrogate quantile present")
    };

    let qmc = run_case(&case, &sample_set_sobol(n), threads, SolverChoice::Sparse).expect("sobol");
    assert_eq!(qmc.failures, 0, "{:?}", qmc.first_error);
    let mut qs = qmc.values.clone();
    qs.sort_by(|a, b| a.total_cmp(b));
    let qmc_q = |p: f64| qs[((n - 1) as f64 * p).round() as usize];

    assert!(
        pc.nodes_evaluated * 10 <= n,
        "gPC used {} DC solves vs the MC reference's {n}",
        pc.nodes_evaluated
    );

    let rows = [
        ("gpc", "mean", pc.mean, mc.summary.mean, mean_budget),
        ("gpc", "std", pc.std, mc.summary.std, std_budget),
        ("gpc", "q05", pc_q(0.05), mc_q(0.05), q_budget(0.05)),
        ("gpc", "q50", pc_q(0.50), mc_q(0.50), q_budget(0.50)),
        ("gpc", "q95", pc_q(0.95), mc_q(0.95), q_budget(0.95)),
        (
            "sobol",
            "mean",
            qmc.summary.mean,
            mc.summary.mean,
            mean_budget,
        ),
        ("sobol", "std", qmc.summary.std, mc.summary.std, std_budget),
        ("sobol", "q05", qmc_q(0.05), mc_q(0.05), q_budget(0.05)),
        ("sobol", "q50", qmc_q(0.50), mc_q(0.50), q_budget(0.50)),
        ("sobol", "q95", qmc_q(0.95), mc_q(0.95), q_budget(0.95)),
    ];
    let mut table = String::new();
    let mut violations = 0usize;
    for &(engine, metric, value, reference, budget) in &rows {
        let err = (value - reference).abs();
        let verdict = if err <= budget { "ok" } else { "FAIL" };
        if err > budget {
            violations += 1;
        }
        table.push_str(&format!(
            "{engine:<6} {metric:<5} engine {:>9.4} mV  mc {:>9.4} mV  err {:>8.5} mV  \
             budget {:>8.5} mV  {verdict}\n",
            value * 1e3,
            reference * 1e3,
            err * 1e3,
            budget * 1e3,
        ));
    }
    assert_eq!(
        violations, 0,
        "IR-drop cross-engine conformance budget exceeded:\n{table}"
    );
}

#[test]
fn both_engines_monotone_in_resistivity() {
    let d = |rho: f64| {
        let mut s = PathSample::default();
        s.wire[4] = rho;
        agreement(vec!["inv".into()], 100, s)
    };
    let (t_lo, s_lo) = d(-1.0);
    let (t_hi, s_hi) = d(1.0);
    assert!(t_hi > t_lo, "teta monotone in rho");
    assert!(s_hi > s_lo, "spice monotone in rho");
}
