//! Engine-agreement tests: the linear-centric engine and the SPICE
//! baseline must produce the same waveforms on shared configurations —
//! the paper's "almost SPICE accuracy" claim for TETA, checked across
//! cell types, loads and variation corners.

use linvar::prelude::*;

fn agreement(cells: Vec<String>, n_elem: usize, sample: PathSample) -> (f64, f64) {
    let spec = PathSpec {
        cells,
        linear_elements_between_stages: n_elem,
        input_slew: 50e-12,
    };
    let model = PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds");
    let teta = model.evaluate_sample(&sample).expect("teta evaluates");
    let spice = model
        .evaluate_sample_spice(&sample)
        .expect("spice evaluates");
    (teta, spice)
}

#[test]
fn agreement_across_cell_types() {
    for cell in ["inv", "nand2", "nand3", "nor2", "nor3"] {
        let (teta, spice) = agreement(
            vec![cell.to_string(), "inv".to_string()],
            20,
            PathSample::default(),
        );
        let rel = (teta - spice).abs() / spice;
        assert!(
            rel < 0.10,
            "{cell}: teta {:.2}ps vs spice {:.2}ps ({:.1}% off)",
            teta * 1e12,
            spice * 1e12,
            rel * 100.0
        );
    }
}

#[test]
fn agreement_at_variation_corners() {
    for (wire, dev) in [
        ([1.0, 1.0, 1.0, 1.0, 1.0], DeviceVariation::new(0.0, 0.0)),
        (
            [-1.0, -1.0, -1.0, -1.0, -1.0],
            DeviceVariation::new(0.0, 0.0),
        ),
        ([0.0; 5], DeviceVariation::new(1.0, 1.0)),
        ([0.0; 5], DeviceVariation::new(-1.0, -1.0)),
        ([1.0, -1.0, 0.5, -0.5, 1.0], DeviceVariation::new(0.5, -0.5)),
    ] {
        let sample = PathSample { wire, device: dev };
        let (teta, spice) = agreement(vec!["inv".into(), "inv".into()], 30, sample);
        let rel = (teta - spice).abs() / spice;
        assert!(
            rel < 0.10,
            "corner {wire:?}/{dev:?}: teta {teta:.3e} vs spice {spice:.3e}"
        );
    }
}

#[test]
fn agreement_on_large_load() {
    let (teta, spice) = agreement(vec!["inv".into()], 300, PathSample::default());
    let rel = (teta - spice).abs() / spice;
    assert!(
        rel < 0.05,
        "300 elements: teta {:.2}ps vs spice {:.2}ps",
        teta * 1e12,
        spice * 1e12
    );
}

/// The paper's "almost SPICE accuracy" claim as an explicit per-stage
/// tolerance budget: each benchmark configuration carries its own bound
/// on the relative 50% (VDD/2-crossing) delay error between TETA and
/// the SPICE baseline. All rows are evaluated — a failure reports the
/// whole budget table, not just the first violation.
#[test]
fn tolerance_budget_table() {
    struct Row {
        label: &'static str,
        cells: &'static [&'static str],
        n_elem: usize,
        sample: PathSample,
        bound: f64,
    }
    let corner = PathSample {
        wire: [1.0, -1.0, 0.5, -0.5, 1.0],
        device: DeviceVariation::new(0.5, -0.5),
    };
    let budget = [
        Row {
            label: "inv chain, light load",
            cells: &["inv", "inv"],
            n_elem: 10,
            sample: PathSample::default(),
            bound: 0.10,
        },
        Row {
            label: "nand2 stage, light load",
            cells: &["nand2", "inv"],
            n_elem: 20,
            sample: PathSample::default(),
            bound: 0.10,
        },
        Row {
            label: "nor2 stage, light load",
            cells: &["nor2", "inv"],
            n_elem: 20,
            sample: PathSample::default(),
            bound: 0.10,
        },
        Row {
            label: "inv, heavy interconnect",
            cells: &["inv"],
            n_elem: 300,
            sample: PathSample::default(),
            bound: 0.05,
        },
        Row {
            label: "inv chain, mixed corner",
            cells: &["inv", "inv"],
            n_elem: 30,
            sample: corner,
            bound: 0.10,
        },
    ];
    let mut table = String::new();
    let mut violations = 0usize;
    for row in &budget {
        let cells = row.cells.iter().map(|c| c.to_string()).collect();
        let (teta, spice) = agreement(cells, row.n_elem, row.sample);
        let rel = (teta - spice).abs() / spice.abs();
        let verdict = if rel <= row.bound { "ok" } else { "FAIL" };
        if rel > row.bound {
            violations += 1;
        }
        table.push_str(&format!(
            "{:<28} teta {:>7.2} ps  spice {:>7.2} ps  err {:>5.2}%  budget {:>4.1}%  {}\n",
            row.label,
            teta * 1e12,
            spice * 1e12,
            rel * 100.0,
            row.bound * 100.0,
            verdict
        ));
    }
    assert_eq!(violations, 0, "tolerance budget exceeded:\n{table}");
}

#[test]
fn both_engines_monotone_in_resistivity() {
    let d = |rho: f64| {
        let mut s = PathSample::default();
        s.wire[4] = rho;
        agreement(vec!["inv".into()], 100, s)
    };
    let (t_lo, s_lo) = d(-1.0);
    let (t_hi, s_hi) = d(1.0);
    assert!(t_hi > t_lo, "teta monotone in rho");
    assert!(s_hi > s_lo, "spice monotone in rho");
}
