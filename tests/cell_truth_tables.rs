//! Electrical truth-table validation of the standard-cell library: every
//! cell, every input combination, simulated at the transistor level — the
//! outputs must sit at the rails the cell's Boolean function dictates.

use linvar::circuit::{Netlist, SourceWaveform};
use linvar::prelude::*;
use linvar::spice::{Transient, TransientOptions};

/// Boolean function of each library cell.
fn cell_function(name: &str, ins: &[bool]) -> bool {
    let a = ins[0];
    let b = *ins.get(1).unwrap_or(&false);
    let c = *ins.get(2).unwrap_or(&false);
    match name {
        "inv" => !a,
        "buf" => a,
        "nand2" => !(a && b),
        "nand3" => !(a && b && c),
        "nor2" => !(a || b),
        "nor3" => !(a || b || c),
        "and2" => a && b,
        "or2" => a || b,
        "aoi21" => !((a && b) || c),
        "oai21" => !((a || b) && c),
        other => panic!("unknown cell {other}"),
    }
}

#[test]
fn every_cell_realizes_its_boolean_function() {
    let tech = tech_018();
    let vdd = tech.library.vdd;
    let cells = CellLibrary::standard(tech.clone());
    for cell in cells.cells() {
        let n_in = cell.inputs.len();
        for pattern in 0..(1u32 << n_in) {
            let ins: Vec<bool> = (0..n_in).map(|k| pattern & (1 << k) != 0).collect();
            let expect = cell_function(&cell.name, &ins);

            // Build the DC testbench: cell + rails + static inputs.
            let mut nl = Netlist::new();
            let vdd_node = nl.node("vdd");
            nl.add_vsource("Vdd", vdd_node, Netlist::GROUND, SourceWaveform::Dc(vdd))
                .expect("adds");
            nl.instantiate(&cell.netlist, "u_", &["vdd"])
                .expect("instantiates");
            for (k, pin) in cell.inputs.iter().enumerate() {
                let node = nl.find_node(&format!("u_{pin}")).expect("input exists");
                let level = if ins[k] { vdd } else { 0.0 };
                nl.add_vsource(
                    &format!("Vin{k}"),
                    node,
                    Netlist::GROUND,
                    SourceWaveform::Dc(level),
                )
                .expect("adds");
            }
            // A short settle transient reads the DC point robustly.
            let mut opts = TransientOptions::new(0.5e-9, 2e-12);
            opts.probes.push("u_out".into());
            let res =
                Transient::with_devices(&nl, &tech.library, DeviceVariation::nominal(), &opts)
                    .expect("builds")
                    .run()
                    .unwrap_or_else(|e| panic!("{} pattern {pattern:b}: {e}", cell.name));
            let v_out = *res.probe("u_out").expect("probed").last().expect("samples");
            let logic = v_out > vdd / 2.0;
            assert_eq!(
                logic,
                expect,
                "{} inputs {ins:?}: out = {v_out:.3} V, expected {}",
                cell.name,
                if expect { "high" } else { "low" }
            );
            // Static CMOS: the output must sit hard at a rail.
            let rail = if expect { vdd } else { 0.0 };
            assert!(
                (v_out - rail).abs() < 0.05 * vdd,
                "{} inputs {ins:?}: weak output {v_out:.3} V vs rail {rail}",
                cell.name
            );
        }
    }
}

#[test]
fn side_bias_sensitizes_the_a_input() {
    // With the side inputs tied per the cell's sensitization recipe, the
    // output must follow (or invert) input `a` — both values of `a` give
    // opposite outputs.
    let tech = tech_018();
    let cells = CellLibrary::standard(tech);
    for cell in cells.cells() {
        let n_in = cell.inputs.len();
        let mut out = [false; 2];
        for (slot, a_val) in [(0usize, false), (1usize, true)] {
            let mut ins = vec![false; n_in];
            ins[0] = a_val;
            for (name, high) in &cell.side_bias {
                let k = cell.inputs.iter().position(|i| i == name).expect("pin");
                ins[k] = *high;
            }
            out[slot] = cell_function(&cell.name, &ins);
        }
        assert_ne!(
            out[0], out[1],
            "{}: side bias must make `a` control the output",
            cell.name
        );
        // And the direction matches the `inverting` flag.
        assert_eq!(
            out[1], !cell.inverting,
            "{}: inverting flag inconsistent",
            cell.name
        );
    }
}
