//! The observability layer's two contracts, checked end-to-end on the
//! s27 longest path:
//!
//! 1. **Determinism** — the `counters` section of the metrics report is
//!    bitwise-identical for the same master seed at any worker count
//!    (1/2/8 threads). Timers and gauges are run-dependent and
//!    explicitly excluded.
//! 2. **Zero interference** — running with the sink disabled produces
//!    bitwise-identical simulation results to running instrumented, and
//!    a disabled run leaves the sink empty.
//!
//! The sink is process-global, so every test serializes on
//! [`linvar::metrics::test_lock`].

use linvar::iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar::metrics;
use linvar::prelude::*;

const MASTER_SEED: u64 = 2002;
const N_SAMPLES: usize = 8;

fn s27_model() -> PathModel {
    let bench = benchmark("s27").expect("embedded benchmark");
    let report = longest_path(&bench.netlist).expect("has a path");
    let stages = decompose_to_primitives(&bench.netlist, &report).expect("decomposes");
    let spec = PathSpec {
        cells: stages.into_iter().map(|s| s.cell).collect(),
        linear_elements_between_stages: 10,
        input_slew: 60e-12,
    };
    PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds")
}

fn instrumented_run(model: &PathModel, threads: usize) -> (McRecoveryResult, String) {
    metrics::reset();
    metrics::enable();
    let sources = VariationSources::example3(0.33, 0.33);
    let res = model
        .monte_carlo_par_recovering(
            &sources,
            N_SAMPLES,
            MASTER_SEED,
            threads,
            RecoveryPolicy::default(),
        )
        .expect("recovering run");
    metrics::flush_local();
    let counters = metrics::snapshot().counters_json();
    metrics::disable();
    metrics::reset();
    (res, counters)
}

fn delay_bits(res: &McRecoveryResult) -> Vec<u64> {
    res.delays.iter().map(|d| d.to_bits()).collect()
}

#[test]
fn counters_are_identical_across_thread_counts() {
    let _guard = metrics::test_lock();
    let model = s27_model();
    let (ref_res, ref_counters) = instrumented_run(&model, 1);
    assert_eq!(ref_res.delays.len(), N_SAMPLES);
    assert_eq!(ref_res.failures, 0, "{:?}", ref_res.first_error);
    // The run did real work: phase call counts and sample tallies are
    // populated, not a sea of zeros.
    for needle in [
        "\"phase.sample_eval.calls\"",
        "\"phase.lu_factor.calls\"",
        "\"mc.samples_completed\": 8",
        "\"rung.",
    ] {
        assert!(
            ref_counters.contains(needle),
            "missing {needle} in:\n{ref_counters}"
        );
    }
    for threads in [2usize, 8] {
        let (res, counters) = instrumented_run(&model, threads);
        assert_eq!(
            counters, ref_counters,
            "counters section diverged at {threads} threads"
        );
        assert_eq!(
            delay_bits(&res),
            delay_bits(&ref_res),
            "instrumentation must not perturb results ({threads} threads)"
        );
    }
}

#[test]
fn disabled_sink_leaves_results_and_sink_untouched() {
    let _guard = metrics::test_lock();
    let model = s27_model();
    let sources = VariationSources::example3(0.33, 0.33);

    // Disabled run: the no-op sink must stay empty.
    metrics::reset();
    metrics::disable();
    let plain = model
        .monte_carlo_par_recovering(
            &sources,
            N_SAMPLES,
            MASTER_SEED,
            2,
            RecoveryPolicy::default(),
        )
        .expect("plain run");
    metrics::flush_local();
    let report = metrics::snapshot();
    assert!(
        report.counters.values().all(|&v| v == 0),
        "disabled sink accumulated counts: {:?}",
        report.counters
    );
    assert!(
        report
            .timers
            .values()
            .all(|t| t.calls == 0 && t.total_ns == 0),
        "disabled sink accumulated timings"
    );

    // Instrumented run: same inputs, bitwise-identical outputs.
    let (instrumented, counters) = instrumented_run(&model, 2);
    assert_eq!(
        delay_bits(&plain),
        delay_bits(&instrumented),
        "enabling metrics changed the simulation results"
    );
    assert_eq!(
        plain.summary.mean.to_bits(),
        instrumented.summary.mean.to_bits()
    );
    assert_eq!(
        plain.summary.std.to_bits(),
        instrumented.summary.std.to_bits()
    );
    assert!(counters.contains("\"mc.samples_completed\": 8"));
}

#[test]
fn spectral_counters_are_identical_across_thread_counts() {
    let _guard = metrics::test_lock();
    let model = s27_model();
    let sources = VariationSources::example3(0.33, 0.33);
    let config = SpectralConfig::stochastic_testing(2);
    let run = |threads: usize| {
        metrics::reset();
        metrics::enable();
        let res = model
            .polynomial_chaos(
                &sources,
                config,
                MASTER_SEED,
                threads,
                RecoveryPolicy::default(),
            )
            .expect("spectral run");
        metrics::flush_local();
        let counters = metrics::snapshot().counters_json();
        metrics::disable();
        metrics::reset();
        (res, counters)
    };
    let (ref_res, ref_counters) = run(1);
    // The spectral.* counter contract: every node evaluation, the
    // single post-merge solve, the coefficient count and the surrogate
    // sample count are all tallied — next to the mc.* tallies of the
    // node campaign underneath and the SpectralSolve phase timer's call
    // count (timings themselves are run-dependent and excluded).
    let nodes = ref_res.nodes_evaluated;
    let coeffs = ref_res.coefficients.len();
    for needle in [
        format!("\"spectral.nodes_evaluated\": {nodes}"),
        "\"spectral.solves\": 1".to_string(),
        format!("\"spectral.coefficients\": {coeffs}"),
        format!(
            "\"spectral.surrogate_samples\": {}",
            linvar::stats::SURROGATE_SAMPLES
        ),
        format!("\"mc.samples_completed\": {nodes}"),
        "\"phase.spectral_solve.calls\": 1".to_string(),
    ] {
        assert!(
            ref_counters.contains(&needle),
            "missing {needle} in:\n{ref_counters}"
        );
    }
    for threads in [2usize, 8] {
        let (res, counters) = run(threads);
        assert_eq!(
            counters, ref_counters,
            "spectral counters diverged at {threads} threads"
        );
        assert_eq!(
            res.coefficients
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>(),
            ref_res
                .coefficients
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>(),
            "instrumentation must not perturb the coefficients ({threads} threads)"
        );
    }
}

#[test]
fn shard_counters_are_identical_across_thread_counts() {
    use linvar::stats::ShardConfig;
    let _guard = metrics::test_lock();
    let model = s27_model();
    let sources = VariationSources::example3(0.33, 0.33);
    let cfg = ShardConfig {
        n_shards: 2,
        ..ShardConfig::default()
    };
    let run = |threads: usize| {
        metrics::reset();
        metrics::enable();
        let res = model
            .monte_carlo_sharded(
                &sources,
                N_SAMPLES,
                MASTER_SEED,
                threads,
                RecoveryPolicy::default(),
                &cfg,
            )
            .expect("sharded run");
        metrics::flush_local();
        let counters = metrics::snapshot().counters_json();
        metrics::disable();
        metrics::reset();
        (res, counters)
    };
    let (ref_res, ref_counters) = run(1);
    assert_eq!(ref_res.failures, 0, "{:?}", ref_res.first_error);
    // The supervisor's own counters are in the report next to the inner
    // campaigns' mc.* tallies (which must match an unsharded run —
    // shard accounting never inflates the sample bookkeeping).
    for needle in [
        "\"shard.launched\": 2",
        "\"shard.completed\": 2",
        "\"shard.merged_samples\": 8",
        "\"shard.retries\": 0",
        "\"shard.redispatched\": 0",
        "\"shard.faults_injected\": 0",
        "\"shard.merge_duplicates\": 0",
        "\"phase.shard_run.calls\": 2",
        "\"mc.samples_completed\": 8",
    ] {
        assert!(
            ref_counters.contains(needle),
            "missing {needle} in:\n{ref_counters}"
        );
    }
    for threads in [2usize, 8] {
        let (res, counters) = run(threads);
        assert_eq!(
            counters, ref_counters,
            "shard counters diverged at {threads} threads"
        );
        assert_eq!(
            res.delays.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            ref_res
                .delays
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>(),
            "sharded results must not depend on the thread count"
        );
    }
}
