//! Failure-injection tests: every layer must turn bad inputs into typed
//! errors, never panics, hangs or silent garbage.

use linvar::circuit::{parse_deck, CircuitError, Netlist, SourceWaveform};
use linvar::prelude::*;
use linvar::spice::{SpiceError, Transient, TransientOptions};

#[test]
fn floating_subnetwork_reports_singular_matrix() {
    // A load with a completely floating line (no driver conductance, no DC
    // path) must fail characterization with a singular-matrix error, not
    // hang or produce NaNs.
    use linvar::interconnect::builder::build_coupled_lines;
    let spec = CoupledLineSpec::new(2, 10e-6, WireTech::m018());
    let built = build_coupled_lines(&spec).expect("builds");
    let tech = tech_018();
    // Drive only line 0 — line 1 floats.
    let res = StageModel::build(
        &built.netlist,
        &[built.inputs[0]],
        &tech,
        ReductionMethod::Prima { order: 6 },
        0.02,
    );
    match res {
        Err(linvar::teta::TetaError::Numeric(linvar::numeric::NumericError::SingularMatrix {
            ..
        })) => {}
        other => panic!("expected singular-matrix error, got {other:?}"),
    }
}

#[test]
fn nonsense_decks_produce_line_numbered_errors() {
    for (deck, needle) in [
        ("R1 a b -5", "positive"),
        ("C1 a b 1p q=2", "undeclared"),
        ("flub", "unknown element"),
        ("V1 a 0 SIN 1 2", "unknown source"),
        (".weird", "unknown directive"),
    ] {
        match parse_deck(deck) {
            Err(CircuitError::ParseError { line: 1, message }) => {
                assert!(
                    message.to_lowercase().contains(needle),
                    "deck {deck:?}: message {message:?} missing {needle:?}"
                );
            }
            other => panic!("deck {deck:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn transient_on_shorted_vsources_fails_cleanly() {
    // Two ideal voltage sources fighting on the same node: singular MNA.
    let mut nl = Netlist::new();
    let a = nl.node("a");
    nl.add_vsource("V1", a, Netlist::GROUND, SourceWaveform::Dc(1.0))
        .unwrap();
    nl.add_vsource("V2", a, Netlist::GROUND, SourceWaveform::Dc(2.0))
        .unwrap();
    nl.add_resistor("R", a, Netlist::GROUND, 100.0).unwrap();
    let opts = TransientOptions::new(1e-9, 1e-12);
    let res = Transient::new(&nl, &opts).unwrap().run();
    assert!(
        matches!(res, Err(SpiceError::Numeric(_))),
        "conflicting sources must fail: {res:?}"
    );
}

#[test]
fn divergent_stage_is_an_error_not_a_hang() {
    use linvar::mor::PoleResidueModel;
    use linvar::numeric::{CMatrix, Complex, Matrix};
    use linvar::teta::engine::DriverSpec;
    use linvar::teta::{StageSolver, StageSolverOptions};
    // Hand the solver a stable-but-pathological load whose instantaneous
    // impedance is enormous: the SC fixed point cannot contract.
    let mut r = CMatrix::zeros(1, 1);
    r[(0, 0)] = Complex::from_real(1e20);
    let load = PoleResidueModel {
        poles: vec![Complex::from_real(-1e6)],
        residues: vec![r],
        direct: Matrix::zeros(1, 1),
    };
    let tech = tech_018();
    let nmos = tech.library.get(&tech.library.nmos_name()).unwrap().clone();
    let pmos = tech.library.get(&tech.library.pmos_name()).unwrap().clone();
    let driver = DriverSpec {
        port: 0,
        input: Waveform::ramp(0.0, 1.8, 10e-12, 30e-12),
        nmos,
        pmos,
        wn: tech.wn,
        wp: tech.wp,
        length: tech.library.lmin,
        g_out: 1e-3,
    };
    let opts = StageSolverOptions::new(1.8, 1e-9, 1e-12);
    let res = StageSolver::new(&load, vec![driver], opts).unwrap().run();
    assert!(
        matches!(res, Err(linvar::teta::TetaError::ScDivergence { .. })),
        "expected SC divergence, got {res:?}"
    );
}

#[test]
fn empty_path_and_unknown_cells_rejected() {
    let tech = tech_018();
    let wire = WireTech::m018();
    for cells in [vec![], vec!["flipflop9000".to_string()]] {
        let spec = PathSpec {
            cells,
            linear_elements_between_stages: 10,
            input_slew: 50e-12,
        };
        assert!(matches!(
            PathModel::build(&spec, &tech, &wire),
            Err(CoreError::BadSpec(_))
        ));
    }
}

#[test]
fn mc_reports_partial_failures_instead_of_aborting() {
    // monte_carlo must count per-sample failures, not abort the run.
    let samples: Vec<f64> = (0..20).map(|k| k as f64).collect();
    let res = linvar::stats::monte_carlo(&samples, |&x| {
        if (x as usize).is_multiple_of(5) {
            Err("corner blew up")
        } else {
            Ok(x)
        }
    });
    assert_eq!(res.failures, 4);
    assert_eq!(res.values.len(), 16);
    // The diagnostics must name the failing samples and keep the
    // lowest-index error message for the caller to report.
    assert_eq!(res.failed_indices, vec![0, 5, 10, 15]);
    assert_eq!(res.first_error.as_deref(), Some("corner blew up"));
}

#[test]
fn parallel_mc_reports_identical_diagnostics() {
    // The parallel driver must produce the same failure bookkeeping as the
    // serial one, independent of worker count and scheduling.
    let samples: Vec<f64> = (0..20).map(|k| k as f64).collect();
    let eval = |&x: &f64| {
        if (x as usize).is_multiple_of(5) {
            Err(format!("corner {x} blew up"))
        } else {
            Ok(x)
        }
    };
    let serial = linvar::stats::monte_carlo(&samples, eval);
    for threads in [1, 2, 8] {
        let par = linvar::stats::monte_carlo_par(&samples, threads, eval);
        assert_eq!(par.failures, serial.failures);
        assert_eq!(par.failed_indices, serial.failed_indices);
        assert_eq!(par.first_error, serial.first_error);
        assert_eq!(par.values, serial.values);
    }
}

#[test]
fn worker_panic_is_contained_and_counted() {
    // A panicking evaluator must never tear down the run (or poison other
    // workers): the panic is caught, converted to a counted failure, and
    // every healthy sample still produces its value.
    let samples: Vec<usize> = (0..32).collect();
    for threads in [1, 4] {
        let res = linvar::stats::monte_carlo_par(&samples, threads, |&k| {
            if k == 13 {
                panic!("injected worker panic at sample {k}");
            }
            Ok::<f64, String>(k as f64)
        });
        assert_eq!(res.failures, 1, "threads={threads}");
        assert_eq!(res.failed_indices, vec![13]);
        assert_eq!(res.values.len(), 31);
        let diag = res.first_error.expect("panic recorded as diagnostic");
        assert!(diag.contains("panic"), "diagnostic {diag:?}");
        assert!(diag.contains("13"), "diagnostic {diag:?}");
    }
}

#[test]
fn mutated_variational_model_reports_dimension_mismatch() {
    // Inconsistent post-assembly mutation of a variational model — a
    // sensitivity matrix of the wrong shape — must surface as a typed
    // dimension error from `eval`, not an index panic.
    use linvar::interconnect::builder::build_coupled_lines;
    use linvar::numeric::{Matrix, NumericError};
    let spec = CoupledLineSpec::new(2, 10e-6, WireTech::m018());
    let built = build_coupled_lines(&spec).expect("builds");
    let mut var = built.netlist.assemble_variational().expect("assembles");
    assert!(!var.dg.is_empty(), "model carries sensitivities");
    var.dg[0] = Matrix::zeros(1, 1); // wrong shape
    let res = var.eval(&[1.0, 0.0, 0.0, 0.0, 0.0]);
    assert!(
        matches!(res, Err(NumericError::DimensionMismatch { .. })),
        "expected dimension mismatch, got {res:?}"
    );
}

#[test]
fn all_failed_policy_run_reports_health_instead_of_panicking() {
    // A run where every sample exhausts its budget is still a result:
    // the health summary is the product, and nothing panics.
    use linvar::stats::monte_carlo_par_with_policy;
    let samples: Vec<usize> = (0..16).collect();
    let policy = RecoveryPolicy::default();
    let res = monte_carlo_par_with_policy(&samples, 4, policy, |&k, attempt| {
        Err::<(f64, SampleStatus), String>(format!("sample {k} attempt {attempt} refused"))
    });
    assert_eq!(res.health.n_failed, 16);
    assert_eq!(res.health.total(), 16);
    assert!(res.values.is_empty());
    assert_eq!(res.failed_indices.len(), 16);
    assert!(res
        .sample_health
        .iter()
        .all(|h| h.attempts == policy.attempt_budget()));
    let diag = res.first_error.expect("lowest-index diagnostic kept");
    assert!(diag.contains("sample 0"), "{diag}");
}

#[test]
fn eigen_and_lu_reject_pathological_inputs() {
    use linvar::numeric::{eigen_decompose, eigenvalues, LuFactor, Matrix, NumericError};
    // NaN contamination.
    let mut a = Matrix::identity(3);
    a[(1, 2)] = f64::INFINITY;
    assert!(matches!(
        eigenvalues(&a),
        Err(NumericError::InvalidInput(_))
    ));
    // Exactly singular.
    let z = Matrix::zeros(4, 4);
    assert!(matches!(
        LuFactor::new(&z),
        Err(NumericError::SingularMatrix { .. })
    ));
    // Non-square everywhere.
    let rect = Matrix::zeros(2, 5);
    assert!(eigen_decompose(&rect).is_err());
}
