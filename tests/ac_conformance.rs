//! Frequency-domain vROM conformance suite: the variational reduced-order
//! model's transfer function H(jω) must track the full-order complex-MNA
//! AC solve point-by-point over a log-frequency sweep, on the paper's
//! Example-2 coupled-line structures, at the nominal geometry and at
//! fluctuation corners.
//!
//! Every (circuit, corner) row carries its own magnitude and phase
//! budgets — reduction error plus the vROM's first-order sensitivity
//! error both land here, so corner rows get wider budgets than nominal
//! rows — and a violation reports the whole per-frequency table in the
//! `tests/engine_agreement.rs` style, not just the first bad point.
//!
//! The AC path is linear-only by design; the suite also pins the typed
//! rejection of transistor netlists (the `s27`-class benchmarks go
//! through TETA linearization first, never raw AC).

use linvar::interconnect::builder::build_coupled_lines;
use linvar::interconnect::{CoupledLineSpec, WireTech};
use linvar::mor::{ReductionMethod, VariationalRom};
use linvar::numeric::{Complex, SolverChoice};
use linvar::spice::{ac_impedance_with, log_frequencies};

const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

/// Driver source impedance folded into every structure: the coupled-line
/// builders produce floating RC lines (G alone is singular — fine for
/// transient with a voltage driver, not for PRIMA's G⁻¹ moments), so each
/// line gets a physical driver resistor to ground at its near end. Both
/// the vROM and the full-order reference see the same element.
const R_DRIVER: f64 = 1e3;

/// Builds one Example-2 coupled-line structure with driver resistors and
/// returns the netlist plus the first line's near-end node.
fn driven_lines(
    n_lines: usize,
    length: f64,
) -> (linvar::circuit::Netlist, linvar::circuit::NodeId) {
    let spec = CoupledLineSpec::new(n_lines, length, WireTech::m018());
    let built = build_coupled_lines(&spec).expect("example-2 structure builds");
    let mut nl = built.netlist;
    for (k, &input) in built.inputs.iter().enumerate() {
        nl.add_resistor(
            &format!("Rdrv{k}"),
            input,
            linvar::circuit::Netlist::GROUND,
            R_DRIVER,
        )
        .expect("driver resistor");
    }
    (nl, built.inputs[0])
}

struct Row {
    label: &'static str,
    n_lines: usize,
    length: f64,
    /// Normalized W/T/S/H/ρ fluctuation sample the row is evaluated at.
    w: [f64; 5],
    /// PRIMA reduced order.
    order: usize,
    /// Relative magnitude budget per frequency point.
    mag_budget: f64,
    /// Phase budget per frequency point (degrees).
    phase_budget_deg: f64,
}

/// Evaluates one conformance row: reduce the variational netlist once,
/// then compare `rom.transfer_at(w, jω)` against the full-order AC solve
/// of the netlist *frozen at the same sample* across the sweep. Returns
/// the per-frequency report lines and the violation count.
fn run_row(row: &Row, freqs: &[f64]) -> (String, usize) {
    let (nl, port_node) = driven_lines(row.n_lines, row.length);
    let var = nl
        .assemble_variational()
        .expect("variational MNA assembles");
    let rom = VariationalRom::characterize(&var, ReductionMethod::Prima { order: row.order }, 0.02)
        .expect("vROM characterizes");

    // The driving-point port: the first line's near end. The vROM's port
    // ordering follows the netlist's mark order, so locate it by MNA row.
    let port_name = nl.node_name(port_node).expect("port is named").to_string();
    let port_row = port_node.mna_index().expect("port is not ground");
    let port_k = var
        .port_indices
        .iter()
        .position(|&r| r == port_row)
        .expect("near end is marked as a port");

    // Full-order reference: complex MNA of the netlist frozen at w —
    // the same recovery ladder and backends the engine itself uses.
    let frozen = nl.frozen_at(&row.w);
    let z_full = ac_impedance_with(&frozen, &port_name, freqs, SolverChoice::Sparse)
        .expect("full-order AC sweep");

    let mut table = String::new();
    let mut violations = 0usize;
    for (i, &f) in freqs.iter().enumerate() {
        let s = Complex::new(0.0, TWO_PI * f);
        let z_rom = rom.transfer_at(&row.w, s).expect("vROM transfer")[(port_k, port_k)];
        let mag_err = (z_rom.abs() - z_full[i].abs()).abs() / z_full[i].abs();
        let mut phase_err_deg = (z_rom.arg() - z_full[i].arg()).abs().to_degrees();
        if phase_err_deg > 180.0 {
            phase_err_deg = 360.0 - phase_err_deg;
        }
        let ok = mag_err <= row.mag_budget && phase_err_deg <= row.phase_budget_deg;
        if !ok {
            violations += 1;
        }
        table.push_str(&format!(
            "{:<26} f {:>9.3e}  |H| rom {:>10.4e} full {:>10.4e}  mag err {:>6.3}% (budget {:>5.2}%)  \
             phase err {:>6.3}° (budget {:>4.1}°)  {}\n",
            row.label,
            f,
            z_rom.abs(),
            z_full[i].abs(),
            mag_err * 100.0,
            row.mag_budget * 100.0,
            phase_err_deg,
            row.phase_budget_deg,
            if ok { "ok" } else { "FAIL" }
        ));
    }
    (table, violations)
}

/// The conformance table. Budgets: nominal rows carry the pure reduction
/// error (PRIMA moment matching is tight in-band — 1 %, 1°); corner rows
/// add the vROM's first-order sensitivity error at 1σ fluctuations
/// (3 %, 3°) and at an aggressive mixed 2σ corner (6 %, 5°).
#[test]
fn vrom_transfer_matches_full_order_ac_sweep() {
    let rows = [
        Row {
            label: "line1x40 nominal",
            n_lines: 1,
            length: 40e-6,
            w: [0.0; 5],
            order: 8,
            mag_budget: 0.01,
            phase_budget_deg: 1.0,
        },
        Row {
            label: "chain2x60 nominal",
            n_lines: 2,
            length: 60e-6,
            w: [0.0; 5],
            order: 10,
            mag_budget: 0.01,
            phase_budget_deg: 1.0,
        },
        Row {
            label: "chain2x60 +1σ corner",
            n_lines: 2,
            length: 60e-6,
            w: [0.33, 0.33, 0.33, 0.33, 0.33],
            order: 10,
            mag_budget: 0.03,
            phase_budget_deg: 3.0,
        },
        Row {
            label: "chain2x60 -1σ corner",
            n_lines: 2,
            length: 60e-6,
            w: [-0.33, -0.33, -0.33, -0.33, -0.33],
            order: 10,
            mag_budget: 0.03,
            phase_budget_deg: 3.0,
        },
        Row {
            label: "chain2x60 mixed 2σ",
            n_lines: 2,
            length: 60e-6,
            w: [0.66, -0.66, 0.33, -0.33, 0.66],
            order: 10,
            mag_budget: 0.06,
            phase_budget_deg: 5.0,
        },
    ];
    // Three decades up to the structures' multi-GHz knee.
    let freqs = log_frequencies(1e7, 1e10, 12);
    let mut full_table = String::new();
    let mut total_violations = 0usize;
    for row in &rows {
        let (table, violations) = run_row(row, &freqs);
        full_table.push_str(&table);
        total_violations += violations;
    }
    assert_eq!(
        total_violations, 0,
        "vROM/full-order AC conformance budget exceeded:\n{full_table}"
    );
}

/// The dense and sparse complex-MNA backends must agree on the full-order
/// sweep itself to near machine precision — the conformance reference is
/// backend-independent.
#[test]
fn full_order_reference_is_backend_independent() {
    let (nl, port_node) = driven_lines(2, 60e-6);
    let port = nl.node_name(port_node).expect("port is named").to_string();
    let frozen = nl.frozen_at(&[0.33, -0.33, 0.0, 0.33, -0.33]);
    let freqs = log_frequencies(1e7, 1e10, 8);
    let zd = ac_impedance_with(&frozen, &port, &freqs, SolverChoice::Dense).expect("dense sweep");
    let zs = ac_impedance_with(&frozen, &port, &freqs, SolverChoice::Sparse).expect("sparse sweep");
    for (k, (d, s)) in zd.iter().zip(&zs).enumerate() {
        let err = (*d - *s).abs() / d.abs().max(1e-30);
        assert!(err < 1e-9, "f[{k}]: dense {d} vs sparse {s} (rel {err:e})");
    }
}

/// AC analysis is for linear netlists: a transistor stage (the s27-class
/// benchmarks are MOSFET netlists) must be rejected with a typed error,
/// never linearized silently.
#[test]
fn transistor_netlists_are_rejected_typed() {
    use linvar::circuit::{MosType, Netlist, SourceWaveform};
    use linvar::devices::tech_018;
    use linvar::spice::{ac_analysis, SpiceError};
    let tech = tech_018();
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource("Vdd", vdd, Netlist::GROUND, SourceWaveform::Dc(1.8))
        .unwrap();
    nl.add_vsource("Vin", inp, Netlist::GROUND, SourceWaveform::Dc(0.9))
        .unwrap();
    nl.add_mosfet(
        "MN",
        out,
        inp,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        &tech.library.nmos_name(),
        tech.wn,
        tech.library.lmin,
    )
    .unwrap();
    let res = ac_analysis(&nl, "Vin", &["out"], &[1e6]);
    assert!(
        matches!(res, Err(SpiceError::BadCircuit(_))),
        "MOSFET netlist must be a typed AC rejection, got {res:?}"
    );
}
