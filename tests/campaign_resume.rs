//! Kill-and-resume determinism of the durable campaign runner.
//!
//! The contract (DESIGN.md, "Durable campaigns: checkpoint format &
//! resume invariants"): a campaign interrupted at an arbitrary point and
//! resumed from its snapshot produces a `Summary` and `HealthSummary`
//! **bitwise-identical** to an uninterrupted run, at any worker count.
//! These tests drop campaigns mid-flight at several cut points — using
//! the deterministic `sample_budget` preemption — resume them, and
//! compare everything against uninterrupted references at 1, 2 and 8
//! threads, both on a synthetic workload (dense cut-point coverage) and
//! through the full `PathModel` framework surface.

use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_core::{CampaignConfig, CampaignVerdict, McCampaignResult, RecoveryPolicy};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_stats::{run_campaign, CampaignFingerprint, CampaignResult, SampleStatus, Summary};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let k = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "linvar-campaign-resume-{}-{tag}-{k}.ckpt",
        std::process::id()
    ))
}

fn assert_summaries_bitwise(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    for (x, y, field) in [
        (a.mean, b.mean, "mean"),
        (a.std, b.std, "std"),
        (a.min, b.min, "min"),
        (a.max, b.max, "max"),
        (a.std_err_mean, b.std_err_mean, "std_err_mean"),
        (a.rel_err_std, b.rel_err_std, "rel_err_std"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {field}");
    }
}

// ---------------------------------------------------------------------
// Synthetic workload: cheap evaluator, dense cut points, mixed health.
// ---------------------------------------------------------------------

const SYNTH_N: usize = 24;

fn synth_fingerprint() -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: 7,
        n_samples: SYNTH_N,
        policy: RecoveryPolicy::default(),
        model: linvar_stats::fingerprint_str("campaign-resume-synthetic"),
    }
}

/// Deterministic evaluator with a mixed health profile: most samples are
/// clean, every 7th needs a retry, every 11th degrades, sample 13 fails
/// outright.
fn synth_eval(k: &usize, attempt: usize) -> Result<(f64, SampleStatus), String> {
    let k = *k;
    if k == 13 {
        return Err(format!("sample {k} is unserviceable (attempt {attempt})"));
    }
    if k.is_multiple_of(7) && k > 0 && attempt == 0 {
        return Err(format!("sample {k} fast path failed"));
    }
    // Succeeds only on the final (fallback) attempt of the default
    // policy's 4-attempt budget → classified Degraded.
    if k.is_multiple_of(11) && k > 0 && attempt < 3 {
        return Err(format!("sample {k} needs the fallback"));
    }
    Ok(((k as f64).sin() * 1e-10 + 2e-10, SampleStatus::Clean))
}

fn synth_run(threads: usize, config: &CampaignConfig) -> CampaignResult {
    let samples: Vec<usize> = (0..SYNTH_N).collect();
    run_campaign(
        &samples,
        threads,
        RecoveryPolicy::default(),
        config,
        synth_fingerprint(),
        synth_eval,
    )
    .expect("campaign runs")
}

#[test]
fn synthetic_kill_and_resume_is_bitwise_identical() {
    let clean = synth_run(1, &CampaignConfig::default());
    assert!(clean.failures > 0, "the profile must exercise failures");
    assert!(clean.health.n_recovered > 0 && clean.health.n_degraded > 0);
    let clean_bits: Vec<u64> = clean.values.iter().map(|v| v.to_bits()).collect();

    for cut in [0, 1, SYNTH_N / 2, SYNTH_N - 1, SYNTH_N] {
        for threads in [1, 2, 8] {
            let path = tmp_path(&format!("synth-{cut}-{threads}"));
            let first = synth_run(
                threads,
                &CampaignConfig {
                    checkpoint: Some(path.clone()),
                    sample_budget: Some(cut),
                    checkpoint_every: 4,
                    ..CampaignConfig::default()
                },
            );
            if cut < SYNTH_N {
                assert!(
                    matches!(first.verdict, CampaignVerdict::Truncated { .. }),
                    "cut={cut} threads={threads} should truncate"
                );
            }
            // Partial statistics are valid over the completed prefix of
            // work: count matches what was evaluated.
            assert_eq!(first.completed, first.summary.n + first.failures);
            let second = synth_run(
                threads,
                &CampaignConfig {
                    checkpoint: Some(path.clone()),
                    resume: Some(path.clone()),
                    ..CampaignConfig::default()
                },
            );
            assert_eq!(second.verdict, CampaignVerdict::Complete);
            assert_eq!(second.resumed, first.completed);
            let bits: Vec<u64> = second.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, clean_bits, "values at cut={cut} threads={threads}");
            assert_summaries_bitwise(
                &second.summary,
                &clean.summary,
                &format!("cut={cut} threads={threads}"),
            );
            assert_eq!(second.health, clean.health, "cut={cut} threads={threads}");
            assert_eq!(second.sample_health, clean.sample_health);
            assert_eq!(second.failed_indices, clean.failed_indices);
            assert_eq!(second.first_error, clean.first_error);
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn synthetic_double_interruption_chains() {
    // Two successive interruptions before completion: 0..8, 8..16, rest.
    let clean = synth_run(1, &CampaignConfig::default());
    let path = tmp_path("synth-chain");
    let mut last = None;
    for leg in 0..3 {
        let res = synth_run(
            2,
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                resume: if leg == 0 { None } else { Some(path.clone()) },
                sample_budget: if leg < 2 { Some(8) } else { None },
                ..CampaignConfig::default()
            },
        );
        last = Some(res);
    }
    let last = last.expect("three legs ran");
    assert_eq!(last.verdict, CampaignVerdict::Complete);
    assert_eq!(last.resumed, 16);
    assert_summaries_bitwise(&last.summary, &clean.summary, "chained resume");
    assert_eq!(last.health, clean.health);
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Framework surface: PathModel::monte_carlo_campaign.
// ---------------------------------------------------------------------

fn small_path() -> PathModel {
    let spec = PathSpec {
        cells: vec!["inv".into(), "nand2".into(), "inv".into()],
        linear_elements_between_stages: 10,
        input_slew: 50e-12,
    };
    PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("path builds")
}

fn path_run(model: &PathModel, threads: usize, config: &CampaignConfig) -> McCampaignResult {
    model
        .monte_carlo_campaign(
            &VariationSources::example3(0.33, 0.33),
            8,
            21,
            threads,
            RecoveryPolicy::default(),
            config,
        )
        .expect("campaign runs")
}

#[test]
fn path_model_kill_and_resume_is_bitwise_identical() {
    let model = small_path();
    let clean = path_run(&model, 1, &CampaignConfig::default());
    assert_eq!(clean.verdict, CampaignVerdict::Complete);
    assert_eq!(clean.completed, 8);
    let clean_bits: Vec<u64> = clean.delays.iter().map(|d| d.to_bits()).collect();

    for threads in [1, 2, 8] {
        let path = tmp_path(&format!("path-{threads}"));
        let first = path_run(
            &model,
            threads,
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                sample_budget: Some(3),
                checkpoint_every: 2,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(first.verdict, CampaignVerdict::Truncated { remaining: 5 });
        assert_eq!(first.completed, 3);
        assert!(first.checkpoints_written >= 1);
        let second = path_run(
            &model,
            threads,
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                resume: Some(path.clone()),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(second.verdict, CampaignVerdict::Complete);
        assert_eq!(second.resumed, 3);
        assert_eq!(second.evaluated, 5);
        let bits: Vec<u64> = second.delays.iter().map(|d| d.to_bits()).collect();
        assert_eq!(bits, clean_bits, "delays at {threads} threads");
        assert_summaries_bitwise(&second.summary, &clean.summary, "path model");
        assert_eq!(second.health, clean.health);
        assert_eq!(second.sample_health, clean.sample_health);
        std::fs::remove_file(&path).ok();
    }

    // The campaign driver agrees with the plain parallel driver on a
    // clean run — the checkpoint machinery adds no numerical drift.
    let plain = model
        .monte_carlo_par(&VariationSources::example3(0.33, 0.33), 8, 21, 2)
        .expect("plain mc runs");
    let plain_bits: Vec<u64> = plain.delays.iter().map(|d| d.to_bits()).collect();
    assert_eq!(plain_bits, clean_bits);
}

#[test]
fn path_model_deadline_truncation_is_graceful_and_resumable() {
    let model = small_path();
    let path = tmp_path("path-deadline");
    let first = path_run(
        &model,
        2,
        &CampaignConfig {
            checkpoint: Some(path.clone()),
            deadline: Some(std::time::Duration::ZERO),
            ..CampaignConfig::default()
        },
    );
    // Valid partial statistics (here: empty) plus a Truncated verdict.
    assert_eq!(first.verdict, CampaignVerdict::Truncated { remaining: 8 });
    assert_eq!(first.summary.n, 0);
    assert_eq!(first.completed, 0);
    // The final snapshot exists and resumes to completion.
    let clean = path_run(&model, 1, &CampaignConfig::default());
    let second = path_run(
        &model,
        8,
        &CampaignConfig {
            resume: Some(path.clone()),
            ..CampaignConfig::default()
        },
    );
    assert_eq!(second.verdict, CampaignVerdict::Complete);
    assert_summaries_bitwise(&second.summary, &clean.summary, "deadline resume");
    std::fs::remove_file(&path).ok();
}
