//! Golden fixture for the `chains` benchmark rows: the exact `mc` stat
//! lines of the quick suite, pinned byte-for-byte, plus the raw `f64`
//! bit patterns of the sparse-backend statistics behind them.
//!
//! The determinism contract is asserted *before* the fixture compare:
//!
//! * 1, 2 and 8 Monte-Carlo worker threads reproduce the same delay
//!   values bit-for-bit (streamed LHS sampling + deterministic merge);
//! * the dense and sparse solver backends print the same `mc` row (their
//!   ~1e-10 relative difference vanishes at `%.6e`), pinned per-run via
//!   `TransientOptions::solver` rather than the process-global
//!   `LINVAR_SOLVER` so parallel test binaries cannot race on the env.
//!
//! Regenerate after an intended numeric change with:
//!
//! ```sh
//! LINVAR_BLESS=1 cargo test --test golden_chains
//! ```

use linvar_bench::chains::{mc_line, run_case, sample_set};
use linvar_interconnect::{htree_case, rc_chain_case};
use linvar_numeric::SolverChoice;
use std::fmt::Write as _;
use std::path::PathBuf;

/// `f64` as its 16-hex-digit bit pattern (the benches' `bits_hex` form).
fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chains_rows.txt")
}

fn check_or_bless(rows: &[(String, String)]) {
    let mut rendered =
        String::from("# Golden fixture: exact f64 bit patterns (LINVAR_BLESS=1 regenerates).\n");
    for (k, v) in rows {
        let _ = writeln!(rendered, "{k} = {v}");
    }
    let path = fixture_path();
    if std::env::var("LINVAR_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             `LINVAR_BLESS=1 cargo test --test golden_chains`",
            path.display()
        )
    });
    if expected != rendered {
        let diff = expected
            .lines()
            .zip(rendered.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("first difference:\n  golden: {a}\n  actual: {b}"))
            .unwrap_or_else(|| "line counts differ".to_string());
        panic!(
            "golden chains fixture drifted — solver numerics changed. {diff}\n\
             If the change is intended, regenerate with \
             `LINVAR_BLESS=1 cargo test --test golden_chains` and commit the diff."
        );
    }
}

/// One test covers every backend × thread-count combination so nothing
/// in the binary mutates shared process state concurrently.
#[test]
fn golden_chains_rows_across_backends_and_threads() {
    let samples = sample_set(6); // matches the bin's --quick campaign
    let cases = [rc_chain_case(500).unwrap(), htree_case(4).unwrap()];
    let mut rows = Vec::new();
    for case in &cases {
        let base = run_case(case, &samples, 1, SolverChoice::Sparse).unwrap();
        let base_line = mc_line(&case.name, &base.summary, base.failures);
        // Thread sweep: bitwise-identical values, hence identical rows.
        for threads in [2, 8] {
            let mc = run_case(case, &samples, threads, SolverChoice::Sparse).unwrap();
            assert_eq!(
                mc.values, base.values,
                "{}: sparse values differ between 1 and {threads} threads",
                case.name
            );
            assert_eq!(mc_line(&case.name, &mc.summary, mc.failures), base_line);
        }
        // Backend sweep: dense is feasible at these quick-suite sizes and
        // must print the very same bytes.
        let dense = run_case(case, &samples, 2, SolverChoice::Dense).unwrap();
        assert_eq!(
            mc_line(&case.name, &dense.summary, dense.failures),
            base_line,
            "{}: dense and sparse mc rows diverged",
            case.name
        );
        rows.push((format!("{}.line", case.name), base_line));
        rows.push((format!("{}.mean", case.name), hex(base.summary.mean)));
        rows.push((format!("{}.std", case.name), hex(base.summary.std)));
        for (i, d) in base.values.iter().enumerate() {
            rows.push((format!("{}.delay.{i}", case.name), hex(*d)));
        }
    }
    check_or_bless(&rows);
}
