//! Property-based tests of the model-order-reduction invariants, using
//! randomized RC ladder/mesh generators.

use linvar::mor::{extract_pole_residue, prima_reduce, stabilize};
use linvar::numeric::{LuFactor, Matrix};
use proptest::prelude::*;

/// Builds a random grounded RC ladder's (G, C, B) from proptest inputs.
fn ladder(n: usize, r_vals: &[f64], c_vals: &[f64], g_drive: f64) -> (Matrix, Matrix, Matrix) {
    let mut g = Matrix::zeros(n, n);
    let mut c = Matrix::zeros(n, n);
    for i in 1..n {
        let gv = 1.0 / r_vals[i % r_vals.len()];
        g[(i, i)] += gv;
        g[(i - 1, i - 1)] += gv;
        g[(i, i - 1)] -= gv;
        g[(i - 1, i)] -= gv;
    }
    g[(0, 0)] += g_drive;
    for i in 0..n {
        c[(i, i)] = c_vals[i % c_vals.len()];
    }
    let mut b = Matrix::zeros(n, 1);
    b[(0, 0)] = 1.0;
    (g, c, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PRIMA matches the DC impedance (zeroth moment) of any RC ladder.
    #[test]
    fn prima_preserves_dc(
        n in 5usize..30,
        r in prop::collection::vec(1.0f64..100.0, 3),
        c in prop::collection::vec(1e-15f64..1e-12, 3),
        g_drive in 1e-4f64..1e-2,
    ) {
        let (g, cm, b) = ladder(n, &r, &c, g_drive);
        let rom = prima_reduce(&g, &cm, &b, 4).expect("reduces");
        let z_full = {
            let lu = LuFactor::new(&g).expect("nonsingular");
            b.transpose().mul_mat(&lu.solve_mat(&b).expect("solves"))[(0, 0)]
        };
        let z_red = rom.dc_impedance().expect("nonsingular")[(0, 0)];
        prop_assert!(
            (z_full - z_red).abs() < 1e-6 * z_full.abs(),
            "dc {} vs {}", z_full, z_red
        );
    }

    /// Nominal (congruence) reduction of a passive RC ladder is stable,
    /// and the pole/residue DC matches the matrix DC.
    #[test]
    fn nominal_reduction_stable_and_consistent(
        n in 5usize..25,
        r in prop::collection::vec(1.0f64..50.0, 4),
        c in prop::collection::vec(1e-14f64..1e-12, 4),
    ) {
        let (g, cm, b) = ladder(n, &r, &c, 1e-3);
        let rom = prima_reduce(&g, &cm, &b, 5).expect("reduces");
        let pr = extract_pole_residue(&rom).expect("extracts");
        prop_assert!(pr.is_stable(), "passive RC reduction must be stable");
        let dc_pr = pr.dc()[(0, 0)];
        let dc_rom = rom.dc_impedance().expect("nonsingular")[(0, 0)];
        prop_assert!(
            (dc_pr - dc_rom).abs() < 1e-5 * dc_rom.abs(),
            "dc {} vs {}", dc_pr, dc_rom
        );
    }

    /// The stability filter's output never contains unstable poles and
    /// preserves the DC value whenever any stable poles survive.
    #[test]
    fn stabilize_postconditions(
        n in 5usize..20,
        r in prop::collection::vec(1.0f64..50.0, 3),
        c in prop::collection::vec(1e-14f64..1e-12, 3),
        flip in 0usize..5,
    ) {
        let (g, cm, b) = ladder(n, &r, &c, 1e-3);
        let rom = prima_reduce(&g, &cm, &b, 5).expect("reduces");
        let mut pr = extract_pole_residue(&rom).expect("extracts");
        // Inject instability: flip the sign of some pole real parts (the
        // same corruption first-order variational truncation produces).
        let npoles = pr.poles.len();
        if npoles > 1 {
            for k in 0..flip.min(npoles - 1) {
                pr.poles[k].re = -pr.poles[k].re;
            }
        }
        let dc_before = pr.dc()[(0, 0)];
        let (stable, report) = stabilize(&pr);
        prop_assert!(stable.is_stable());
        prop_assert_eq!(
            report.removed_poles.len() + stable.pole_count(),
            pr.pole_count()
        );
        if stable.pole_count() > 0 && !report.was_stable() {
            let dc_after = stable.dc()[(0, 0)];
            prop_assert!(
                (dc_before - dc_after).abs() < 1e-6 * dc_before.abs().max(1e-12),
                "beta correction must preserve DC: {} vs {}", dc_before, dc_after
            );
        }
    }

    /// Z(jω) of the pole/residue form matches a direct complex solve of
    /// the reduced system at several frequencies.
    #[test]
    fn poleres_matches_direct_frequency_response(
        n in 6usize..20,
        r in prop::collection::vec(5.0f64..50.0, 3),
        c in prop::collection::vec(1e-14f64..5e-13, 3),
    ) {
        use linvar::numeric::{CLuFactor, CMatrix, Complex};
        let (g, cm, b) = ladder(n, &r, &c, 1e-3);
        let rom = prima_reduce(&g, &cm, &b, 6).expect("reduces");
        let pr = extract_pole_residue(&rom).expect("extracts");
        for &omega in &[1e8, 1e10] {
            let s = Complex::new(0.0, omega);
            let z_pr = pr.eval(s)[(0, 0)];
            let q = rom.order();
            let mut a = CMatrix::from_real(&rom.gr);
            for i in 0..q {
                for j in 0..q {
                    a[(i, j)] += s * Complex::from_real(rom.cr[(i, j)]);
                }
            }
            let rhs: Vec<Complex> = (0..q)
                .map(|i| Complex::from_real(rom.br[(i, 0)]))
                .collect();
            let x = CLuFactor::new(&a).expect("factors").solve(&rhs).expect("solves");
            let mut z_direct = Complex::ZERO;
            for (i, xi) in x.iter().enumerate() {
                z_direct += Complex::from_real(rom.br[(i, 0)]) * *xi;
            }
            prop_assert!(
                (z_pr - z_direct).abs() < 1e-5 * z_direct.abs().max(1e-12),
                "omega {}: {} vs {}", omega, z_pr, z_direct
            );
        }
    }
}
