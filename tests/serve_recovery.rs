//! Crash-recovery matrix for the campaign service: a `kill -9` (or its
//! in-process stand-in, `abort()`) at **every** injected fault window,
//! followed by a restart, must converge on a result line byte-identical
//! to an uninterrupted run.
//!
//! Child servers are this very test binary re-executed with
//! `LINVAR_SERVE_TEST_CHILD` set (the `child_server_entry` "test" is
//! the entry point), so the suite needs no external binaries. Faults
//! are armed through `LINVAR_SERVE_FAULT`, exactly as ci.sh arms them.

use linvar_core::ModelRegistry;
use linvar_metrics::Json;
use linvar_serve::{request, JsonGet, ServeConfig, ServeFault, Server};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CHILD_ENV: &str = "LINVAR_SERVE_TEST_CHILD";
const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

/// Re-exec entry point: a no-op test in the parent run; the child
/// server when `LINVAR_SERVE_TEST_CHILD=<jobs_dir>|<addr>` is set.
#[test]
fn child_server_entry() {
    let Ok(spec) = std::env::var(CHILD_ENV) else {
        return;
    };
    let (dir, addr) = spec.split_once('|').expect("spec is <jobs_dir>|<addr>");
    let mut config = ServeConfig::from_env(); // arms LINVAR_SERVE_FAULT
    config.addr = addr.to_string();
    config.jobs_dir = PathBuf::from(dir);
    config.workers = 1;
    let handle = Server::start(config, ModelRegistry::with_builtins()).expect("child start");
    handle.join();
    std::process::exit(0);
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("linvar-serve-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Grabs a free TCP port (bind-then-release; the tiny race is fine for
/// tests).
fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = l.local_addr().expect("probe addr");
    addr.to_string()
}

fn spawn_child(dir: &Path, addr: &str, fault: Option<&str>) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("child_server_entry")
        .arg("--exact")
        .arg("--nocapture")
        .env(CHILD_ENV, format!("{}|{addr}", dir.display()))
        .env_remove("LINVAR_SERVE_FAULT")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(f) = fault {
        cmd.env("LINVAR_SERVE_FAULT", f);
    }
    cmd.spawn().expect("spawn child server")
}

fn wait_healthy(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(resp) = request(addr, "GET", "/healthz", None, CLIENT_TIMEOUT) {
            if resp.status == 200 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "server never became healthy");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn submit_body(model: &str, seed: u64, n: usize) -> Json {
    let mut body = Json::obj();
    body.set("model", model)
        .set("seed", seed)
        .set("n", n as u64);
    body
}

/// Polls `/jobs/<id>/result` until terminal; returns the result line.
fn wait_result(addr: &str, id: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(resp) = request(
            addr,
            "GET",
            &format!("/jobs/{id}/result"),
            None,
            CLIENT_TIMEOUT,
        ) {
            if resp.status == 200 {
                assert_eq!(
                    resp.body.get_str("state"),
                    Some("done"),
                    "job finished abnormally: {}",
                    resp.body.render()
                );
                return resp
                    .body
                    .get_str("result")
                    .expect("result line")
                    .to_string();
            }
            assert_eq!(resp.status, 202, "unexpected status");
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn shutdown_and_reap(addr: &str, mut child: Child) {
    let _ = request(addr, "POST", "/shutdown", None, CLIENT_TIMEOUT);
    let status = child.wait().expect("child wait");
    assert!(
        status.success(),
        "graceful shutdown must exit 0: {status:?}"
    );
}

/// The uninterrupted reference: same campaign through an in-process
/// server (identical code path, fresh store).
fn reference_line(model: &str, seed: u64, n: usize) -> String {
    let dir = temp_dir(&format!("ref-{model}-{seed}-{n}"));
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        jobs_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let handle = Server::start(config, ModelRegistry::with_builtins()).expect("ref server");
    let addr = handle.addr().to_string();
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body(model, seed, n)),
        CLIENT_TIMEOUT,
    )
    .expect("ref submit");
    assert_eq!(resp.status, 200);
    let id = resp.body.get_str("job").expect("job id").to_string();
    let line = wait_result(&addr, &id, Duration::from_secs(60));
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    line
}

fn no_tmp_files(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .all(|e| e.path().extension().is_none_or(|ext| ext != "tmp"))
        })
        .unwrap_or(true)
}

// ---------------------------------------------------------------------------
// External kill -9 mid-campaign.
// ---------------------------------------------------------------------------

#[test]
fn kill9_mid_campaign_restart_resumes_byte_identically() {
    let dir = temp_dir("kill9");
    let addr = free_addr();
    let reference = reference_line("demo-slow", 7, 30);

    let mut child = spawn_child(&dir, &addr, None);
    wait_healthy(&addr);
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-slow", 7, 30)),
        CLIENT_TIMEOUT,
    )
    .expect("submit");
    assert_eq!(resp.status, 200);
    let id = resp.body.get_str("job").expect("job id").to_string();
    // Let the campaign get some checkpoints down, then kill -9.
    std::thread::sleep(Duration::from_millis(350));
    child.kill().expect("kill -9");
    let _ = child.wait();

    let child2 = spawn_child(&dir, &addr, None);
    wait_healthy(&addr);
    let line = wait_result(&addr, &id, Duration::from_secs(60));
    assert_eq!(line, reference, "resumed result must be byte-identical");
    shutdown_and_reap(&addr, child2);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Injected crash windows.
// ---------------------------------------------------------------------------

#[test]
fn crash_before_journal_loses_nothing_the_client_was_told() {
    let dir = temp_dir("beforejournal");
    let addr = free_addr();
    let reference = reference_line("demo-fast", 11, 48);

    let mut child = spawn_child(&dir, &addr, Some("crash-before-journal"));
    wait_healthy(&addr);
    // The submit dies mid-request: either a transport error or no
    // well-formed response — the client was never told "queued".
    let outcome = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-fast", 11, 48)),
        CLIENT_TIMEOUT,
    );
    assert!(
        outcome.is_err() || outcome.as_ref().map(|r| r.status) != Ok(200),
        "an acknowledged submit must imply a durable record"
    );
    let status = child.wait().expect("child wait");
    assert!(!status.success(), "the fault must have aborted the child");

    // Restart: no trace of the job (it was never journaled) — the
    // client's retry simply submits fresh and completes.
    let child2 = spawn_child(&dir, &addr, None);
    wait_healthy(&addr);
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-fast", 11, 48)),
        CLIENT_TIMEOUT,
    )
    .expect("retry submit");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body.get_bool("existing"),
        Some(false),
        "crash-before-journal must leave no record"
    );
    let id = resp.body.get_str("job").expect("job id").to_string();
    let line = wait_result(&addr, &id, Duration::from_secs(60));
    assert_eq!(line, reference);
    shutdown_and_reap(&addr, child2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_after_journal_recovers_the_job_the_client_never_heard_about() {
    let dir = temp_dir("afterjournal");
    let addr = free_addr();
    let reference = reference_line("demo-fast", 13, 48);

    let mut child = spawn_child(&dir, &addr, Some("crash-after-journal"));
    wait_healthy(&addr);
    let outcome = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-fast", 13, 48)),
        CLIENT_TIMEOUT,
    );
    assert!(
        outcome.is_err() || outcome.as_ref().map(|r| r.status) != Ok(200),
        "the crash fires before the response is written"
    );
    let status = child.wait().expect("child wait");
    assert!(!status.success());

    // Restart: the journaled job was re-queued by the recovery scan;
    // the client's retry dedups onto it instead of double-running.
    let child2 = spawn_child(&dir, &addr, None);
    wait_healthy(&addr);
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-fast", 13, 48)),
        CLIENT_TIMEOUT,
    )
    .expect("retry submit");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body.get_bool("existing"),
        Some(true),
        "the journaled job must already exist after restart"
    );
    let id = resp.body.get_str("job").expect("job id").to_string();
    let line = wait_result(&addr, &id, Duration::from_secs(60));
    assert_eq!(line, reference);
    shutdown_and_reap(&addr, child2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_checkpoint_reaps_torn_tmp_and_resumes_byte_identically() {
    let dir = temp_dir("midckpt");
    let addr = free_addr();
    let reference = reference_line("demo-slow", 17, 24);

    let mut child = spawn_child(&dir, &addr, Some("crash-mid-checkpoint"));
    wait_healthy(&addr);
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-slow", 17, 24)),
        CLIENT_TIMEOUT,
    )
    .expect("submit");
    assert_eq!(resp.status, 200);
    let id = resp.body.get_str("job").expect("job id").to_string();
    // The worker runs half the campaign, drops a torn *.tmp next to the
    // real snapshot, and aborts.
    let status = child.wait().expect("child wait");
    assert!(!status.success(), "the fault must have aborted the child");
    assert!(
        !no_tmp_files(&dir),
        "the crash window must have left a torn staging file"
    );

    let child2 = spawn_child(&dir, &addr, None);
    wait_healthy(&addr);
    let line = wait_result(&addr, &id, Duration::from_secs(60));
    assert_eq!(line, reference, "resume after torn checkpoint write");
    assert!(
        no_tmp_files(&dir),
        "the recovery scan must reap torn staging files"
    );
    shutdown_and_reap(&addr, child2);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Contained faults: the server survives them in-process.
// ---------------------------------------------------------------------------

#[test]
fn worker_panic_is_contained_and_the_job_still_completes() {
    let dir = temp_dir("panic");
    let reference = reference_line("demo-fast", 19, 48);
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        jobs_dir: dir.clone(),
        fault: Some(ServeFault::WorkerPanic),
        ..ServeConfig::default()
    };
    let handle = Server::start(config, ModelRegistry::with_builtins()).expect("start");
    let addr = handle.addr().to_string();
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-fast", 19, 48)),
        CLIENT_TIMEOUT,
    )
    .expect("submit");
    assert_eq!(resp.status, 200);
    let id = resp.body.get_str("job").expect("job id").to_string();
    // First attempt panics (contained, job re-queued); the second
    // attempt completes.
    let line = wait_result(&addr, &id, Duration::from_secs(60));
    assert_eq!(line, reference);
    // The server is still fully alive.
    let health = request(&addr, "GET", "/healthz", None, CLIENT_TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_worker_leaves_the_server_responsive() {
    let dir = temp_dir("stall");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        jobs_dir: dir.clone(),
        fault: Some(ServeFault::Stall { millis: 400 }),
        ..ServeConfig::default()
    };
    let handle = Server::start(config, ModelRegistry::with_builtins()).expect("start");
    let addr = handle.addr().to_string();
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-fast", 23, 16)),
        CLIENT_TIMEOUT,
    )
    .expect("submit");
    assert_eq!(resp.status, 200);
    let id = resp.body.get_str("job").expect("job id").to_string();
    // While the only worker stalls, the HTTP plane must stay live.
    for _ in 0..5 {
        let health = request(&addr, "GET", "/healthz", None, CLIENT_TIMEOUT).expect("healthz");
        assert_eq!(health.status, 200, "healthz during a stalled worker");
        std::thread::sleep(Duration::from_millis(30));
    }
    let _ = wait_result(&addr, &id, Duration::from_secs(60));
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Graceful shutdown: drain, snapshot, resume in the next process.
// ---------------------------------------------------------------------------

#[test]
fn graceful_shutdown_snapshots_and_the_next_server_resumes() {
    let dir = temp_dir("drain");
    let reference = reference_line("demo-slow", 29, 30);
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        jobs_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let handle = Server::start(config.clone(), ModelRegistry::with_builtins()).expect("start");
    let addr = handle.addr().to_string();
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&submit_body("demo-slow", 29, 30)),
        CLIENT_TIMEOUT,
    )
    .expect("submit");
    assert_eq!(resp.status, 200);
    let id = resp.body.get_str("job").expect("job id").to_string();
    std::thread::sleep(Duration::from_millis(250));
    // Drain mid-campaign: in-flight samples finish, a snapshot lands,
    // the job stays journaled as running.
    handle.shutdown();
    handle.join();

    let handle2 = Server::start(config, ModelRegistry::with_builtins()).expect("restart");
    assert_eq!(
        handle2.recovery.requeued,
        vec![id.clone()],
        "the drained job must be re-queued on restart"
    );
    let addr2 = handle2.addr().to_string();
    let line = wait_result(&addr2, &id, Duration::from_secs(60));
    assert_eq!(line, reference, "drain + resume must be byte-identical");
    handle2.shutdown();
    handle2.join();
    let _ = std::fs::remove_dir_all(&dir);
}
