//! RLC extension tests: inductors through the whole stack — transient
//! engine, AC analysis, variational reduction and the TETA flow on RLC
//! interconnect (the "RC(L)" of the paper's reference [1]).

use linvar::circuit::{Netlist, SourceWaveform};
use linvar::interconnect::builder::build_coupled_lines;
use linvar::prelude::*;
use linvar::spice::{ac_impedance, log_frequencies};
use linvar::spice::{Transient, TransientOptions};

/// Series RLC driven by a voltage step: underdamped response must ring at
/// the damped natural frequency and settle to the source value.
#[test]
fn series_rlc_step_rings_at_damped_frequency() {
    let (r, l, c) = (5.0, 10e-9, 1e-12);
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    let mid = nl.node("mid");
    let out = nl.node("out");
    nl.add_vsource(
        "V1",
        inp,
        Netlist::GROUND,
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.0,
            t0: 0.0,
            tr: 1e-12,
        },
    )
    .unwrap();
    nl.add_resistor("R1", inp, mid, r).unwrap();
    nl.add_inductor("L1", mid, out, l).unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, c).unwrap();
    let mut opts = TransientOptions::new(8e-9, 1e-12);
    opts.probes.push("out".into());
    let res = Transient::new(&nl, &opts).unwrap().run().unwrap();
    let v = res.probe("out").unwrap();
    // Underdamped: ζ = (R/2)·√(C/L) ≈ 0.025 — strong overshoot expected.
    let peak = v.iter().cloned().fold(0.0_f64, f64::max);
    assert!(peak > 1.5, "underdamped overshoot, peak {peak}");
    // Settles to 1 V.
    assert!((v.last().unwrap() - 1.0).abs() < 0.05);
    // Ring period: T = 2π√(LC) ≈ 0.628 ns. Measure peak-to-peak spacing
    // via the first two upward crossings of 1.0 after the first peak.
    let t1 = linvar::spice::crossing_time(&res.times, v, 1.0, true, 0.0).unwrap();
    let t_fall = linvar::spice::crossing_time(&res.times, v, 1.0, false, t1).unwrap();
    let t2 = linvar::spice::crossing_time(&res.times, v, 1.0, true, t_fall).unwrap();
    let period = t2 - t1;
    let expect = 2.0 * std::f64::consts::PI * (l * c).sqrt();
    assert!(
        (period - expect).abs() < 0.05 * expect,
        "period {period} vs 2π√(LC) {expect}"
    );
}

/// AC impedance of a parallel RLC tank peaks at the resonant frequency.
#[test]
fn parallel_rlc_tank_resonates() {
    let (r, l, c) = (10e3, 50e-9, 2e-12);
    let mut nl = Netlist::new();
    let p = nl.node("p");
    nl.add_resistor("R", p, Netlist::GROUND, r).unwrap();
    nl.add_inductor("L", p, Netlist::GROUND, l).unwrap();
    nl.add_capacitor("C", p, Netlist::GROUND, c).unwrap();
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
    let freqs = [f0 / 10.0, f0, f0 * 10.0];
    let z = ac_impedance(&nl, "p", &freqs).unwrap();
    // At resonance the tank is purely resistive (|Z| = R); off resonance
    // the L or C branch shorts it down.
    assert!(
        (z[1].abs() - r).abs() < 0.01 * r,
        "|Z(f0)| = {}",
        z[1].abs()
    );
    assert!(z[0].abs() < 0.2 * r, "below resonance {}", z[0].abs());
    assert!(z[2].abs() < 0.2 * r, "above resonance {}", z[2].abs());
}

/// PRIMA reduction of an RLC line: the macromodel's frequency response
/// must track the full netlist, and complex pole pairs appear.
#[test]
fn rlc_line_reduction_tracks_frequency_response() {
    use linvar::mor::{extract_pole_residue, prima_reduce};
    use linvar::numeric::Complex;
    let spec = CoupledLineSpec::new(1, 100e-6, WireTech::m018()).with_inductance();
    let built = build_coupled_lines(&spec).unwrap();
    let mut nl = built.netlist.clone();
    // Driver conductance grounds the port.
    nl.add_resistor("Rdrv", built.inputs[0], Netlist::GROUND, 200.0)
        .unwrap();
    let var = nl.assemble_variational().unwrap();
    let b = var.port_incidence();
    let rom = prima_reduce(&var.g0, &var.c0, &b, 10).unwrap();
    let pr = extract_pole_residue(&rom).unwrap();
    assert!(pr.is_stable(), "nominal RLC reduction is stable");
    let port_name = "l0_s0";
    let freqs = log_frequencies(1e7, 2e10, 8);
    let z_full = ac_impedance(&nl, port_name, &freqs).unwrap();
    for (k, &f) in freqs.iter().enumerate() {
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
        let z_rom = pr.eval(s)[(0, 0)];
        let err = (z_rom - z_full[k]).abs() / z_full[k].abs();
        assert!(
            err < 0.05,
            "f={f:.2e}: rom {z_rom} vs full {} ({:.1}% err)",
            z_full[k],
            err * 100.0
        );
    }
}

/// Full framework flow on an RLC stage: characterize, evaluate at a
/// variation sample, stabilize, simulate with TETA.
#[test]
fn teta_stage_on_rlc_interconnect() {
    let tech = tech_018();
    let spec = CoupledLineSpec::new(1, 50e-6, WireTech::m018()).with_inductance();
    let built = build_coupled_lines(&spec).unwrap();
    let stage = StageModel::build(
        &built.netlist,
        &[built.inputs[0]],
        &tech,
        ReductionMethod::Prima { order: 8 },
        0.02,
    )
    .expect("characterizes RLC load");
    let out_port = built
        .netlist
        .ports()
        .iter()
        .position(|p| *p == built.outputs[0])
        .unwrap();
    for sample in [[0.0; 5], [0.5, -0.5, 0.5, -0.5, 0.5]] {
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 40e-12);
        let res = stage
            .evaluate(&sample, DeviceVariation::nominal(), &[input], 0.5e-12, 2e-9)
            .expect("evaluates");
        let out = &res.waveforms[out_port];
        assert!(out.initial_value() > 1.7, "sample {sample:?}");
        assert!(out.final_value() < 0.1, "sample {sample:?}");
    }
}

/// The deck parser accepts inductor cards end-to-end.
#[test]
fn deck_with_inductor_parses_and_simulates() {
    let deck = "\
V1 in 0 RAMP 0 1 0 1p
R1 in a 10
L1 a out 5n
C1 out 0 1p
";
    let nl = linvar::circuit::parse_deck(deck).unwrap();
    assert_eq!(nl.inductor_count(), 1);
    let mut opts = TransientOptions::new(5e-9, 2e-12);
    opts.probes.push("out".into());
    let res = Transient::new(&nl, &opts).unwrap().run().unwrap();
    let v_end = *res.probe("out").unwrap().last().unwrap();
    assert!((v_end - 1.0).abs() < 0.2, "settles near 1 V: {v_end}");
}
