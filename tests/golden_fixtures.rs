//! Golden-fixture regression suite: exact-bit `f64` fixtures for the
//! table4/fig7 benchmark rows and a raw stage waveform, checked into
//! `tests/golden/`. Perf work on the hot path (workspace arenas, buffer
//! reuse, algebraic rewrites) must not shift a single result bit; these
//! fixtures catch any drift the statistical asserts elsewhere would
//! absorb.
//!
//! Regenerate after an *intended* numeric change with:
//!
//! ```sh
//! LINVAR_BLESS=1 cargo test --test golden_fixtures
//! ```
//!
//! and commit the diff. A failing fixture prints the first differing
//! line; bless only when the change is understood and deliberate.

use linvar::prelude::*;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use std::fmt::Write as _;
use std::path::PathBuf;

/// `f64` as its 16-hex-digit bit pattern (the benches' `bits_hex` form).
fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Renders rows as `key = value` lines, then either blesses the fixture
/// (`LINVAR_BLESS=1`) or compares byte-for-byte against the checked-in
/// copy.
fn check_or_bless(name: &str, rows: &[(String, String)]) {
    let mut rendered =
        String::from("# Golden fixture: exact f64 bit patterns (LINVAR_BLESS=1 regenerates).\n");
    for (k, v) in rows {
        let _ = writeln!(rendered, "{k} = {v}");
    }
    let path = fixture_path(name);
    if std::env::var("LINVAR_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             `LINVAR_BLESS=1 cargo test --test golden_fixtures`",
            path.display()
        )
    });
    if expected != rendered {
        let diff = expected
            .lines()
            .zip(rendered.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("first difference:\n  golden: {a}\n  actual: {b}"))
            .unwrap_or_else(|| "line counts differ".to_string());
        panic!(
            "golden fixture {name} drifted — hot-path numerics changed. {diff}\n\
             If the change is intended, regenerate with \
             `LINVAR_BLESS=1 cargo test --test golden_fixtures` and commit the diff."
        );
    }
}

fn iscas_path_model(circuit: &str, n_elem: usize) -> PathModel {
    let bench = benchmark(circuit).expect("known benchmark");
    let report = longest_path(&bench.netlist).unwrap();
    let stages = decompose_to_primitives(&bench.netlist, &report).unwrap();
    let spec = PathSpec {
        cells: stages.into_iter().map(|s| s.cell).collect(),
        linear_elements_between_stages: n_elem,
        input_slew: 60e-12,
    };
    PathModel::build(&spec, &tech_018(), &WireTech::m018()).unwrap()
}

/// Monte-Carlo rows exactly as the table4 bin computes them: ISCAS
/// longest path, `example3_table4` sources, master seed 4, five samples
/// at 10 linear elements. Also asserts the thread-count half of the
/// determinism contract — 2 and 8 workers must reproduce the 1-worker
/// bits before they are compared to the fixture.
#[test]
fn golden_table4_rows() {
    let sources = VariationSources::example3_table4();
    let mut rows = Vec::new();
    for circuit in ["s27", "s208"] {
        let model = iscas_path_model(circuit, 10);
        let mc1 = model.monte_carlo_par(&sources, 5, 4, 1).unwrap();
        for threads in [2, 8] {
            let mct = model.monte_carlo_par(&sources, 5, 4, threads).unwrap();
            assert_eq!(
                mc1.delays, mct.delays,
                "{circuit}: delays differ between 1 and {threads} threads"
            );
        }
        rows.push((format!("{circuit}@10.n"), mc1.summary.n.to_string()));
        rows.push((format!("{circuit}@10.mean"), hex(mc1.summary.mean)));
        rows.push((format!("{circuit}@10.std"), hex(mc1.summary.std)));
        for (i, d) in mc1.delays.iter().enumerate() {
            rows.push((format!("{circuit}@10.delay.{i}"), hex(*d)));
        }
    }
    check_or_bless("table4_rows.txt", &rows);
}

/// Fig-7 rows: the s27 MC statistics under the (DL, VT) sources and the
/// gradient-analysis statistics the second histogram is drawn from.
#[test]
fn golden_fig7_rows() {
    let sources = VariationSources::example3(0.33, 0.33);
    let model = iscas_path_model("s27", 10);
    let mc = model.monte_carlo_par(&sources, 7, 7, 1).unwrap();
    let ga = model.gradient_analysis(&sources).unwrap();
    let mut rows = vec![
        ("s27.mc.n".to_string(), mc.summary.n.to_string()),
        ("s27.mc.mean".to_string(), hex(mc.summary.mean)),
        ("s27.mc.std".to_string(), hex(mc.summary.std)),
        ("s27.ga.nominal".to_string(), hex(ga.nominal_delay)),
        ("s27.ga.std".to_string(), hex(ga.std)),
    ];
    for (i, d) in mc.delays.iter().enumerate() {
        rows.push((format!("s27.mc.delay.{i}"), hex(*d)));
    }
    check_or_bless("fig7_rows.txt", &rows);
}

/// Spectral (gPC) rows: the full stochastic-testing order-2 analysis of
/// the s27 longest path under the (DL, VT) sources — node delays,
/// coefficients, surrogate moments and quantiles, all bit-exact. The
/// thread half of the determinism contract is asserted first: 2 and 8
/// workers must reproduce the 1-worker bits before the fixture compare
/// (and ci.sh reruns this test under `LINVAR_WS_DISABLE=1`, so the
/// pooled and allocating hot paths pin the same bits).
#[test]
fn golden_spectral_rows() {
    let sources = VariationSources::example3(0.33, 0.33);
    let model = iscas_path_model("s27", 10);
    let config = SpectralConfig::stochastic_testing(2);
    let pc1 = model
        .polynomial_chaos(&sources, config, 7, 1, RecoveryPolicy::default())
        .unwrap();
    for threads in [2, 8] {
        let pct = model
            .polynomial_chaos(&sources, config, 7, threads, RecoveryPolicy::default())
            .unwrap();
        assert_eq!(
            pc1.coefficients
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>(),
            pct.coefficients
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>(),
            "s27 gPC coefficients differ between 1 and {threads} threads"
        );
        assert_eq!(pc1.mean.to_bits(), pct.mean.to_bits());
        assert_eq!(pc1.std.to_bits(), pct.std.to_bits());
    }
    let mut rows = vec![
        ("s27.gpc.nodes".to_string(), pc1.nodes_evaluated.to_string()),
        ("s27.gpc.mean".to_string(), hex(pc1.mean)),
        ("s27.gpc.std".to_string(), hex(pc1.std)),
    ];
    for &(p, v) in &pc1.quantiles {
        rows.push((
            format!("s27.gpc.q{:02}", (p * 100.0).round() as u32),
            hex(v),
        ));
    }
    for (i, c) in pc1.coefficients.iter().enumerate() {
        rows.push((format!("s27.gpc.coeff.{i}"), hex(*c)));
    }
    for (i, d) in pc1.node_delays.iter().enumerate() {
        rows.push((format!("s27.gpc.node_delay.{i}"), hex(*d)));
    }
    check_or_bless("spectral_rows.txt", &rows);
}

/// IR-drop rows exactly as the `acgrid` bin computes them: the quick
/// 8×8 power grid, 8 LHS samples over the 5 wire parameters, worst drop
/// per sample. The determinism contract is asserted before the fixture
/// compare — 2 and 8 worker threads reproduce the 1-worker bits, and the
/// dense backend prints the very same `mc` row as sparse (`ci.sh` reruns
/// this test under `LINVAR_WS_DISABLE=1`, so the pooled and allocating
/// DC-solve paths pin the same bits).
#[test]
fn golden_acgrid_rows() {
    use linvar_bench::chains::mc_line;
    use linvar_bench::grid::{run_case, sample_set};
    use linvar_interconnect::standard_grid_cases;
    use linvar_numeric::SolverChoice;
    let samples = sample_set(8); // matches the bin's --quick campaign
    let cases = standard_grid_cases(true).unwrap();
    let mut rows = Vec::new();
    for case in &cases {
        let base = run_case(case, &samples, 1, SolverChoice::Sparse).unwrap();
        let base_line = mc_line(&case.name, &base.summary, base.failures);
        for threads in [2, 8] {
            let mc = run_case(case, &samples, threads, SolverChoice::Sparse).unwrap();
            assert_eq!(
                mc.values, base.values,
                "{}: sparse drops differ between 1 and {threads} threads",
                case.name
            );
            assert_eq!(mc_line(&case.name, &mc.summary, mc.failures), base_line);
        }
        let dense = run_case(case, &samples, 2, SolverChoice::Dense).unwrap();
        assert_eq!(
            mc_line(&case.name, &dense.summary, dense.failures),
            base_line,
            "{}: dense and sparse mc rows diverged",
            case.name
        );
        rows.push((format!("{}.line", case.name), base_line));
        rows.push((format!("{}.mean", case.name), hex(base.summary.mean)));
        rows.push((format!("{}.std", case.name), hex(base.summary.std)));
        for (i, d) in base.values.iter().enumerate() {
            rows.push((format!("{}.drop.{i}", case.name), hex(*d)));
        }
    }
    check_or_bless("acgrid_rows.txt", &rows);
}

/// A raw stage waveform at a non-nominal corner: every breakpoint of the
/// far-end response, bit-exact. This pins the TETA engine (DC solve, SC
/// chord iteration, recursive convolution, compression) below the level
/// where delay extraction could mask a drift.
#[test]
fn golden_stage_waveform() {
    let tech = tech_018();
    let spec = CoupledLineSpec::new(1, 20e-6, WireTech::m018());
    let built = linvar_interconnect::builder::build_coupled_lines(&spec).unwrap();
    let model = StageModel::build(
        &built.netlist,
        &[built.inputs[0]],
        &tech,
        ReductionMethod::Prima { order: 6 },
        0.02,
    )
    .unwrap();
    let out_pos = built
        .netlist
        .ports()
        .iter()
        .position(|p| *p == built.outputs[0])
        .unwrap();
    let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
    let res = model
        .evaluate(
            &[0.3, -0.2, 0.1, 0.0, 0.4],
            DeviceVariation::new(0.25, -0.5),
            &[input],
            1e-12,
            1.5e-9,
        )
        .unwrap();
    let points = res.waveforms[out_pos].points();
    let mut rows = vec![("points".to_string(), points.len().to_string())];
    for (i, (t, v)) in points.iter().enumerate() {
        rows.push((format!("p{i:04}.t"), hex(*t)));
        rows.push((format!("p{i:04}.v"), hex(*v)));
    }
    check_or_bless("stage_waveform.txt", &rows);
}
