//! Bitwise-identity of the sharded campaign supervisor.
//!
//! The contract (DESIGN.md, "Sharding protocol & merge invariants"): a
//! campaign split across N supervised shards merges to a result
//! **bitwise-identical** to a single-process run over the same samples —
//! at any shard count, any thread count, and under every injected
//! [`ShardFault`]. These tests pin that identity on a synthetic workload
//! (values, health, failure bookkeeping, `first_error`), through the
//! full `PathModel` framework surface, and across the process-per-shard
//! worker flow (`run_shard_worker` snapshots merged by a resumed
//! supervisor without re-evaluating a single sample).

use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_core::RecoveryPolicy;
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_stats::{
    run_campaign, run_shard_worker, run_sharded_campaign, CampaignConfig, CampaignFingerprint,
    CampaignResult, SampleStatus, ShardConfig, ShardFault, ShardOutcome, Summary,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A process-unique directory for one test's shard snapshots.
fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let k = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "linvar-shard-identity-{}-{tag}-{k}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn assert_summaries_bitwise(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    for (x, y, field) in [
        (a.mean, b.mean, "mean"),
        (a.std, b.std, "std"),
        (a.min, b.min, "min"),
        (a.max, b.max, "max"),
        (a.std_err_mean, b.std_err_mean, "std_err_mean"),
        (a.rel_err_std, b.rel_err_std, "rel_err_std"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {field}");
    }
}

// ---------------------------------------------------------------------
// Synthetic workload: pure function of (sample, attempt), mixed health.
// ---------------------------------------------------------------------

const SYNTH_N: usize = 24;

fn synth_fingerprint() -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: 11,
        n_samples: SYNTH_N,
        policy: RecoveryPolicy::default(),
        model: linvar_stats::fingerprint_str("shard-identity-synthetic"),
    }
}

/// Deterministic evaluator: every 11th sample needs one retry (and its
/// value depends on the serving attempt, so attempt parity is part of
/// the identity), every 7th degrades, sample 13 fails its whole budget.
fn synth_eval(s: &usize, attempt: usize) -> Result<(f64, SampleStatus), String> {
    let k = *s;
    if k == 13 {
        return Err(format!("permanent failure at {k}"));
    }
    if k % 11 == 5 && attempt == 0 {
        return Err(format!("transient at {k}"));
    }
    let status = if k % 7 == 3 {
        SampleStatus::Degraded
    } else {
        SampleStatus::Clean
    };
    Ok(((k as f64).sin() * (attempt as f64 + 1.0), status))
}

fn synth_baseline() -> CampaignResult {
    let samples: Vec<usize> = (0..SYNTH_N).collect();
    run_campaign(
        &samples,
        1,
        RecoveryPolicy::default(),
        &CampaignConfig::default(),
        synth_fingerprint(),
        synth_eval,
    )
    .expect("baseline campaign")
}

fn assert_matches_baseline(
    sharded: &linvar_stats::ShardedCampaignResult,
    base: &CampaignResult,
    what: &str,
) {
    assert_eq!(sharded.values, base.values, "{what}: values");
    assert_summaries_bitwise(&sharded.summary, &base.summary, what);
    assert_eq!(sharded.sample_health, base.sample_health, "{what}: health");
    assert_eq!(sharded.health, base.health, "{what}: health summary");
    assert_eq!(sharded.failures, base.failures, "{what}: failures");
    assert_eq!(
        sharded.failed_indices, base.failed_indices,
        "{what}: failed indices"
    );
    assert_eq!(sharded.first_error, base.first_error, "{what}: first_error");
    assert_eq!(sharded.completed, base.completed, "{what}: completed");
}

#[test]
fn synthetic_identity_across_shard_and_thread_counts() {
    let samples: Vec<usize> = (0..SYNTH_N).collect();
    let base = synth_baseline();
    for n_shards in [1usize, 2, 4] {
        for threads in [1usize, 2, 8] {
            let cfg = ShardConfig {
                n_shards,
                ..ShardConfig::default()
            };
            let sharded = run_sharded_campaign(
                &samples,
                threads,
                RecoveryPolicy::default(),
                &cfg,
                &synth_fingerprint(),
                synth_eval,
            )
            .expect("sharded campaign");
            assert_matches_baseline(&sharded, &base, &format!("{n_shards}x{threads}"));
            assert_eq!(sharded.shards.len(), n_shards);
            assert!(sharded
                .shards
                .iter()
                .all(|v| v.outcome == ShardOutcome::Completed));
        }
    }
}

#[test]
fn identity_holds_under_every_injected_fault() {
    let samples: Vec<usize> = (0..SYNTH_N).collect();
    let base = synth_baseline();
    let faults = [
        ("kill", ShardFault::KillBeforeCheckpoint),
        ("killmid", ShardFault::KillMidWrite),
        ("corrupt", ShardFault::CorruptCheckpoint),
        ("stall", ShardFault::Stall { millis: 300 }),
        ("dup", ShardFault::DuplicateCompletion),
    ];
    for (tag, fault) in faults {
        let dir = tmp_dir(tag);
        let stalled = matches!(fault, ShardFault::Stall { .. });
        let cfg = ShardConfig {
            n_shards: 4,
            checkpoint: Some(dir.join("campaign")),
            faults: vec![(1, fault)],
            // Tight watchdog so the stall test re-dispatches quickly;
            // harmless for the others (their heartbeats stay fresh).
            stall_after: Some(Duration::from_millis(50)),
            poll_interval: Duration::from_millis(5),
            ..ShardConfig::default()
        };
        let sharded = run_sharded_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &cfg,
            &synth_fingerprint(),
            synth_eval,
        )
        .expect("faulted campaign");
        assert_matches_baseline(&sharded, &base, tag);
        assert!(
            sharded
                .shards
                .iter()
                .all(|v| v.outcome == ShardOutcome::Completed),
            "{tag}: every shard must recover: {:?}",
            sharded.shards
        );
        if stalled {
            assert!(
                sharded.shards.iter().any(|v| v.redispatched),
                "stalled shard must have been re-dispatched: {:?}",
                sharded.shards
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn worker_snapshots_merge_without_reevaluation() {
    let samples: Vec<usize> = (0..SYNTH_N).collect();
    let base = synth_baseline();
    let dir = tmp_dir("workers");
    let cfg = ShardConfig {
        n_shards: 3,
        checkpoint: Some(dir.join("campaign")),
        ..ShardConfig::default()
    };
    // Phase 1: each shard in its own supervised worker call (the
    // process-per-shard flow the bench bins expose via --shard-index).
    let mut worker_total = 0;
    for k in 0..3 {
        let worker = run_shard_worker(
            &samples,
            2,
            RecoveryPolicy::default(),
            &cfg,
            &synth_fingerprint(),
            k,
            synth_eval,
        )
        .expect("shard worker");
        assert!(worker.evaluated > 0, "worker {k} evaluated nothing");
        worker_total += worker.evaluated;
    }
    assert_eq!(worker_total, SYNTH_N, "workers cover the range exactly");
    // Phase 2: a resumed supervisor merges the snapshots. Nothing is
    // re-evaluated — the merge is pure bookkeeping.
    let merge_cfg = ShardConfig {
        resume: true,
        ..cfg
    };
    let merged = run_sharded_campaign(
        &samples,
        2,
        RecoveryPolicy::default(),
        &merge_cfg,
        &synth_fingerprint(),
        |_: &usize, _| -> Result<(f64, SampleStatus), String> {
            panic!("merge-only run must not evaluate samples")
        },
    )
    .expect("merge run");
    assert_eq!(
        merged.evaluated, 0,
        "merge must come entirely from snapshots"
    );
    assert_matches_baseline(&merged, &base, "worker merge");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Framework surface: the PathModel sharded driver.
// ---------------------------------------------------------------------

#[test]
fn path_model_sharded_matches_single_process() {
    let spec = PathSpec {
        cells: vec!["inv".into(), "nand2".into()],
        linear_elements_between_stages: 10,
        input_slew: 50e-12,
    };
    let model = PathModel::build(&spec, &tech_018(), &WireTech::m018()).unwrap();
    let sources = VariationSources::example3(0.33, 0.33);
    let policy = RecoveryPolicy::default();
    let base = model
        .monte_carlo_campaign(&sources, 6, 7, 1, policy, &CampaignConfig::default())
        .unwrap();
    for n_shards in [1usize, 2, 4] {
        for threads in [1usize, 2] {
            let cfg = ShardConfig {
                n_shards,
                ..ShardConfig::default()
            };
            let sharded = model
                .monte_carlo_sharded(&sources, 6, 7, threads, policy, &cfg)
                .unwrap();
            let what = format!("path {n_shards}x{threads}");
            assert_eq!(sharded.delays, base.delays, "{what}: delays");
            assert_summaries_bitwise(&sharded.summary, &base.summary, &what);
            assert_eq!(sharded.sample_health, base.sample_health, "{what}");
            assert_eq!(sharded.health, base.health, "{what}");
            assert_eq!(sharded.failures, base.failures, "{what}");
            assert_eq!(sharded.first_error, base.first_error, "{what}");
            assert_eq!(sharded.reports, base.reports, "{what}: reports");
        }
    }
}
