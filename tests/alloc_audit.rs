//! Allocation audit for the Monte-Carlo hot path.
//!
//! A counting global allocator measures how many heap allocations one
//! steady-state sample costs inside [`monte_carlo`] once the per-worker
//! workspace arena is warm. The count is differenced between two run
//! lengths, so per-run fixed costs (result vectors, the summary) cancel
//! and only the true per-sample cost remains.
//!
//! The budget below is a **regression tripwire**, not an aspiration:
//! the workspace arena eliminated the per-sample LU/eigen/matrix and
//! SC-inner-loop allocations, and what remains is the documented
//! steady-state constant. If this test fails, a hot-path change
//! reintroduced per-sample allocation — either pool the new buffer
//! through `linvar_numeric::with_workspace` or, if the allocation is
//! genuinely unavoidable, raise the budget in the same commit that
//! explains why.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use linvar_devices::{tech_018, DeviceVariation};
use linvar_interconnect::{CoupledLineSpec, WireTech};
use linvar_mor::ReductionMethod;
use linvar_stats::monte_carlo;
use linvar_teta::{StageModel, Waveform};

/// Counts every allocation; `realloc` counts once (it may move storage).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

// Each file in `tests/` is its own binary, so this allocator governs only
// this audit and cannot interfere with the rest of the suite.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Steady-state per-sample allocation budget for one stage evaluation
/// driven through `monte_carlo`.
///
/// The measured cost after the workspace-arena work is ~160 allocations
/// per sample (6th-order ROM, one driver). It is a *small documented
/// constant* — independent of the transient length and the SC iteration
/// count — made up of:
///
///   * pole/residue extraction scratch the workspace does not pool:
///     complex eigensolver internals (`CMatrix` temporaries) and the
///     per-sample `PoleResidueModel` (one small `CMatrix` per pole);
///   * `stabilize`'s filtered copy of that model (β-rescaled residues);
///   * per-run solver setup: `DriverSpec` (input waveform + MOS model
///     clones), `RecursiveConvolution` state, and the recorded output
///     waveforms with their compression buffers;
///   * `monte_carlo` bookkeeping for the outcome of each sample.
///
/// What the budget must **never** again include: per-SC-iteration or
/// per-timestep allocation (the former cost scaled with the ~36k chord
/// iterations a sample runs — pooling those is where the hot-path speedup
/// came from).
const PER_SAMPLE_BUDGET: u64 = 400;

#[test]
fn steady_state_monte_carlo_sample_allocates_within_budget() {
    // Single coupled line, one driver — the smallest realistic stage.
    let tech = tech_018();
    let spec = CoupledLineSpec::new(1, 20e-6, WireTech::m018());
    let built = linvar_interconnect::builder::build_coupled_lines(&spec).unwrap();
    let model = StageModel::build(
        &built.netlist,
        &[built.inputs[0]],
        &tech,
        ReductionMethod::Prima { order: 6 },
        0.02,
    )
    .unwrap();
    let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);

    // Mild parameter excursions: every sample must take the clean path so
    // the two windows measure identical work per sample.
    let sample_at = |i: usize| {
        let x = (i as f64) / 64.0 - 0.25;
        [x, -x, 0.5 * x, 0.0, x]
    };
    let eval = |w: &[f64; 5]| -> Result<f64, String> {
        let res = model
            .evaluate(
                w,
                DeviceVariation::nominal(),
                std::slice::from_ref(&input),
                1e-12,
                1.5e-9,
            )
            .map_err(|e| e.to_string())?;
        res.waveforms[1]
            .crossing(0.9, false)
            .ok_or_else(|| "no crossing".to_string())
    };

    // Warm-up: populate the thread-local workspace pools (first samples
    // miss; steady state hits). Uses the same driver as the measurement.
    let warm: Vec<[f64; 5]> = (0..4).map(sample_at).collect();
    let r = monte_carlo(&warm, |w| eval(w));
    assert_eq!(r.failures, 0, "warm-up failed: {:?}", r.first_error);

    // Two measured windows over identical per-sample work; differencing
    // cancels per-run fixed allocations.
    let short: Vec<[f64; 5]> = (0..4).map(sample_at).collect();
    let long: Vec<[f64; 5]> = (0..12).map(sample_at).collect();

    let a0 = allocs();
    let r_short = monte_carlo(&short, |w| eval(w));
    let a1 = allocs();
    let r_long = monte_carlo(&long, |w| eval(w));
    let a2 = allocs();
    assert_eq!(r_short.failures + r_long.failures, 0, "samples failed");

    let short_cost = a1 - a0;
    let long_cost = a2 - a1;
    let extra_samples = (long.len() - short.len()) as u64;
    let per_sample = long_cost.saturating_sub(short_cost) / extra_samples;

    eprintln!("alloc audit: {per_sample} allocations per steady-state sample");
    assert!(
        per_sample <= PER_SAMPLE_BUDGET,
        "steady-state Monte-Carlo sample allocated {per_sample} times \
         (budget: {PER_SAMPLE_BUDGET}). A hot-path change reintroduced \
         per-sample allocation — pool new buffers through \
         linvar_numeric::with_workspace, or raise PER_SAMPLE_BUDGET in \
         tests/alloc_audit.rs with a documented breakdown. \
         (window costs: {short_cost} for {} samples, {long_cost} for {})",
        short.len(),
        long.len(),
    );
}

/// Steady-state allocation budget for one sparse refactor + solve cycle
/// once the symbolic analysis is cached.
///
/// The numeric refactorization writes into the factor storage resident in
/// the `SparseLu` (pattern replay, no fresh `Vec`s), and `solve_into`
/// takes its permutation scratch from the thread-local workspace arena.
/// What remains per cycle is a handful of bookkeeping allocations from
/// assembling the updated `SparseMatrix` values vector — the documented
/// constant below, independent of matrix size and fill. If this trips, a
/// sparse hot-path change reintroduced per-cycle allocation: route new
/// scratch through the resident factor storage or the workspace arena.
const SPARSE_CYCLE_BUDGET: u64 = 24;

#[test]
fn sparse_refactor_solve_cycle_allocates_within_budget() {
    use linvar_numeric::{SparseLu, SparseMatrix};

    // MNA-ladder shape (conductance chain + leaks + one source branch):
    // the same stamp structure the transient engine refactors every time
    // the timestep changes.
    let n_nodes = 200;
    let dim = n_nodes + 1;
    let triplets = |g: f64| -> Vec<(usize, usize, f64)> {
        let mut t = Vec::new();
        for i in 1..n_nodes {
            t.push((i, i, g));
            t.push((i - 1, i - 1, g));
            t.push((i, i - 1, -g));
            t.push((i - 1, i, -g));
        }
        for i in 0..n_nodes {
            t.push((i, i, 1e-9));
        }
        t.push((0, n_nodes, 1.0));
        t.push((n_nodes, 0, 1.0));
        t
    };
    let b: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();

    // One cycle of the steady-state loop: re-assemble values (timestep
    // change rescales the conductances, pattern untouched), refactor on
    // the cached pattern, solve in place.
    let mut lu =
        SparseLu::new(&SparseMatrix::from_triplets(dim, dim, &triplets(1e-3)).unwrap()).unwrap();
    let mut x = Vec::new();
    let mut cycle = |k: usize| {
        let g = 1e-3 * (1.0 + 0.1 * (k % 7) as f64);
        let a = SparseMatrix::from_triplets(dim, dim, &triplets(g)).unwrap();
        lu.refactor(&a).unwrap();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    };

    // Warm-up fills the workspace pools and the triplet-buffer high-water
    // marks; then difference two window lengths so fixed costs cancel.
    for k in 0..4 {
        cycle(k);
    }
    let a0 = allocs();
    for k in 0..4 {
        cycle(k);
    }
    let a1 = allocs();
    for k in 0..12 {
        cycle(k);
    }
    let a2 = allocs();

    let per_cycle = (a2 - a1).saturating_sub(a1 - a0) / 8;
    eprintln!("alloc audit: {per_cycle} allocations per sparse refactor+solve cycle");
    assert!(
        per_cycle <= SPARSE_CYCLE_BUDGET,
        "sparse refactor+solve cycle allocated {per_cycle} times \
         (budget: {SPARSE_CYCLE_BUDGET}). A sparse hot-path change \
         reintroduced per-cycle allocation — keep scratch resident in \
         SparseLu or pool it through linvar_numeric::with_workspace, or \
         raise SPARSE_CYCLE_BUDGET in tests/alloc_audit.rs with a \
         documented breakdown."
    );
}

#[test]
fn workspace_disable_escape_hatch_allocates_more() {
    // `LINVAR_WS_DISABLE=1` turns the arena into a passthrough; this test
    // pins the env contract by checking the flag is at least read. (Spawn
    // a fresh evaluation under the flag in-process: the workspace is
    // thread-local, so a new thread observes the flag at pool creation.)
    let tech = tech_018();
    let spec = CoupledLineSpec::new(1, 20e-6, WireTech::m018());
    let built = linvar_interconnect::builder::build_coupled_lines(&spec).unwrap();
    let model = StageModel::build(
        &built.netlist,
        &[built.inputs[0]],
        &tech,
        ReductionMethod::Prima { order: 6 },
        0.02,
    )
    .unwrap();
    let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);

    // Pooled-path result (this thread) vs passthrough result (flagged
    // thread): the escape hatch must not change a single bit.
    let pooled = model
        .evaluate(
            &[0.1, -0.1, 0.0, 0.0, 0.2],
            DeviceVariation::nominal(),
            std::slice::from_ref(&input),
            1e-12,
            1.5e-9,
        )
        .unwrap();
    std::env::set_var("LINVAR_WS_DISABLE", "1");
    let plain = std::thread::scope(|s| {
        s.spawn(|| {
            model
                .evaluate(
                    &[0.1, -0.1, 0.0, 0.0, 0.2],
                    DeviceVariation::nominal(),
                    std::slice::from_ref(&input),
                    1e-12,
                    1.5e-9,
                )
                .unwrap()
        })
        .join()
        .unwrap()
    });
    std::env::remove_var("LINVAR_WS_DISABLE");
    for (a, b) in pooled.waveforms.iter().zip(&plain.waveforms) {
        assert_eq!(a.points(), b.points(), "passthrough changed results");
    }
}
