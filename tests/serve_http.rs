//! API-level lifecycle, admission-control, and wire-robustness tests
//! for the campaign service, all in-process on ephemeral ports.
//!
//! The job-state transition *table* is unit-tested exhaustively in
//! `linvar-serve`'s store module; here the same machine is driven
//! end-to-end over HTTP: idempotent resubmission, cancel in every
//! state, bounded-queue shedding, and malformed-wire handling.

use linvar_core::ModelRegistry;
use linvar_metrics::Json;
use linvar_serve::{request, ClientResponse, JsonGet, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn start_server(tag: &str, workers: usize, queue_cap: usize) -> (ServerHandle, String, PathBuf) {
    let dir = std::env::temp_dir().join(format!("linvar-serve-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        jobs_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let handle = Server::start(config, ModelRegistry::with_builtins()).expect("start server");
    let addr = handle.addr().to_string();
    (handle, addr, dir)
}

fn stop(handle: ServerHandle, dir: &PathBuf) {
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(dir);
}

fn submit(addr: &str, model: &str, seed: u64, n: usize) -> ClientResponse {
    let mut body = Json::obj();
    body.set("model", model)
        .set("seed", seed)
        .set("n", n as u64);
    request(addr, "POST", "/jobs", Some(&body), CLIENT_TIMEOUT).expect("submit")
}

fn wait_state(addr: &str, id: &str, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp =
            request(addr, "GET", &format!("/jobs/{id}"), None, CLIENT_TIMEOUT).expect("status");
        assert_eq!(resp.status, 200);
        if resp.body.get_str("state") == Some(want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {want}; last: {}",
            resp.body.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn resubmission_is_idempotent_keyed_by_campaign_fingerprint() {
    let (handle, addr, dir) = start_server("dedup", 1, 16);
    let first = submit(&addr, "demo-fast", 42, 32);
    assert_eq!(first.status, 200);
    assert_eq!(first.body.get_bool("existing"), Some(false));
    let id = first.body.get_str("job").expect("id").to_string();

    // Same campaign again — same job, no double-run; a different tenant
    // still dedups (identity excludes the tenant by design).
    let dup = submit(&addr, "demo-fast", 42, 32);
    assert_eq!(dup.body.get_bool("existing"), Some(true));
    assert_eq!(dup.body.get_str("job"), Some(id.as_str()));
    let mut other_tenant = Json::obj();
    other_tenant
        .set("model", "demo-fast")
        .set("seed", 42u64)
        .set("n", 32u64)
        .set("tenant", "someone-else");
    let cross = request(&addr, "POST", "/jobs", Some(&other_tenant), CLIENT_TIMEOUT).expect("x");
    assert_eq!(cross.body.get_bool("existing"), Some(true));
    assert_eq!(cross.body.get_str("job"), Some(id.as_str()));

    // A different seed is a different campaign.
    let fresh = submit(&addr, "demo-fast", 43, 32);
    assert_eq!(fresh.body.get_bool("existing"), Some(false));
    assert_ne!(fresh.body.get_str("job"), Some(id.as_str()));

    // Resubmission after completion answers from the terminal record,
    // result included.
    wait_state(&addr, &id, "done");
    let done = submit(&addr, "demo-fast", 42, 32);
    assert_eq!(done.body.get_bool("existing"), Some(true));
    assert_eq!(done.body.get_str("state"), Some("done"));
    assert!(done.body.get_str("result").is_some());
    stop(handle, &dir);
}

#[test]
fn bounded_queue_sheds_with_429_and_retry_after() {
    // One worker, queue bound 1: a slow runner plus one queued job fill
    // the service; the next submission must shed.
    let (handle, addr, dir) = start_server("shed", 1, 1);
    let running = submit(&addr, "demo-slow", 1, 120);
    assert_eq!(running.status, 200);
    let running_id = running.body.get_str("job").expect("id").to_string();
    wait_state(&addr, &running_id, "running");
    let queued = submit(&addr, "demo-slow", 2, 120);
    assert_eq!(queued.status, 200);

    let shed = submit(&addr, "demo-slow", 3, 120);
    assert_eq!(shed.status, 429, "full queue must shed");
    assert_eq!(shed.retry_after, Some(1), "shed must carry Retry-After");

    // Shedding is not sticky: cancel the queued job and the next
    // submission is admitted.
    let queued_id = queued.body.get_str("job").expect("id").to_string();
    let cancel = request(
        &addr,
        "POST",
        &format!("/jobs/{queued_id}/cancel"),
        None,
        CLIENT_TIMEOUT,
    )
    .expect("cancel");
    assert_eq!(cancel.status, 200);
    let retry = submit(&addr, "demo-slow", 3, 120);
    assert_eq!(retry.status, 200, "queue slot must be reusable");

    // Healthz never stopped answering.
    let health = request(&addr, "GET", "/healthz", None, CLIENT_TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    stop(handle, &dir);
}

#[test]
fn cancel_semantics_in_every_lifecycle_state() {
    let (handle, addr, dir) = start_server("cancel", 1, 16);

    // Occupy the only worker so the next job stays queued.
    let blocker = submit(&addr, "demo-slow", 50, 400);
    let blocker_id = blocker.body.get_str("job").expect("id").to_string();
    wait_state(&addr, &blocker_id, "running");

    // Cancel while queued: immediate terminal state.
    let queued = submit(&addr, "demo-fast", 51, 32);
    let queued_id = queued.body.get_str("job").expect("id").to_string();
    let resp = request(
        &addr,
        "POST",
        &format!("/jobs/{queued_id}/cancel"),
        None,
        CLIENT_TIMEOUT,
    )
    .expect("cancel queued");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body.get_str("state"), Some("cancelled"));

    // Cancel a terminal job: 409, state unchanged.
    let again = request(
        &addr,
        "POST",
        &format!("/jobs/{queued_id}/cancel"),
        None,
        CLIENT_TIMEOUT,
    )
    .expect("cancel terminal");
    assert_eq!(again.status, 409);

    // Cancel while running: acknowledged, then terminal once in-flight
    // samples finish.
    let resp = request(
        &addr,
        "POST",
        &format!("/jobs/{blocker_id}/cancel"),
        None,
        CLIENT_TIMEOUT,
    )
    .expect("cancel running");
    assert_eq!(resp.status, 202);
    assert_eq!(resp.body.get_bool("cancelling"), Some(true));
    wait_state(&addr, &blocker_id, "cancelled");

    // Resubmitting a cancelled campaign answers from the terminal
    // record (the transition table accepts nothing out of a terminal
    // state).
    let resub = submit(&addr, "demo-slow", 50, 400);
    assert_eq!(resub.body.get_bool("existing"), Some(true));
    assert_eq!(resub.body.get_str("state"), Some("cancelled"));

    // Cancel of an unknown job: 404.
    let missing = request(
        &addr,
        "POST",
        "/jobs/deadbeef00000000/cancel",
        None,
        CLIENT_TIMEOUT,
    )
    .expect("cancel unknown");
    assert_eq!(missing.status, 404);
    stop(handle, &dir);
}

#[test]
fn result_endpoint_distinguishes_pending_from_terminal_and_missing() {
    let (handle, addr, dir) = start_server("result", 1, 16);
    let slow = submit(&addr, "demo-slow", 60, 200);
    let id = slow.body.get_str("job").expect("id").to_string();
    let pending = request(
        &addr,
        "GET",
        &format!("/jobs/{id}/result"),
        None,
        CLIENT_TIMEOUT,
    )
    .expect("pending");
    assert_eq!(pending.status, 202, "unfinished job polls as 202");
    let missing = request(
        &addr,
        "GET",
        "/jobs/0000000000000000/result",
        None,
        CLIENT_TIMEOUT,
    )
    .expect("missing");
    assert_eq!(missing.status, 404);
    let listing = request(&addr, "GET", "/jobs", None, CLIENT_TIMEOUT).expect("list");
    assert_eq!(listing.status, 200);
    assert!(listing.body.render().contains(&id));
    stop(handle, &dir);
}

#[test]
fn malformed_wire_input_gets_4xx_never_a_crash() {
    let (handle, addr, dir) = start_server("wire", 1, 16);

    // JSON-level garbage and contract violations through the client.
    let cases: &[(&str, &str)] = &[
        ("not json at all", "syntactic garbage"),
        ("{\"model\": \"demo-fast\"}", "missing n"),
        ("{\"n\": 8}", "missing model"),
        ("{\"model\": \"demo-fast\", \"n\": 0}", "zero n"),
        ("{\"model\": \"no-such-model\", \"n\": 8}", "unknown model"),
        (
            "{\"model\": \"demo-fast\", \"n\": 8, \"seed\": -4}",
            "negative seed",
        ),
    ];
    for (body, why) in cases {
        let resp = raw_roundtrip(
            &addr,
            &format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "{why}: expected 400, got {resp:?}"
        );
    }

    // Wire-level garbage.
    let resp = raw_roundtrip(&addr, "FETCH /jobs NONSENSE/9\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "bad request line: {resp}");
    let resp = raw_roundtrip(&addr, "DELETE /jobs HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "bad method: {resp}");
    let resp = raw_roundtrip(&addr, "GET /totally/unknown HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404"), "unknown path: {resp}");

    // Size caps: an oversized declared body is refused up front.
    let resp = raw_roundtrip(
        &addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            linvar_serve::http::BODY_CAP + 1
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "oversized body: {resp}");

    // After all of that abuse, the server still works.
    let ok = submit(&addr, "demo-fast", 70, 16);
    assert_eq!(ok.status, 200);
    stop(handle, &dir);
}

/// Writes raw bytes on a fresh connection and reads the whole response.
fn raw_roundtrip(addr: &str, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn tenants_are_served_round_robin_not_first_come_first_served() {
    // One worker; tenant A floods the queue first, then tenant B adds
    // one job. Round-robin means B's job runs after at most one more of
    // A's jobs — not after all of them.
    let (handle, addr, dir) = start_server("fair", 1, 32);
    let blocker = submit(&addr, "demo-slow", 80, 40);
    let blocker_id = blocker.body.get_str("job").expect("id").to_string();
    wait_state(&addr, &blocker_id, "running");

    // Every backlog job holds ~200ms (demo-slow, 8 samples) so the
    // claim order is observable without racing instant jobs.
    let mut a_ids = Vec::new();
    for k in 0..4u64 {
        let mut body = Json::obj();
        body.set("model", "demo-slow")
            .set("seed", 81 + k)
            .set("n", 8u64)
            .set("tenant", "tenant-a");
        let resp = request(&addr, "POST", "/jobs", Some(&body), CLIENT_TIMEOUT).expect("a");
        assert_eq!(resp.status, 200);
        a_ids.push(resp.body.get_str("job").expect("id").to_string());
    }
    let mut body = Json::obj();
    body.set("model", "demo-slow")
        .set("seed", 90u64)
        .set("n", 8u64)
        .set("tenant", "tenant-b");
    let b = request(&addr, "POST", "/jobs", Some(&body), CLIENT_TIMEOUT).expect("b");
    let b_id = b.body.get_str("job").expect("id").to_string();

    wait_state(&addr, &b_id, "done");
    // Fairness: when B's job finished, tenant A's backlog must not have
    // fully drained first (the worker alternates tenants).
    let states: Vec<String> = a_ids
        .iter()
        .map(|id| {
            request(&addr, "GET", &format!("/jobs/{id}"), None, CLIENT_TIMEOUT)
                .expect("status")
                .body
                .get_str("state")
                .expect("state")
                .to_string()
        })
        .collect();
    assert!(
        states.iter().any(|s| s != "done"),
        "tenant B waited behind ALL of tenant A's backlog: {states:?}"
    );
    stop(handle, &dir);
}
