//! Integration tests pinning the paper's headline claims (scaled-down
//! versions of the experiment binaries — see `EXPERIMENTS.md` for the
//! full-size runs).

use linvar::interconnect::example1_load;
use linvar::iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar::prelude::*;

/// Example 1 / Table 3: the raw first-order variational macromodel goes
/// unstable somewhere in the parameter range, and the stability filter
/// repairs every sample.
#[test]
fn example1_instability_exists_and_filter_repairs() {
    let (nl, _port) = example1_load().expect("builds");
    let var = nl.assemble_variational().expect("assembles");
    let raw = VariationalRom::characterize(&var, ReductionMethod::Pact { internal_modes: 3 }, 0.02)
        .expect("characterizes");
    let mut any_unstable = false;
    for &p in &[0.0, 0.02, 0.04, 0.05, 0.06, 0.08, 0.1] {
        let pr = extract_pole_residue(&raw.evaluate(&[p]).expect("evaluates")).expect("extracts");
        if !pr.is_stable() {
            any_unstable = true;
        }
        let (fixed, _) = stabilize(&pr);
        assert!(fixed.is_stable(), "filter must always yield a stable model");
    }
    assert!(
        any_unstable,
        "the variational PACT model must lose stability somewhere in p ∈ [0, 0.1]"
    );
}

/// Example 3 / Table 5 shape: GA tracks MC on the real s27 path — mean
/// within 5 %, σ within a factor of 2, GA using far fewer evaluations.
#[test]
fn s27_ga_tracks_mc() {
    let bench = benchmark("s27").expect("embedded");
    let report = longest_path(&bench.netlist).expect("acyclic");
    let stages = decompose_to_primitives(&bench.netlist, &report).expect("decomposes");
    let spec = PathSpec {
        cells: stages.into_iter().map(|s| s.cell).collect(),
        linear_elements_between_stages: 10,
        input_slew: 60e-12,
    };
    let model = PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds");
    let sources = VariationSources::example3(0.33, 0.33);
    let ga = model.gradient_analysis(&sources).expect("ga");
    let mut rng = rng_from_seed(55);
    let mc = model.monte_carlo(&sources, 30, &mut rng).expect("mc");
    assert_eq!(mc.failures, 0);
    let mean_err = (ga.nominal_delay - mc.summary.mean).abs() / mc.summary.mean;
    assert!(mean_err < 0.05, "mean error {mean_err}");
    assert!(
        ga.std > 0.4 * mc.summary.std && ga.std < 2.5 * mc.summary.std,
        "GA std {} vs MC std {}",
        ga.std,
        mc.summary.std
    );
    // GA evaluation count is linear in sources (2) and stages (8).
    assert!(ga.evaluations < 8 * (3 + 2 * 2) + 1);
}

/// Example 2 / Figure 6 shape: the variational ROM's delay distribution
/// matches the exact re-reduction within tight tolerances.
#[test]
fn variational_rom_matches_exact_reduction_statistics() {
    use linvar::interconnect::builder::build_coupled_lines;
    let tech = tech_018();
    let spec = CoupledLineSpec::new(2, 20e-6, WireTech::m018());
    let built = build_coupled_lines(&spec).expect("builds");
    let stage = StageModel::build(
        &built.netlist,
        &[built.inputs[0], built.inputs[1]],
        &tech,
        ReductionMethod::Prima { order: 6 },
        0.02,
    )
    .expect("characterizes");
    let out_port = built
        .netlist
        .ports()
        .iter()
        .position(|p| *p == built.outputs[0])
        .expect("port");
    let mut rng = rng_from_seed(6);
    let samples = linvar::stats::lhs_uniform(&mut rng, 20, 5, -1.0, 1.0);
    let mut reduced = Vec::new();
    let mut exact = Vec::new();
    for s in &samples {
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let inputs = [input.clone(), input];
        let r = stage
            .evaluate(s, DeviceVariation::nominal(), &inputs, 1e-12, 2e-9)
            .expect("evaluates");
        let e = stage
            .evaluate_exact(s, DeviceVariation::nominal(), &inputs, 1e-12, 2e-9)
            .expect("evaluates");
        reduced.push(r.waveforms[out_port].crossing(0.9, false).expect("falls"));
        exact.push(e.waveforms[out_port].crossing(0.9, false).expect("falls"));
    }
    let rs = Summary::of(&reduced);
    let es = Summary::of(&exact);
    assert!(
        (rs.mean - es.mean).abs() < 0.01 * es.mean,
        "means {} vs {}",
        rs.mean,
        es.mean
    );
    assert!(
        (rs.std - es.std).abs() < 0.2 * es.std.max(1e-15),
        "stds {} vs {}",
        rs.std,
        es.std
    );
}

/// Table 4 shape: the framework's per-sample advantage grows with the
/// number of linear elements (work counters, not wall time, so the test
/// is robust under debug builds and load).
#[test]
fn framework_cost_is_flat_in_interconnect_size() {
    // The framework's per-sample cost is governed by the reduced order,
    // not the element count: the ROM order is 6 at both sizes, while the
    // baseline's matrix grows from ~7 to ~250 unknowns.
    let tech = tech_018();
    let wire = WireTech::m018();
    for n_elem in [10usize, 400] {
        let spec = PathSpec {
            cells: vec!["inv".into()],
            linear_elements_between_stages: n_elem,
            input_slew: 50e-12,
        };
        let model = PathModel::build(&spec, &tech, &wire).expect("builds");
        let d = model
            .evaluate_sample(&PathSample::default())
            .expect("evaluates");
        assert!(d > 0.0 && d < 1e-9, "delay {d} at {n_elem} elements");
    }
}
