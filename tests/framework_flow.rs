//! End-to-end integration test of the Table-1 framework flow:
//! construction (chords → effective load → vROM library) and per-sample
//! evaluation (first-order ROM → pole/residue → stability filter → TETA).

use linvar::interconnect::builder::build_coupled_lines;
use linvar::prelude::*;

#[test]
fn table1_flow_end_to_end() {
    // Construction.
    let tech = tech_018();
    let spec = CoupledLineSpec::new(2, 15e-6, WireTech::m018());
    let built = build_coupled_lines(&spec).expect("builds");
    // Every line needs a driver: an undriven line would float (singular G).
    let stage = StageModel::build(
        &built.netlist,
        &[built.inputs[0], built.inputs[1]],
        &tech,
        ReductionMethod::Prima { order: 6 },
        0.02,
    )
    .expect("characterizes");
    assert_eq!(stage.port_count(), 4);
    assert_eq!(stage.driver_count(), 2);

    // Evaluation across a spread of samples; every one must produce a
    // complete falling transition at the driven line's far end.
    let out_port = built
        .netlist
        .ports()
        .iter()
        .position(|p| *p == built.outputs[0])
        .expect("port");
    for sample in [
        [0.0; 5],
        [1.0, 0.0, 0.0, 0.0, 0.0],
        [-1.0, 1.0, -1.0, 1.0, -1.0],
        [0.5, 0.5, 0.5, 0.5, 0.5],
    ] {
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let res = stage
            .evaluate(
                &sample,
                DeviceVariation::nominal(),
                &[input.clone(), input],
                1e-12,
                2e-9,
            )
            .expect("evaluates");
        let out = &res.waveforms[out_port];
        assert!(out.initial_value() > 1.7, "sample {sample:?}");
        assert!(out.final_value() < 0.1, "sample {sample:?}");
    }
}

#[test]
fn single_characterization_serves_all_samples() {
    // The framework's key property: the same StageModel object (chords and
    // vROM fixed) is reused for every parameter sample — only `evaluate`
    // is called per sample, and device variations change nothing in the
    // model. This is structural, but verify the outputs actually differ
    // across samples (the model is not ignoring the parameters).
    let tech = tech_018();
    let spec = CoupledLineSpec::new(1, 20e-6, WireTech::m018());
    let built = build_coupled_lines(&spec).expect("builds");
    let stage = StageModel::build(
        &built.netlist,
        &[built.inputs[0]],
        &tech,
        ReductionMethod::Prima { order: 6 },
        0.02,
    )
    .expect("characterizes");
    let out_port = 1;
    let delay = |w: &[f64], dev: DeviceVariation| -> f64 {
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let res = stage
            .evaluate(w, dev, &[input], 1e-12, 2e-9)
            .expect("evaluates");
        res.waveforms[out_port].crossing(0.9, false).expect("falls")
    };
    let nominal = delay(&[0.0; 5], DeviceVariation::nominal());
    let wire_var = delay(&[1.0, 0.0, 0.0, 0.0, 1.0], DeviceVariation::nominal());
    let dev_var = delay(&[0.0; 5], DeviceVariation::new(0.0, 2.0));
    assert!(
        (wire_var - nominal).abs() > 1e-13,
        "wire params must matter"
    );
    assert!(
        (dev_var - nominal).abs() > 1e-13,
        "device params must matter"
    );
}

#[test]
fn stability_filter_preserves_transition_quality() {
    // Push the variational model far out (w = ±2 normalized units) where
    // first-order extrapolation is stressed; the stabilized model must
    // still produce a monotone-ish, rail-to-rail transition.
    let tech = tech_018();
    let spec = CoupledLineSpec::new(2, 25e-6, WireTech::m018());
    let built = build_coupled_lines(&spec).expect("builds");
    let stage = StageModel::build(
        &built.netlist,
        &[built.inputs[0], built.inputs[1]],
        &tech,
        ReductionMethod::Prima { order: 8 },
        0.02,
    )
    .expect("characterizes");
    let input = Waveform::ramp(0.0, 1.8, 20e-12, 60e-12);
    let res = stage
        .evaluate(
            &[2.0, -2.0, 2.0, -2.0, 2.0],
            DeviceVariation::nominal(),
            &[input.clone(), input],
            1e-12,
            3e-9,
        )
        .expect("evaluates even at extreme samples");
    for port in [2usize, 3] {
        let out = &res.waveforms[port];
        assert!(out.final_value() < 0.2, "port {port} settles low");
    }
}
