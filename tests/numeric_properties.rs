//! Property-based tests of the numeric kernels on random inputs.

use linvar::numeric::{eigen_decompose, householder_qr, jacobi_eigen, LuFactor, Matrix};
use proptest::prelude::*;

fn random_matrix(n: usize, seed: &[f64], diag_boost: f64) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = seed[(i * n + j) % seed.len()];
        v + if i == j { diag_boost } else { 0.0 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LU solve residual is tiny for diagonally dominant systems.
    #[test]
    fn lu_solve_residual(
        n in 2usize..25,
        seed in prop::collection::vec(-1.0f64..1.0, 64),
        rhs_seed in prop::collection::vec(-10.0f64..10.0, 32),
    ) {
        let a = random_matrix(n, &seed, 30.0);
        let b: Vec<f64> = (0..n).map(|i| rhs_seed[i % rhs_seed.len()]).collect();
        let x = LuFactor::new(&a).expect("dominant").solve(&b).expect("solves");
        let r = a.mul_vec(&x);
        for i in 0..n {
            prop_assert!((r[i] - b[i]).abs() < 1e-9 * (1.0 + b[i].abs()));
        }
    }

    /// det(A) from LU changes sign when two rows are swapped.
    #[test]
    fn determinant_antisymmetry(
        seed in prop::collection::vec(-1.0f64..1.0, 16),
    ) {
        let n = 4;
        let a = random_matrix(n, &seed, 5.0);
        let det_a = LuFactor::new(&a).expect("factors").determinant();
        let mut swapped = Matrix::zeros(n, n);
        for j in 0..n {
            swapped[(0, j)] = a[(1, j)];
            swapped[(1, j)] = a[(0, j)];
            for i in 2..n {
                swapped[(i, j)] = a[(i, j)];
            }
        }
        let det_s = LuFactor::new(&swapped).expect("factors").determinant();
        prop_assert!((det_a + det_s).abs() < 1e-9 * det_a.abs().max(1e-12));
    }

    /// QR: Q orthonormal and QR = A.
    #[test]
    fn qr_reconstruction(
        m in 3usize..12,
        extra in 0usize..4,
        seed in prop::collection::vec(-2.0f64..2.0, 48),
    ) {
        let rows = m + extra;
        let a = Matrix::from_fn(rows, m, |i, j| {
            seed[(i * m + j) % seed.len()] + if i == j { 3.0 } else { 0.0 }
        });
        let qr = householder_qr(&a).expect("factors");
        let qtq = qr.q().transpose().mul_mat(qr.q());
        prop_assert!((&qtq - &Matrix::identity(m)).max_abs() < 1e-10);
        let rec = qr.q().mul_mat(qr.r());
        prop_assert!((&rec - &a).max_abs() < 1e-10 * a.max_abs().max(1.0));
    }

    /// Symmetric Jacobi: eigenvalue equation and trace preservation.
    #[test]
    fn jacobi_invariants(
        n in 2usize..10,
        seed in prop::collection::vec(-3.0f64..3.0, 32),
    ) {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = seed[(i * n + j) % seed.len()];
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = jacobi_eigen(&a).expect("symmetric");
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-9 * trace.abs().max(1.0));
        for k in 0..n {
            let v = eig.vectors.col(k);
            let av = a.mul_vec(&v);
            for i in 0..n {
                prop_assert!(
                    (av[i] - eig.values[k] * v[i]).abs() < 1e-8 * a.max_abs().max(1.0)
                );
            }
        }
    }

    /// General eigensolver: conjugate symmetry and residual on random
    /// real matrices.
    #[test]
    fn eigen_residual_and_conjugacy(
        n in 2usize..10,
        seed in prop::collection::vec(-2.0f64..2.0, 64),
    ) {
        let a = random_matrix(n, &seed, 0.0);
        let dec = eigen_decompose(&a).expect("decomposes");
        prop_assert!(dec.max_residual(&a) < 1e-6 * a.max_abs().max(1.0));
        // Real matrix: imaginary parts cancel pairwise.
        let sum_im: f64 = dec.values.iter().map(|v| v.im).sum();
        prop_assert!(sum_im.abs() < 1e-7 * a.max_abs().max(1.0));
        // Eigenvalue sum equals the trace.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum_re: f64 = dec.values.iter().map(|v| v.re).sum();
        prop_assert!((sum_re - trace).abs() < 1e-7 * a.max_abs().max(1.0) * n as f64);
    }
}
