//! Property-based tests of the TETA waveform machinery and the
//! engine-agreement invariant.

use linvar::teta::Waveform;
use proptest::prelude::*;

/// Strategy: a strictly increasing time axis with values in [-2, 2].
fn waveform_strategy() -> impl Strategy<Value = Waveform> {
    (2usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(1e-12f64..1e-9, n),
            prop::collection::vec(-2.0f64..2.0, n),
        )
            .prop_map(|(dts, vals)| {
                let mut t = 0.0;
                let points: Vec<(f64, f64)> = dts
                    .into_iter()
                    .zip(vals)
                    .map(|(dt, v)| {
                        t += dt;
                        (t, v)
                    })
                    .collect();
                Waveform::from_points(points)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compression never deviates more than its tolerance anywhere.
    #[test]
    fn compress_bounds_error(w in waveform_strategy(), tol in 1e-4f64..0.5) {
        let c = w.compress(tol);
        prop_assert!(c.points().len() <= w.points().len());
        // Check on a dense grid spanning the waveform.
        let t0 = w.points()[0].0;
        let t1 = w.end_time();
        for k in 0..=200 {
            let t = t0 + (t1 - t0) * k as f64 / 200.0;
            let err = (c.eval(t) - w.eval(t)).abs();
            prop_assert!(err <= tol * 1.0001, "err {} > tol {} at t={}", err, tol, t);
        }
        // Endpoints always survive.
        prop_assert_eq!(c.points()[0], w.points()[0]);
        prop_assert_eq!(*c.points().last().unwrap(), *w.points().last().unwrap());
    }

    /// Shifting is exact and invertible.
    #[test]
    fn shift_roundtrip(w in waveform_strategy(), dt in -1e-9f64..1e-9) {
        let back = w.shifted(dt).shifted(-dt);
        for (a, b) in w.points().iter().zip(back.points()) {
            prop_assert!((a.0 - b.0).abs() < 1e-20 + 1e-12 * a.0.abs());
            prop_assert_eq!(a.1, b.1);
        }
        // eval agrees under the shift.
        let t_mid = (w.points()[0].0 + w.end_time()) / 2.0;
        prop_assert!((w.shifted(dt).eval(t_mid + dt) - w.eval(t_mid)).abs() < 1e-9);
    }

    /// Truncation preserves the early samples exactly and extrapolates
    /// constantly beyond the cut.
    #[test]
    fn truncation_properties(w in waveform_strategy()) {
        let t_cut = (w.points()[0].0 + w.end_time()) / 2.0;
        let t = w.truncated(t_cut);
        prop_assert!(t.end_time() <= t_cut);
        for p in t.points() {
            prop_assert!((w.eval(p.0) - p.1).abs() < 1e-12);
        }
        // After the cut: constant at the last kept value.
        prop_assert_eq!(t.eval(w.end_time() + 1e-9), t.final_value());
    }

    /// Saturated-ramp extraction inverts materialization for any (M, S).
    #[test]
    fn saturated_ramp_roundtrip(
        m in 1e-10f64..1e-8,
        s in 1e-11f64..1e-9,
        rising in any::<bool>(),
        vdd in 0.5f64..5.0,
    ) {
        let sr = linvar::teta::SaturatedRamp { m, s, rising };
        let w = sr.to_waveform(0.0, vdd);
        let back = w.to_saturated_ramp(0.0, vdd).expect("complete transition");
        prop_assert!((back.m - m).abs() < 1e-12 + 1e-9 * m);
        prop_assert!((back.s - s).abs() < 1e-12 + 1e-6 * s);
        prop_assert_eq!(back.rising, rising);
    }

    /// Crossings returned by `crossing` actually lie on the waveform.
    #[test]
    fn crossing_is_on_the_waveform(w in waveform_strategy(), level in -1.5f64..1.5) {
        for rising in [true, false] {
            if let Some(t) = w.crossing(level, rising) {
                prop_assert!((w.eval(t) - level).abs() < 1e-9,
                    "crossing at t={} evals to {}", t, w.eval(t));
            }
        }
    }
}
