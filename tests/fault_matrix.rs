//! Fault matrix: one injected failure per solver-stack layer, asserting
//! the recovery ladder's response — a typed error or a named degradation
//! rung, never a panic across a public API, and bitwise-identical results
//! at any thread count.
//!
//! Layer map (see DESIGN.md, "Failure semantics & degradation ladder"):
//! numeric → LU singularity; mor → order-degradation ladder; teta → SC
//! divergence under damping; spice → DC continuation rungs; stats →
//! quarantine/fail-fast policies; core → whole-path recovering driver.

use linvar::numeric::{Complex, LuFactor, Matrix, NumericError};
use linvar::prelude::*;

// ---------------------------------------------------------------- numeric

#[test]
fn lu_singularity_reports_condition_and_perturbation_recovers() {
    // Exactly singular: duplicate rows cancel exactly in elimination
    // (no rounding rescues the pivot).
    let mut a = Matrix::zeros(3, 3);
    let rows = [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0], [0.0, 0.0, 1.0]];
    for (i, r) in rows.iter().enumerate() {
        for (j, v) in r.iter().enumerate() {
            a[(i, j)] = *v;
        }
    }
    match LuFactor::new(&a) {
        Err(NumericError::SingularMatrix { .. }) => {}
        other => panic!("expected singular-matrix error, got {other:?}"),
    }
    // The recovering factorization perturbs the diagonal and reports it,
    // together with a finite condition estimate of what it factored.
    let (lu, rec) = LuFactor::new_recovering(&a).expect("perturbation recovers");
    assert!(rec.perturbed, "must record the diagonal perturbation");
    assert!(rec.perturbation > 0.0);
    assert!(
        rec.condition_estimate.is_finite(),
        "recovered factorization reports a condition estimate: {rec:?}"
    );
    let x = lu.solve(&[1.0, 1.0, 1.0]).expect("factored system solves");
    assert!(x.iter().all(|v| v.is_finite()));
}

// ------------------------------------------------------------- numeric (sparse)

use linvar::numeric::{analyze_cached, SparseLu, SparseMatrix};

#[test]
fn sparse_singular_and_degenerate_patterns_are_typed_errors() {
    // Exactly singular: two structurally distinct columns with identical
    // values — elimination cancels the second pivot exactly.
    let dup = SparseMatrix::from_triplets(
        3,
        3,
        &[
            (0, 0, 1.0),
            (1, 0, 2.0),
            (0, 1, 1.0),
            (1, 1, 2.0),
            (2, 2, 1.0),
        ],
    )
    .unwrap();
    match SparseLu::new(&dup) {
        Err(NumericError::SingularMatrix { condition, .. }) => {
            assert!(condition.is_some(), "singular error carries an estimate");
        }
        other => panic!("expected singular-matrix error, got {other:?}"),
    }
    // Structurally empty row: no entry anywhere in row 1.
    let empty_row =
        SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (2, 2, 1.0), (0, 2, 0.5)]).unwrap();
    assert!(
        matches!(
            SparseLu::new(&empty_row),
            Err(NumericError::SingularMatrix { .. })
        ),
        "empty row must be a typed singularity, not a panic"
    );
    // All-zero values on a full pattern (stamps that cancelled to zero).
    let zeros =
        SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, -1.0), (1, 1, 0.0), (0, 1, 0.0)])
            .unwrap();
    assert!(matches!(
        SparseLu::new(&zeros),
        Err(NumericError::SingularMatrix { .. })
    ));
}

#[test]
fn sparse_zero_pivot_is_rescued_by_pivoting_not_recovery() {
    // MNA saddle: zero diagonal at the branch row. Partial pivoting must
    // handle this without engaging the perturbation ladder.
    let a = SparseMatrix::from_triplets(
        3,
        3,
        &[
            (0, 0, 1e-3),
            (0, 2, 1.0),
            (2, 0, 1.0),
            (1, 1, 1e-3),
            (0, 1, -1e-3),
            (1, 0, -1e-3),
        ],
    )
    .unwrap();
    let symbolic = analyze_cached(&a).unwrap();
    let (lu, rec) = SparseLu::new_recovering(&a, &symbolic).expect("pivoting suffices");
    assert!(
        !rec.perturbed,
        "pivoting must not count as recovery: {rec:?}"
    );
    let x = lu.solve(&[0.0, 0.0, 1.0]).unwrap();
    assert!((x[0] - 1.0).abs() < 1e-12, "source pins node 0: {x:?}");
}

#[test]
fn sparse_permuted_duplicate_stamps_assemble_identically() {
    // The same physical stamps in two emission orders (duplicates summed
    // in-stream) must assemble to matrices that solve identically — order
    // only matters for bitwise golden replay, which uses one fixed order.
    let fwd = [
        (0, 0, 2.0),
        (0, 0, 0.5),
        (1, 1, 3.0),
        (0, 1, -1.0),
        (1, 0, -1.0),
    ];
    let rev: Vec<(usize, usize, f64)> = fwd.iter().rev().copied().collect();
    let a = SparseMatrix::from_triplets(2, 2, &fwd).unwrap();
    let b = SparseMatrix::from_triplets(2, 2, &rev).unwrap();
    let xa = SparseLu::new(&a).unwrap().solve(&[1.0, 1.0]).unwrap();
    let xb = SparseLu::new(&b).unwrap().solve(&[1.0, 1.0]).unwrap();
    for (u, v) in xa.iter().zip(&xb) {
        assert!((u - v).abs() < 1e-14);
    }
}

#[test]
fn sparse_stale_pattern_refactor_is_rejected_typed() {
    let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 2.0)]).unwrap();
    let mut lu = SparseLu::new(&a).unwrap();
    // New coupling entry changes the sparsity pattern: the cached
    // elimination pattern is stale and refactor must say so (the engine
    // falls back to a full factorization on this signal).
    let grown =
        SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 2.0), (0, 1, -0.5)]).unwrap();
    assert!(matches!(
        lu.refactor(&grown),
        Err(NumericError::InvalidInput(_))
    ));
    // The rejected refactor must not have corrupted the resident factors.
    let x = lu.solve(&[2.0, 4.0]).unwrap();
    assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
}

#[test]
fn sparse_recovery_ladder_matches_dense_semantics() {
    // The same exactly-singular system the dense rung test uses: the
    // sparse ladder must also recover by diagonal perturbation and report
    // the same shape of evidence.
    let a = SparseMatrix::from_triplets(
        3,
        3,
        &[
            (0, 0, 1.0),
            (0, 1, 2.0),
            (0, 2, 3.0),
            (1, 0, 1.0),
            (1, 1, 2.0),
            (1, 2, 3.0),
            (2, 2, 1.0),
        ],
    )
    .unwrap();
    let symbolic = analyze_cached(&a).unwrap();
    let (lu, rec) = SparseLu::new_recovering(&a, &symbolic).expect("perturbation recovers");
    assert!(rec.perturbed);
    assert!(rec.perturbation > 0.0);
    assert!(rec.condition_estimate.is_finite());
    let x = lu.solve(&[1.0, 1.0, 1.0]).expect("factored system solves");
    assert!(x.iter().all(|v| v.is_finite()));
}

// ------------------------------------------------------- numeric (complex/AC)

use linvar::numeric::{embed_triplets, CAnySolver, SolverChoice};

#[test]
fn ac_singular_complex_system_recovers_on_both_backends() {
    // Row 2 is exactly zero in both real and imaginary parts: the
    // embedded 2n×2n real system is exactly singular, and the complex
    // wrapper must ride the same perturbation rung as the real path —
    // on both backends — reporting the recovery, never panicking.
    let triplets = [
        (0, 0, Complex::new(2.0, 1.0)),
        (0, 1, Complex::new(-1.0, 0.0)),
        (1, 1, Complex::new(3.0, -0.5)),
        (1, 0, Complex::new(-1.0, 0.2)),
    ];
    for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
        let (solver, rec) = CAnySolver::factor_triplets_recovering(3, &triplets, choice)
            .expect("perturbation recovers the empty row");
        assert!(rec.perturbed, "{choice:?}: must record the perturbation");
        assert!(rec.perturbation > 0.0);
        let x = solver
            .solve(&[Complex::ONE, Complex::ZERO, Complex::new(0.0, 1.0)])
            .expect("recovered factorization solves");
        assert!(x.iter().all(|z| z.re.is_finite() && z.im.is_finite()));
    }
}

#[test]
fn ac_embedding_and_refactor_misuse_are_typed_errors() {
    // Out-of-range complex triplet: a typed InvalidInput from the
    // embedding, not an out-of-bounds panic in the 4-block expansion.
    let bad = [(2, 0, Complex::ONE)];
    assert!(matches!(
        embed_triplets(2, &bad),
        Err(NumericError::InvalidInput(_))
    ));
    // Refactoring with a different order is a typed dimension mismatch
    // and must not corrupt the resident factors.
    let good = [
        (0, 0, Complex::new(2.0, 0.1)),
        (1, 1, Complex::new(4.0, 0.0)),
    ];
    let mut solver = CAnySolver::factor_triplets(2, &good, SolverChoice::Dense).unwrap();
    assert!(matches!(
        solver.refactor_triplets(3, &good),
        Err(NumericError::DimensionMismatch { .. })
    ));
    let x = solver
        .solve(&[Complex::new(2.0, 0.1), Complex::ZERO])
        .unwrap();
    assert!((x[0].re - 1.0).abs() < 1e-12 && x[0].im.abs() < 1e-12);
}

#[test]
fn ac_sweep_through_a_dc_singular_netlist_stays_finite() {
    use linvar::circuit::{Netlist, SourceWaveform};
    use linvar::spice::ac_analysis_with;
    // A purely capacitive divider: at f = 0 every capacitor vanishes and
    // the output node's row is exactly zero — the sweep's first factor
    // must engage the recovery rung, and the later points must refactor
    // back onto the unperturbed physics. No panic, finite magnitudes,
    // and the high-frequency gain must recover the C1/(C1+C2) divider.
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource("Vin", inp, Netlist::GROUND, SourceWaveform::Dc(0.0))
        .unwrap();
    nl.add_capacitor("C1", inp, out, 2e-12).unwrap();
    nl.add_capacitor("C2", out, Netlist::GROUND, 1e-12).unwrap();
    let freqs = [0.0, 1e6, 1e9];
    for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
        let res = ac_analysis_with(&nl, "Vin", &["out"], &freqs, choice)
            .expect("recovery rung must carry the DC point");
        let mags = res.magnitude("out").unwrap();
        assert!(mags.iter().all(|m| m.is_finite()), "{choice:?}: {mags:?}");
        assert!(
            (mags[2] - 2.0 / 3.0).abs() < 1e-6,
            "{choice:?}: capacitive divider gain at 1 GHz, got {}",
            mags[2]
        );
    }
}

// -------------------------------------------------------------------- mor

#[test]
fn mor_order_ladder_degrades_or_exhausts_with_typed_errors() {
    // All-RHP model: every order of the ladder strips every pole, so the
    // ladder must exhaust with a typed error — not panic, not serve an
    // empty model.
    let all_rhp = linvar::mor::ReducedModel {
        gr: Matrix::from_fn(2, 2, |i, j| if i == j { -1e-3 } else { 0.0 }),
        cr: Matrix::from_fn(2, 2, |i, j| if i == j { 1e-15 } else { 0.0 }),
        br: Matrix::from_fn(2, 1, |_, _| 1.0),
    };
    assert!(
        linvar::mor::extract_stabilized_degrading(&all_rhp, DEFAULT_BETA_TOL).is_err(),
        "an all-RHP pencil must exhaust the order ladder"
    );

    // Mixed model: one stable, one unstable mode. The ladder serves a
    // lower order and the degradation report names it.
    let mixed = linvar::mor::ReducedModel {
        gr: Matrix::from_fn(2, 2, |i, j| match (i, j) {
            (0, 0) => 1e-3,
            (1, 1) => -2e-3,
            _ => 0.0,
        }),
        cr: Matrix::from_fn(2, 2, |i, j| if i == j { 1e-15 } else { 0.0 }),
        br: Matrix::from_fn(2, 1, |_, _| 1.0),
    };
    // A β tolerance the pole-stripped order-2 model cannot meet, but the
    // order-1 truncation (purely stable) meets exactly.
    let (pr, _report, deg) = linvar::mor::extract_stabilized_degrading(&mixed, 0.4)
        .expect("the stable mode must survive the ladder");
    assert_eq!(deg.original_order, 2);
    assert!(
        deg.served_order < deg.original_order,
        "served order must drop: {deg:?}"
    );
    assert!(!deg.attempted_orders.is_empty());
    assert!(
        pr.poles.iter().all(|p| p.re < 0.0),
        "served model must be stable: {:?}",
        pr.poles
    );
}

use linvar::mor::DEFAULT_BETA_TOL;

// ------------------------------------------------------------------- teta

#[test]
fn sc_divergence_stays_typed_under_damped_chords() {
    use linvar::mor::PoleResidueModel;
    use linvar::numeric::CMatrix;
    use linvar::teta::engine::DriverSpec;
    use linvar::teta::{StageSolver, StageSolverOptions, TetaError};
    // The pathological load of `failure_injection`: instantaneous
    // impedance so large the SC fixed point cannot contract. Even with
    // chord re-selection (damping) the solver must give up with a typed
    // divergence error, not hang or panic.
    let mut r = CMatrix::zeros(1, 1);
    r[(0, 0)] = Complex::from_real(1e20);
    let load = PoleResidueModel {
        poles: vec![Complex::from_real(-1e6)],
        residues: vec![r],
        direct: Matrix::zeros(1, 1),
    };
    let tech = tech_018();
    let nmos = tech.library.get(&tech.library.nmos_name()).unwrap().clone();
    let pmos = tech.library.get(&tech.library.pmos_name()).unwrap().clone();
    let driver = DriverSpec {
        port: 0,
        input: Waveform::ramp(0.0, 1.8, 10e-12, 30e-12),
        nmos,
        pmos,
        wn: tech.wn,
        wp: tech.wp,
        length: tech.library.lmin,
        g_out: 1e-3,
    };
    let mut opts = StageSolverOptions::new(1.8, 1e-9, 1e-12);
    opts.sc_damping = 0.5;
    let res = StageSolver::new(&load, vec![driver], opts).unwrap().run();
    assert!(
        matches!(res, Err(TetaError::ScDivergence { .. })),
        "expected typed SC divergence under damping, got {res:?}"
    );
}

// ------------------------------------------------------------------ spice

#[test]
fn dc_ladder_escalates_when_direct_newton_is_starved() {
    use linvar::circuit::{MosType, Netlist, SourceWaveform};
    // An inverter biased at midrail with a Newton budget too small for a
    // cold start: rung 0 (direct Newton) fails, and the continuation rungs
    // — which approach the solution through a chain of warm starts — must
    // serve the operating point and say so in the recovery log.
    let tech = tech_018();
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource("Vdd", vdd, Netlist::GROUND, SourceWaveform::Dc(1.8))
        .unwrap();
    nl.add_vsource("Vin", inp, Netlist::GROUND, SourceWaveform::Dc(0.9))
        .unwrap();
    nl.add_mosfet(
        "MP",
        out,
        inp,
        vdd,
        vdd,
        MosType::Pmos,
        &tech.library.pmos_name(),
        tech.wp,
        tech.library.lmin,
    )
    .unwrap();
    nl.add_mosfet(
        "MN",
        out,
        inp,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        &tech.library.nmos_name(),
        tech.wn,
        tech.library.lmin,
    )
    .unwrap();
    nl.add_capacitor("CL", out, Netlist::GROUND, 10e-15)
        .unwrap();
    let mut opts = TransientOptions::new(10e-12, 1e-12);
    opts.max_newton = 2;
    let res = Transient::with_devices(&nl, &tech.library, DeviceVariation::nominal(), &opts)
        .unwrap()
        .run()
        .expect("continuation rungs must rescue the starved Newton");
    assert_ne!(
        res.recovery.dc_strategy,
        DcStrategy::DirectNewton,
        "recovery log must name the continuation rung: {:?}",
        res.recovery
    );
    assert!(!res.recovery.was_clean());
}

// ------------------------------------------------------------------ stats

#[test]
fn panicking_evaluator_is_quarantined_bitwise_across_threads() {
    use linvar::stats::{monte_carlo_par_with_policy, monte_carlo_with_policy};
    // Samples whose evaluator panics on every attempt must consume the
    // full attempt budget, land as Failed with a panic diagnostic, and
    // never tear down the run — identically at every thread count.
    let samples: Vec<usize> = (0..90).collect();
    let policy = RecoveryPolicy::default();
    let eval = |&k: &usize, attempt: usize| -> Result<(f64, SampleStatus), String> {
        if k % 9 == 0 {
            panic!("injected panic at sample {k} attempt {attempt}");
        }
        Ok((k as f64 * 1.5, SampleStatus::Clean))
    };
    let serial = monte_carlo_with_policy(&samples, policy, eval);
    assert_eq!(serial.health.n_failed, 10);
    assert_eq!(serial.health.n_clean, 80);
    let budget = policy.attempt_budget();
    for h in &serial.sample_health {
        if h.status == SampleStatus::Failed {
            assert_eq!(h.attempts, budget, "panics must consume the budget");
        }
    }
    let diag = serial.first_error.as_deref().expect("diagnostic kept");
    assert!(diag.contains("panic"), "diagnostic {diag:?}");
    for threads in [1, 2, 8] {
        let par = monte_carlo_par_with_policy(&samples, threads, policy, eval);
        assert_eq!(par.values, serial.values, "threads={threads}");
        assert_eq!(par.sample_health, serial.sample_health);
        assert_eq!(par.health, serial.health);
        assert_eq!(par.failed_indices, serial.failed_indices);
        assert_eq!(par.first_error, serial.first_error);
    }
}

#[test]
fn fail_fast_truncates_at_the_same_sample_at_any_thread_count() {
    use linvar::stats::{monte_carlo_par_with_policy, monte_carlo_with_policy};
    // Deterministic injected-failure schedule: sample 41 fails every
    // attempt under a fail-fast strict policy. The run must truncate at
    // index 41 regardless of scheduling.
    let samples: Vec<usize> = (0..120).collect();
    let policy = RecoveryPolicy::strict();
    let eval = |&k: &usize, _attempt: usize| -> Result<(f64, SampleStatus), String> {
        if k == 41 || k == 97 {
            Err(format!("injected failure at {k}"))
        } else {
            Ok((f64::sin(k as f64), SampleStatus::Clean))
        }
    };
    let serial = monte_carlo_with_policy(&samples, policy, eval);
    assert_eq!(serial.truncated_at, Some(41));
    assert_eq!(serial.failed_indices, vec![41]);
    assert_eq!(
        serial.first_error.as_deref(),
        Some("injected failure at 41")
    );
    for threads in [1, 2, 8] {
        let par = monte_carlo_par_with_policy(&samples, threads, policy, eval);
        assert_eq!(par.truncated_at, Some(41), "threads={threads}");
        assert_eq!(par.values, serial.values);
        assert_eq!(par.sample_health, serial.sample_health);
        assert_eq!(par.failed_indices, serial.failed_indices);
        assert_eq!(par.first_error, serial.first_error);
    }
}

// --------------------------------------------------------------- spectral

#[test]
fn singular_quadrature_system_is_a_typed_error() {
    use linvar::stats::{run_spectral, SpectralError};
    // A stochastic-testing plan whose node set collapses (two identical
    // collocation nodes) makes the Vandermonde system exactly singular.
    // The plan builder never produces this; the injection goes through
    // the public plan fields, and the solve must answer with a typed
    // error — not a panic, not garbage coefficients.
    let mut plan = SpectralPlan::build(2, SpectralConfig::stochastic_testing(1)).unwrap();
    let dup = plan.nodes[0].clone();
    plan.nodes[1] = dup;
    let res = run_spectral(
        &plan,
        1,
        RecoveryPolicy::default(),
        3,
        |x: &[f64], _a: usize| -> Result<(f64, SampleStatus), String> {
            Ok((x[0] + x[1], SampleStatus::Clean))
        },
    );
    match res {
        Err(SpectralError::SingularSystem(msg)) => {
            assert!(!msg.is_empty(), "singular error carries a diagnostic");
        }
        other => panic!("expected a singular-system error, got {other:?}"),
    }
}

#[test]
fn nan_at_collocation_node_is_typed_and_ladder_matches_mc() {
    use linvar::stats::{monte_carlo_par_with_policy, run_spectral, SpectralError};
    let plan = SpectralPlan::build(2, SpectralConfig::tensor(2)).unwrap();
    let policy = RecoveryPolicy::default();

    // A NaN surfacing at one collocation node: every quadrature weight
    // is load-bearing, so the solve must refuse with the node's index
    // rather than launder the NaN into the coefficients.
    let res = run_spectral(
        &plan,
        2,
        policy,
        3,
        |x: &[f64], _a: usize| -> Result<(f64, SampleStatus), String> {
            if x[0] > 1.5 {
                Ok((f64::NAN, SampleStatus::Clean))
            } else {
                Ok((x[0] * x[1], SampleStatus::Clean))
            }
        },
    );
    match res {
        Err(SpectralError::NonFiniteNode { index }) => {
            assert!(plan.nodes[index][0] > 1.5, "error names the NaN node");
        }
        other => panic!("expected a non-finite-node error, got {other:?}"),
    }

    // A permanently failing node is *terminal* for the spectral engine
    // (MC quarantines and carries on — a collocation grid cannot).
    let res = run_spectral(
        &plan,
        2,
        policy,
        3,
        |x: &[f64], a: usize| -> Result<(f64, SampleStatus), String> {
            if x[0] > 1.5 {
                Err(format!("injected permanent failure (attempt {a})"))
            } else {
                Ok((x[0] * x[1], SampleStatus::Clean))
            }
        },
    );
    match res {
        Err(SpectralError::NodeFailures {
            failed,
            first_error,
        }) => {
            assert!(failed >= 1);
            let diag = first_error.expect("diagnostic kept");
            assert!(diag.contains("injected permanent failure"), "{diag}");
        }
        other => panic!("expected a node-failures error, got {other:?}"),
    }

    // Recovery parity: a NaN-then-recover node rides the *same* attempt
    // ladder as the MC driver — identical per-sample health on the same
    // node set, and a bitwise-clean final result.
    let flaky = |x: &[f64], a: usize| -> Result<(f64, SampleStatus), String> {
        if x[0] > 1.5 && a == 0 {
            Err("transient NaN at the extreme node".into())
        } else {
            Ok((x[0] * x[1] + 1.0, SampleStatus::Clean))
        }
    };
    let clean = |x: &[f64], _a: usize| -> Result<(f64, SampleStatus), String> {
        Ok((x[0] * x[1] + 1.0, SampleStatus::Clean))
    };
    let recovered = run_spectral(&plan, 2, policy, 3, flaky).expect("retry rescues the node");
    let reference = run_spectral(&plan, 2, policy, 3, clean).expect("clean run");
    assert!(
        recovered.health.n_recovered >= 1,
        "ladder must report the retry: {:?}",
        recovered.health
    );
    assert_eq!(
        recovered
            .coefficients
            .iter()
            .map(|c| c.to_bits())
            .collect::<Vec<_>>(),
        reference
            .coefficients
            .iter()
            .map(|c| c.to_bits())
            .collect::<Vec<_>>(),
        "a recovered node must not shift a coefficient bit"
    );
    let mc =
        monte_carlo_par_with_policy(&plan.nodes, 2, policy, |node: &Vec<f64>, a| flaky(node, a));
    assert_eq!(
        recovered.sample_health, mc.sample_health,
        "spectral nodes and MC samples must ride the same attempt ladder"
    );
}

#[test]
fn spectral_campaign_kill_and_resume_mid_grid_is_bitwise() {
    use linvar::stats::{run_spectral_campaign, CampaignConfig, CampaignVerdict};
    let plan = SpectralPlan::build(3, SpectralConfig::smolyak(2, 1)).unwrap();
    let n_nodes = plan.nodes.len();
    let model = |x: &[f64], _a: usize| -> Result<(f64, SampleStatus), String> {
        Ok((
            (x[0] + 0.5 * x[1] * x[1] - 0.25 * x[2]).exp(),
            SampleStatus::Clean,
        ))
    };
    let policy = RecoveryPolicy::default();
    let clean = run_spectral_campaign(
        &plan,
        1,
        policy,
        &CampaignConfig::default(),
        5,
        0xABCD,
        model,
    )
    .expect("clean campaign");
    let clean_res = clean.result.expect("complete");
    let clean_bits: Vec<u64> = clean_res.coefficients.iter().map(|c| c.to_bits()).collect();
    for threads in [1usize, 2, 8] {
        let dir = std::env::temp_dir().join(format!(
            "linvar-fault-matrix-spectral-{}-{threads}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("grid.ckpt");
        // Kill mid-grid: the deterministic sample-budget preemption
        // stops the campaign halfway with a snapshot on disk.
        let first = run_spectral_campaign(
            &plan,
            threads,
            policy,
            &CampaignConfig {
                checkpoint: Some(snapshot.clone()),
                sample_budget: Some(n_nodes / 2),
                checkpoint_every: 1,
                ..CampaignConfig::default()
            },
            5,
            0xABCD,
            model,
        )
        .expect("truncated campaign");
        assert!(
            matches!(first.verdict, CampaignVerdict::Truncated { .. }),
            "threads={threads}: must truncate mid-grid"
        );
        assert!(
            first.result.is_none(),
            "a half-evaluated grid must not produce spectral estimates"
        );
        let second = run_spectral_campaign(
            &plan,
            threads,
            policy,
            &CampaignConfig {
                resume: Some(snapshot.clone()),
                ..CampaignConfig::default()
            },
            5,
            0xABCD,
            model,
        )
        .expect("resumed campaign");
        assert_eq!(second.verdict, CampaignVerdict::Complete);
        assert_eq!(second.resumed, first.completed, "threads={threads}");
        let res = second.result.expect("resume completes the grid");
        let bits: Vec<u64> = res.coefficients.iter().map(|c| c.to_bits()).collect();
        assert_eq!(
            bits, clean_bits,
            "threads={threads}: resumed coefficients must match the clean run"
        );
        assert_eq!(res.mean.to_bits(), clean_res.mean.to_bits());
        assert_eq!(res.std.to_bits(), clean_res.std.to_bits());
        for (a, b) in res.quantiles.iter().zip(&clean_res.quantiles) {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "threads={threads}: quantile");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ------------------------------------------------------------------- core

#[test]
fn path_recovering_driver_is_deterministic_and_reports_health() {
    // The whole-path recovering Monte-Carlo driver: bitwise identical
    // delays and health at every thread count, with the degradation
    // reports empty when the fast path serves every sample.
    let spec = PathSpec {
        cells: vec!["inv".into(), "inv".into()],
        linear_elements_between_stages: 10,
        input_slew: 50e-12,
    };
    let model = PathModel::build(&spec, &tech_018(), &WireTech::m018()).unwrap();
    let sources = VariationSources::example3(0.33, 0.33);
    let policy = RecoveryPolicy::default();
    let base = model
        .monte_carlo_par_recovering(&sources, 4, 7, 1, policy)
        .unwrap();
    assert_eq!(base.health.total(), 4);
    assert_eq!(base.sample_health.len(), 4);
    assert_eq!(base.failures, base.health.n_failed);
    for threads in [2, 4] {
        let par = model
            .monte_carlo_par_recovering(&sources, 4, 7, threads, policy)
            .unwrap();
        assert_eq!(par.delays, base.delays, "threads={threads}");
        assert_eq!(par.sample_health, base.sample_health);
        assert_eq!(par.health, base.health);
        assert_eq!(par.reports, base.reports);
    }
    if base.health.all_clean() {
        assert!(base.reports.is_empty(), "clean runs carry no reports");
    } else {
        // Any assisted sample must carry a report naming its rung.
        assert!(!base.reports.is_empty());
    }
}

#[test]
fn degradation_report_display_names_the_serving_rung() {
    let report = DegradationReport {
        sample_index: 7,
        rung: EngineRung::UnreducedMna,
        sc_retries: 3,
        notes: vec!["stage 1 (nand2): served by the unreduced MNA load".into()],
    };
    let text = report.to_string();
    assert!(text.contains("sample 7"), "{text}");
    assert!(text.contains("unreduced MNA"), "{text}");
    assert!(text.contains("3 SC retries"), "{text}");
    assert_eq!(report.status(), SampleStatus::Degraded);
    // Every rung renders a distinct human-readable name.
    let rungs = [
        EngineRung::VariationalRom,
        EngineRung::RefinedSc,
        EngineRung::ExactReduction,
        EngineRung::DegradedOrder(3),
        EngineRung::UnreducedMna,
        EngineRung::SpiceBaseline,
    ];
    let names: Vec<String> = rungs.iter().map(|r| r.to_string()).collect();
    for (i, a) in names.iter().enumerate() {
        for b in names.iter().skip(i + 1) {
            assert_ne!(a, b);
        }
    }
}

// ------------------------------------------------------------------ shard

/// Shared scaffolding for the shard-layer rows: a deterministic mixed
/// workload run once unsharded (the parity reference) and once under the
/// supervisor with one injected [`ShardFault`].
mod shard_rows {
    use linvar::stats::{
        run_campaign, run_sharded_campaign, CampaignConfig, CampaignFingerprint, CampaignResult,
        SampleStatus, ShardConfig, ShardFault, ShardOutcome, ShardedCampaignResult,
    };
    use linvar_core::RecoveryPolicy;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    pub const N: usize = 16;

    pub fn eval(s: &usize, attempt: usize) -> Result<(f64, SampleStatus), String> {
        let k = *s;
        if k == 9 {
            return Err(format!("injected permanent failure at {k}"));
        }
        if k % 5 == 2 && attempt == 0 {
            return Err(format!("injected transient at {k}"));
        }
        Ok(((k as f64).cos(), SampleStatus::Clean))
    }

    fn fingerprint() -> CampaignFingerprint {
        CampaignFingerprint {
            master_seed: 3,
            n_samples: N,
            policy: RecoveryPolicy::default(),
            model: linvar::stats::fingerprint_str("fault-matrix-shard"),
        }
    }

    pub fn reference() -> CampaignResult {
        let samples: Vec<usize> = (0..N).collect();
        run_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &CampaignConfig::default(),
            fingerprint(),
            eval,
        )
        .expect("reference campaign")
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let k = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "linvar-fault-matrix-shard-{}-{tag}-{k}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    /// Runs the workload under the supervisor with `fault` injected into
    /// shard 1, asserts recovery parity with the unsharded reference,
    /// and returns the result for fault-specific verdict assertions.
    pub fn run_with_fault(tag: &str, fault: ShardFault) -> ShardedCampaignResult {
        let samples: Vec<usize> = (0..N).collect();
        let reference = reference();
        let dir = tmp_dir(tag);
        let cfg = ShardConfig {
            n_shards: 4,
            checkpoint: Some(dir.join("campaign")),
            faults: vec![(1, fault)],
            stall_after: Some(Duration::from_millis(50)),
            poll_interval: Duration::from_millis(5),
            ..ShardConfig::default()
        };
        let sharded = run_sharded_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &cfg,
            &fingerprint(),
            eval,
        )
        .expect("supervised campaign");
        assert_eq!(sharded.values, reference.values, "{tag}: values");
        assert_eq!(
            sharded.sample_health, reference.sample_health,
            "{tag}: sample health"
        );
        assert_eq!(sharded.health, reference.health, "{tag}: health");
        assert_eq!(
            sharded.first_error, reference.first_error,
            "{tag}: first_error"
        );
        assert_eq!(
            sharded.summary.mean.to_bits(),
            reference.summary.mean.to_bits(),
            "{tag}: mean bits"
        );
        assert!(
            sharded
                .shards
                .iter()
                .all(|v| v.outcome == ShardOutcome::Completed),
            "{tag}: every shard must recover: {:?}",
            sharded.shards
        );
        let _ = std::fs::remove_dir_all(&dir);
        sharded
    }
}

#[test]
fn killed_shard_is_retried_to_parity() {
    use linvar::stats::ShardFault;
    // Shard 1 dies before it can write a snapshot: the retry ladder
    // re-runs it from scratch and the merge is still bitwise parity.
    let res = shard_rows::run_with_fault("kill", ShardFault::KillBeforeCheckpoint);
    let victim = res.shards.iter().find(|v| v.shard == 1).unwrap();
    assert!(
        victim.attempts >= 2,
        "death before checkpoint must consume a retry: {victim:?}"
    );
}

#[test]
fn corrupted_shard_checkpoint_is_rejected_and_rerun() {
    use linvar::stats::ShardFault;
    // Shard 1 dies leaving a corrupt snapshot: prevalidation on the
    // retry rejects it (typed, no panic) and re-runs the shard fresh.
    let res = shard_rows::run_with_fault("corrupt", ShardFault::CorruptCheckpoint);
    let victim = res.shards.iter().find(|v| v.shard == 1).unwrap();
    assert!(victim.attempts >= 2, "corruption costs a retry: {victim:?}");
}

#[test]
fn stalled_shard_is_redispatched_to_parity() {
    use linvar::stats::ShardFault;
    // Shard 1 goes silent past the heartbeat deadline: the watchdog
    // re-dispatches it; first-writer-wins dedup keeps the merge exact
    // even when both the stalled original and the replacement deliver.
    let res = shard_rows::run_with_fault("stall", ShardFault::Stall { millis: 300 });
    assert!(
        res.shards.iter().any(|v| v.redispatched),
        "watchdog must have re-dispatched the stalled shard: {:?}",
        res.shards
    );
}

#[test]
fn duplicate_shard_completion_is_deduplicated() {
    use linvar::stats::ShardFault;
    // Shard 1 delivers its results twice: per-sample first-writer-wins
    // dedup must keep every slot single-writer — the merged bookkeeping
    // counts each sample exactly once.
    let res = shard_rows::run_with_fault("dup", ShardFault::DuplicateCompletion);
    assert_eq!(
        res.completed,
        shard_rows::N,
        "every sample merged exactly once"
    );
}
