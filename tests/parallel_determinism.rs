//! End-to-end determinism contract of the parallel Monte-Carlo engine:
//! the same master seed must produce bitwise-identical results at any
//! worker count, and the parallel driver must agree exactly with the
//! serial one. Exercised on the s27 longest path — the full stack from
//! ISCAS netlist through decomposition, path modelling and TETA
//! evaluation, not a toy closure.

use linvar::iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar::prelude::*;
use linvar::stats::{monte_carlo, monte_carlo_par};

const MASTER_SEED: u64 = 2002;
const N_SAMPLES: usize = 12;

fn s27_model() -> PathModel {
    let bench = benchmark("s27").expect("embedded benchmark");
    let report = longest_path(&bench.netlist).expect("has a path");
    let stages = decompose_to_primitives(&bench.netlist, &report).expect("decomposes");
    let spec = PathSpec {
        cells: stages.into_iter().map(|s| s.cell).collect(),
        linear_elements_between_stages: 10,
        input_slew: 60e-12,
    };
    PathModel::build(&spec, &tech_018(), &WireTech::m018()).expect("builds")
}

#[test]
fn s27_path_mc_is_invariant_under_thread_count() {
    let model = s27_model();
    let sources = VariationSources::example3(0.33, 0.33);
    let reference = model
        .monte_carlo_par(&sources, N_SAMPLES, MASTER_SEED, 1)
        .expect("1-thread run");
    assert_eq!(reference.delays.len(), N_SAMPLES);
    assert_eq!(reference.failures, 0, "{:?}", reference.first_error);
    for threads in [2usize, 8] {
        let run = model
            .monte_carlo_par(&sources, N_SAMPLES, MASTER_SEED, threads)
            .expect("parallel run");
        let ref_bits: Vec<u64> = reference.delays.iter().map(|d| d.to_bits()).collect();
        let run_bits: Vec<u64> = run.delays.iter().map(|d| d.to_bits()).collect();
        assert_eq!(run_bits, ref_bits, "delays diverged at {threads} threads");
        assert_eq!(
            run.summary.mean.to_bits(),
            reference.summary.mean.to_bits(),
            "summary mean diverged at {threads} threads"
        );
        assert_eq!(
            run.summary.std.to_bits(),
            reference.summary.std.to_bits(),
            "summary std diverged at {threads} threads"
        );
        assert_eq!(run.failed_indices, reference.failed_indices);
        assert_eq!(run.first_error, reference.first_error);
    }
}

#[test]
fn s27_parallel_agrees_exactly_with_serial_driver() {
    let model = s27_model();
    let sources = VariationSources::example3(0.33, 0.33);

    // Serial path through PathModel::monte_carlo with the same master seed.
    let mut rng = rng_from_seed(MASTER_SEED);
    let serial = model
        .monte_carlo(&sources, N_SAMPLES, &mut rng)
        .expect("serial run");
    let parallel = model
        .monte_carlo_par(&sources, N_SAMPLES, MASTER_SEED, 4)
        .expect("parallel run");

    let s_bits: Vec<u64> = serial.delays.iter().map(|d| d.to_bits()).collect();
    let p_bits: Vec<u64> = parallel.delays.iter().map(|d| d.to_bits()).collect();
    assert_eq!(p_bits, s_bits, "serial and parallel drivers disagree");
    assert_eq!(
        parallel.summary.mean.to_bits(),
        serial.summary.mean.to_bits()
    );
    assert_eq!(parallel.summary.std.to_bits(), serial.summary.std.to_bits());
}

#[test]
fn raw_drivers_agree_on_the_s27_workload() {
    // Same contract one layer down: the raw stats drivers over the exact
    // sample set drawn by the path model.
    let model = s27_model();
    let sources = VariationSources::example3(0.33, 0.33);
    let mut rng = rng_from_seed(MASTER_SEED);
    let samples = model.draw_samples(&sources, N_SAMPLES, &mut rng);

    let serial = monte_carlo(&samples, |s| model.evaluate_sample(s));
    for threads in [1usize, 2, 8] {
        let par = monte_carlo_par(&samples, threads, |s| model.evaluate_sample(s));
        let s_bits: Vec<u64> = serial.values.iter().map(|v| v.to_bits()).collect();
        let p_bits: Vec<u64> = par.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(p_bits, s_bits, "threads={threads}");
    }
}
