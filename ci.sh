#!/usr/bin/env sh
# Continuous-integration gate for the linvar workspace.
#
# Runs the full quality bar: release build, the complete test suite,
# clippy with warnings denied, formatting, and the parallel-determinism
# contract at two explicit worker counts (the suite's internal thread
# sweeps already cover 1/2/4/8; this re-checks the LINVAR_THREADS knob
# end-to-end).
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> determinism contract at LINVAR_THREADS=1 and LINVAR_THREADS=8"
LINVAR_THREADS=1 cargo test -q --test parallel_determinism
LINVAR_THREADS=8 cargo test -q --test parallel_determinism

echo "==> fault matrix (injected failures across the solver stack)"
cargo test -q --test fault_matrix
cargo test -q --test failure_injection

echo "==> sparse/dense solver equivalence (property battery + golden chains rows)"
cargo test -q -p linvar-numeric --test sparse_dense_equivalence
cargo test -q --test golden_chains

echo "==> durable campaigns (kill-and-resume determinism, corruption rejection)"
cargo test -q --test campaign_resume
cargo test -q -p linvar-stats --test checkpoint_corruption

echo "==> allocation audit (steady-state Monte-Carlo samples stay inside the alloc budget)"
cargo test -q --test alloc_audit

echo "==> golden fixtures (bit-exact hot-path numerics, pooled and allocating paths)"
cargo test -q --test golden_fixtures
LINVAR_WS_DISABLE=1 cargo test -q --test golden_fixtures

echo "==> no-panic smoke pass (examples must not panic)"
smoke_log=$(mktemp)
ckdir=$(mktemp -d)
trap 'rm -f "$smoke_log"; rm -rf "$ckdir"' EXIT
for ex in quickstart variational_rc reduce_deck; do
    echo "    example $ex"
    if ! RUST_BACKTRACE=1 LINVAR_THREADS=2 \
        cargo run --release -q --example "$ex" >"$smoke_log" 2>&1; then
        echo "example $ex failed:" >&2
        cat "$smoke_log" >&2
        exit 1
    fi
    if grep -q "panicked at" "$smoke_log"; then
        echo "example $ex panicked:" >&2
        cat "$smoke_log" >&2
        exit 1
    fi
done

echo "==> interrupted-resume smoke (table4 --quick, deadline + checkpoint + resume)"
# Clean reference: the deterministic 'mc' stat lines of an uninterrupted run.
LINVAR_THREADS=2 cargo run --release -q -p linvar-bench --bin table4 -- --quick \
    >"$ckdir/clean.out" 2>&1
grep '^mc ' "$ckdir/clean.out" >"$ckdir/clean.mc"
if ! [ -s "$ckdir/clean.mc" ]; then
    echo "clean table4 run printed no mc lines:" >&2
    cat "$ckdir/clean.out" >&2
    exit 1
fi
# Interrupted run: a 2-second budget must truncate gracefully (exit 0) and
# leave resumable snapshots behind.
if ! LINVAR_THREADS=2 cargo run --release -q -p linvar-bench --bin table4 -- --quick \
    --deadline 2 --checkpoint "$ckdir/t4" >"$ckdir/cut.out" 2>&1; then
    echo "deadline-truncated table4 run did not exit cleanly:" >&2
    cat "$ckdir/cut.out" >&2
    exit 1
fi
# Resume at a different worker count: final stats must be bitwise-identical
# to the uninterrupted reference.
LINVAR_THREADS=4 cargo run --release -q -p linvar-bench --bin table4 -- --quick \
    --resume "$ckdir/t4" --checkpoint "$ckdir/t4" >"$ckdir/resume.out" 2>&1
grep '^mc ' "$ckdir/resume.out" >"$ckdir/resume.mc"
if ! diff -u "$ckdir/clean.mc" "$ckdir/resume.mc"; then
    echo "resumed table4 stats differ from the uninterrupted run" >&2
    exit 1
fi

echo "==> corruption-rejection smoke (damaged snapshot must refuse, exit 3)"
ck=$(ls "$ckdir"/t4.*.ckpt | head -n 1)
printf 'X' | dd of="$ck" bs=1 seek=40 conv=notrunc 2>/dev/null
status=0
LINVAR_THREADS=2 cargo run --release -q -p linvar-bench --bin table4 -- --quick \
    --resume "$ckdir/t4" >"$ckdir/corrupt.out" 2>&1 || status=$?
if [ "$status" -ne 3 ]; then
    echo "corrupted snapshot was not rejected with exit 3 (got $status):" >&2
    cat "$ckdir/corrupt.out" >&2
    exit 1
fi

echo "==> metrics trajectory smoke (instrumented table4 --quick, same-seed counter diff)"
LINVAR_THREADS=2 cargo run --release -q -p linvar-bench --bin table4 -- --quick \
    --metrics "$ckdir/m1.json" >"$ckdir/m1.out" 2>&1
if ! [ -s BENCH_table4.json ] || ! [ -s "$ckdir/m1.json" ]; then
    echo "instrumented table4 run did not write its metrics reports" >&2
    cat "$ckdir/m1.out" >&2
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool BENCH_table4.json >/dev/null || {
        echo "BENCH_table4.json is not valid JSON" >&2
        exit 1
    }
fi
for key in '"bench"' '"counters"' '"gauges"' '"timers"' \
    '"phase.sample_eval.calls"' '"mc.samples_completed"' '"rung.' '"wall_seconds"'; do
    if ! grep -q "$key" BENCH_table4.json; then
        echo "BENCH_table4.json is missing required key $key" >&2
        exit 1
    fi
done
# Same seed at a different worker count: the deterministic counters
# section must be byte-identical (gauges/timers are run-dependent).
LINVAR_THREADS=4 cargo run --release -q -p linvar-bench --bin table4 -- --quick \
    --metrics "$ckdir/m2.json" >"$ckdir/m2.out" 2>&1
sed -n '/^  "counters": {$/,/^  },$/p' "$ckdir/m1.json" >"$ckdir/m1.counters"
sed -n '/^  "counters": {$/,/^  },$/p' "$ckdir/m2.json" >"$ckdir/m2.counters"
if ! [ -s "$ckdir/m1.counters" ]; then
    echo "could not extract the counters section from the metrics report" >&2
    exit 1
fi
if ! diff -u "$ckdir/m1.counters" "$ckdir/m2.counters"; then
    echo "metrics counters differ between same-seed runs at different thread counts" >&2
    exit 1
fi
# Workspace-arena contract: the allocating path (LINVAR_WS_DISABLE=1) at 1
# and 8 workers must reproduce the pooled counters byte-for-byte (ws.* live
# in the gauges section precisely because warm-up miss counts are
# scheduling-dependent).
for tc in 1 8; do
    LINVAR_THREADS=$tc LINVAR_WS_DISABLE=1 cargo run --release -q -p linvar-bench \
        --bin table4 -- --quick --metrics "$ckdir/m_ws$tc.json" >"$ckdir/m_ws$tc.out" 2>&1
    sed -n '/^  "counters": {$/,/^  },$/p' "$ckdir/m_ws$tc.json" >"$ckdir/m_ws$tc.counters"
    if ! diff -u "$ckdir/m1.counters" "$ckdir/m_ws$tc.counters"; then
        echo "counters differ between the pooled and allocating (LINVAR_WS_DISABLE=1) \
paths at $tc workers" >&2
        exit 1
    fi
done

echo "==> sparse solver smoke (chains --quick per backend, mc rows diffed)"
LINVAR_THREADS=2 LINVAR_SOLVER=dense cargo run --release -q -p linvar-bench \
    --bin chains -- --quick >"$ckdir/chains_dense.out" 2>&1
LINVAR_THREADS=2 LINVAR_SOLVER=sparse \
    LINVAR_TRAJECTORY=BENCH_trajectory.json LINVAR_TRAJECTORY_LABEL=ci-sparse-smoke \
    cargo run --release -q -p linvar-bench --bin chains -- --quick \
    >"$ckdir/chains_sparse.out" 2>&1
grep '^mc ' "$ckdir/chains_dense.out" >"$ckdir/chains_dense.mc"
grep '^mc ' "$ckdir/chains_sparse.out" >"$ckdir/chains_sparse.mc"
if ! [ -s "$ckdir/chains_dense.mc" ]; then
    echo "chains --quick (dense) printed no mc lines:" >&2
    cat "$ckdir/chains_dense.out" >&2
    exit 1
fi
if ! diff -u "$ckdir/chains_dense.mc" "$ckdir/chains_sparse.mc"; then
    echo "chains mc rows differ between the dense and sparse solver backends" >&2
    exit 1
fi
for key in '"phase.symbolic.calls"' '"phase.numeric_factor.calls"' '"phase.solve.calls"'; do
    if ! grep -q "$key" BENCH_chains.json; then
        echo "BENCH_chains.json is missing required key $key" >&2
        exit 1
    fi
done

echo "==> AC conformance (vROM H(jω) vs full-order sweeps) + complex solver properties"
cargo test -q --test ac_conformance
cargo test -q -p linvar-numeric --test complex_lu_properties

echo "==> AC campaign smoke (chains --quick --analysis ac per backend, mc rows diffed)"
LINVAR_THREADS=2 LINVAR_SOLVER=dense cargo run --release -q -p linvar-bench \
    --bin chains -- --quick --analysis ac >"$ckdir/ac_dense.out" 2>&1
LINVAR_THREADS=2 LINVAR_SOLVER=sparse cargo run --release -q -p linvar-bench \
    --bin chains -- --quick --analysis ac >"$ckdir/ac_sparse.out" 2>&1
grep '^mc ' "$ckdir/ac_dense.out" >"$ckdir/ac_dense.mc"
grep '^mc ' "$ckdir/ac_sparse.out" >"$ckdir/ac_sparse.mc"
if ! grep -q '\.ac:' "$ckdir/ac_dense.mc"; then
    echo "chains --analysis ac printed no .ac-named mc rows:" >&2
    cat "$ckdir/ac_dense.out" >&2
    exit 1
fi
if ! diff -u "$ckdir/ac_dense.mc" "$ckdir/ac_sparse.mc"; then
    echo "AC mc rows differ between the dense and sparse solver backends" >&2
    exit 1
fi
for key in '"ac.points_solved"' '"phase.ac_factor.calls"' '"phase.ac_solve.calls"'; do
    if ! grep -q "$key" BENCH_chains.json; then
        echo "BENCH_chains.json (AC run) is missing required key $key" >&2
        exit 1
    fi
done

echo "==> IR-drop smoke (acgrid --quick, both backends byte-diffed by the bin itself)"
LINVAR_THREADS=2 LINVAR_TRAJECTORY=BENCH_trajectory.json LINVAR_TRAJECTORY_LABEL=ci-ac-smoke \
    cargo run --release -q -p linvar-bench --bin acgrid -- --quick \
    >"$ckdir/acgrid.out" 2>&1 || {
    echo "acgrid --quick failed (backend mismatch or error):" >&2
    cat "$ckdir/acgrid.out" >&2
    exit 1
}
if ! grep -q '^mc grid' "$ckdir/acgrid.out"; then
    echo "acgrid --quick printed no mc rows:" >&2
    cat "$ckdir/acgrid.out" >&2
    exit 1
fi
for key in '"grid8x8.sparse.samples_per_sec"' '"grid8x8.dense.samples_per_sec"' \
    '"grid8x8.dim"' '"wall_seconds"'; do
    if ! grep -q "$key" BENCH_acgrid.json; then
        echo "BENCH_acgrid.json is missing required key $key" >&2
        exit 1
    fi
done

echo "==> spectral engine smoke (table4 --quick --engine gpc vs mc, moment budget + solves ratio)"
# The gpc run itself fails (non-zero exit) on a budget violation; the
# python pass below re-checks the recorded metrics independently and
# prints the solves-to-tolerance ratios for the log.
if ! LINVAR_THREADS=2 LINVAR_TRAJECTORY=BENCH_trajectory.json LINVAR_TRAJECTORY_LABEL=ci-gpc-smoke \
    cargo run --release -q -p linvar-bench --bin table4 -- --quick --engine gpc \
    >"$ckdir/gpc.out" 2>&1; then
    echo "table4 --engine gpc failed (budget violation or error):" >&2
    cat "$ckdir/gpc.out" >&2
    exit 1
fi
grep '^gpc ' "$ckdir/gpc.out" >"$ckdir/gpc.rows"
if ! [ -s "$ckdir/gpc.rows" ]; then
    echo "table4 --engine gpc printed no gpc rows:" >&2
    cat "$ckdir/gpc.out" >&2
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json, struct, sys

bench = json.load(open("BENCH_table4.json"))["bench"]
if bench.get("engine") != "gpc":
    sys.exit("BENCH_table4.json is not from the gpc engine run")
if not bench.get("all_within_budget"):
    sys.exit("gpc engine left the documented agreement budget")
bits = lambda s: struct.unpack(">d", bytes.fromhex(s))[0]
for tag, cfg in sorted(bench["configs"].items()):
    mc_mean, gpc_mean = bits(cfg["mc_mean_bits"]), bits(cfg["gpc_mean_bits"])
    rel = abs(gpc_mean - mc_mean) / abs(mc_mean)
    print(f"    gpc smoke {tag}: mean diff {rel:.2e}, solves ratio "
          f"{cfg['solves_ratio']:.2e} ({cfg['gpc_solves']} gpc vs "
          f"{cfg['mc_solves_to_tol']:.0f} MC solves to tolerance)")
    if not cfg["within_budget"]:
        sys.exit(f"{tag}: gpc vs mc moments out of budget")
    if cfg["solves_ratio"] > 0.1:
        sys.exit(f"{tag}: solves-to-tolerance ratio {cfg['solves_ratio']} > 0.1")
EOF
fi

echo "==> shard identity (sharded merge bitwise-equal to single-process, incl. faults)"
cargo test -q --test shard_identity

echo "==> shard smoke (table4 --quick at 1 vs 4 shards, one shard killed + resumed)"
# Unsharded reference rows come from the interrupted-resume smoke above
# ($ckdir/clean.mc). 1 supervised shard must reproduce them...
LINVAR_THREADS=2 cargo run --release -q -p linvar-bench --bin table4 -- --quick \
    --shards 1 >"$ckdir/shard1.out" 2>&1
grep '^mc ' "$ckdir/shard1.out" >"$ckdir/shard1.mc"
if ! diff -u "$ckdir/clean.mc" "$ckdir/shard1.mc"; then
    echo "table4 mc rows differ between unsharded and --shards 1" >&2
    exit 1
fi
# ...and so must 4 shards with shard 1 killed mid-checkpoint-write on its
# first attempt: the supervisor retries it from its own snapshot and the
# merged rows stay byte-identical.
if ! LINVAR_THREADS=2 LINVAR_SHARD_FAULT=1:killmid \
    cargo run --release -q -p linvar-bench --bin table4 -- --quick \
    --shards 4 --checkpoint "$ckdir/sh4" >"$ckdir/shard4.out" 2>&1; then
    echo "fault-injected sharded table4 run did not exit cleanly:" >&2
    cat "$ckdir/shard4.out" >&2
    exit 1
fi
grep '^mc ' "$ckdir/shard4.out" >"$ckdir/shard4.mc"
if ! diff -u "$ckdir/clean.mc" "$ckdir/shard4.mc"; then
    echo "table4 mc rows differ after a shard kill + supervised resume" >&2
    exit 1
fi

echo "==> perf smoke (table4 --quick at 1 thread, appended to the bench trajectory)"
LINVAR_THREADS=1 LINVAR_TRAJECTORY=BENCH_trajectory.json LINVAR_TRAJECTORY_LABEL=ci-perf-smoke \
    cargo run --release -q -p linvar-bench --bin table4 -- --quick >"$ckdir/perf.out" 2>&1
if command -v python3 >/dev/null 2>&1; then
    # Compare the fresh entry against the previous comparable one (same bin,
    # quick flag, and worker count); >10% samples/sec regression fails CI.
    python3 - <<'EOF'
import json, sys

entries = json.load(open("BENCH_trajectory.json"))
comparable = [
    e for e in entries
    if e.get("bin") == "table4" and e.get("quick")
    and "mc.samples_per_sec" in e and e.get("threads", 1) == 1
]
if len(comparable) < 2:
    sys.exit(0)
prev, cur = comparable[-2], comparable[-1]
ratio = cur["mc.samples_per_sec"] / prev["mc.samples_per_sec"]
print(f"perf smoke: {cur['mc.samples_per_sec']:.2f} samples/sec vs "
      f"{prev['mc.samples_per_sec']:.2f} previously ({ratio:.2f}x, "
      f"{prev.get('label', '?')} -> {cur.get('label', '?')})")
if ratio < 0.9:
    sys.exit("samples/sec regressed by more than 10% against the previous "
             "comparable trajectory entry")
EOF
else
    echo "    (python3 unavailable; trajectory appended, regression check skipped)"
fi

echo "==> campaign-service smoke (kill -9 mid-campaign + restart, byte-identical result)"
SB=target/release/serve
serve_wait_up() {
    i=0
    while ! "$SB" health --addr "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 60 ]; then
            echo "campaign server at $1 never became healthy" >&2
            return 1
        fi
        sleep 0.25
    done
}
# Reference: the same campaign through an uninterrupted server.
"$SB" serve --addr 127.0.0.1:17441 --jobs-dir "$ckdir/serve-ref" \
    >"$ckdir/serve_ref.log" 2>&1 &
serve_ref_pid=$!
serve_wait_up 127.0.0.1:17441
ref_job=$("$SB" submit --addr 127.0.0.1:17441 --model demo-slow --n 40 --seed 7 \
    2>/dev/null)
"$SB" wait --addr 127.0.0.1:17441 --job "$ref_job" --timeout-secs 120 \
    >"$ckdir/serve_ref.mc"
"$SB" shutdown --addr 127.0.0.1:17441 >/dev/null
wait "$serve_ref_pid" || {
    echo "graceful shutdown of the reference campaign server did not exit 0" >&2
    cat "$ckdir/serve_ref.log" >&2
    exit 1
}
# Interrupted: kill -9 the server mid-campaign, restart on the same job
# store, and let the recovery scan resume the job from its checkpoint.
"$SB" serve --addr 127.0.0.1:17442 --jobs-dir "$ckdir/serve-kill" \
    >"$ckdir/serve_kill1.log" 2>&1 &
serve_kill_pid=$!
serve_wait_up 127.0.0.1:17442
kill_job=$("$SB" submit --addr 127.0.0.1:17442 --model demo-slow --n 40 --seed 7 \
    2>/dev/null)
sleep 1
kill -9 "$serve_kill_pid"
wait "$serve_kill_pid" 2>/dev/null || true
"$SB" serve --addr 127.0.0.1:17442 --jobs-dir "$ckdir/serve-kill" \
    >"$ckdir/serve_kill2.log" 2>&1 &
serve_kill2_pid=$!
serve_wait_up 127.0.0.1:17442
"$SB" wait --addr 127.0.0.1:17442 --job "$kill_job" --timeout-secs 120 \
    >"$ckdir/serve_kill.mc"
"$SB" shutdown --addr 127.0.0.1:17442 >/dev/null
wait "$serve_kill2_pid" || true
if ! diff -u "$ckdir/serve_ref.mc" "$ckdir/serve_kill.mc"; then
    echo "campaign-service result differs after kill -9 + restart" >&2
    exit 1
fi
if ! grep -q "recovery scan: requeued 1 job" "$ckdir/serve_kill2.log"; then
    echo "restarted campaign server did not report a recovery scan:" >&2
    cat "$ckdir/serve_kill2.log" >&2
    exit 1
fi

echo "==> campaign-service overload smoke (queue depth 1 sheds with 429)"
"$SB" serve --addr 127.0.0.1:17443 --jobs-dir "$ckdir/serve-shed" \
    --workers 1 --queue 1 >"$ckdir/serve_shed.log" 2>&1 &
serve_shed_pid=$!
serve_wait_up 127.0.0.1:17443
"$SB" submit --addr 127.0.0.1:17443 --model demo-slow --n 400 --seed 1 >/dev/null 2>&1
"$SB" submit --addr 127.0.0.1:17443 --model demo-slow --n 400 --seed 2 >/dev/null 2>&1
shed_status=0
"$SB" submit --addr 127.0.0.1:17443 --model demo-slow --n 400 --seed 3 \
    >/dev/null 2>"$ckdir/serve_shed.err" || shed_status=$?
if [ "$shed_status" -eq 0 ] || ! grep -q "429" "$ckdir/serve_shed.err"; then
    echo "full queue did not shed with 429:" >&2
    cat "$ckdir/serve_shed.err" >&2
    exit 1
fi
"$SB" health --addr 127.0.0.1:17443 >/dev/null
"$SB" shutdown --addr 127.0.0.1:17443 >/dev/null
wait "$serve_shed_pid" || true

echo "==> campaign-service load generator (latency percentiles + shed counts)"
LINVAR_TRAJECTORY=BENCH_trajectory.json LINVAR_TRAJECTORY_LABEL=serve-loadgen \
    cargo run --release -q -p linvar-bench --bin loadgen -- --quick \
    >"$ckdir/loadgen.out" 2>&1 || {
    echo "loadgen failed:" >&2
    cat "$ckdir/loadgen.out" >&2
    exit 1
}
for key in '"loadgen.p50_ms"' '"loadgen.p95_ms"' '"loadgen.p99_ms"' \
    '"loadgen.throughput_jobs_per_sec"' '"overload.shed_429"' '"serve.requests"'; do
    if ! grep -q "$key" BENCH_serve.json; then
        echo "BENCH_serve.json is missing required key $key" >&2
        exit 1
    fi
done

echo "==> ci green"
