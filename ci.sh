#!/usr/bin/env sh
# Continuous-integration gate for the linvar workspace.
#
# Runs the full quality bar: release build, the complete test suite,
# clippy with warnings denied, formatting, and the parallel-determinism
# contract at two explicit worker counts (the suite's internal thread
# sweeps already cover 1/2/4/8; this re-checks the LINVAR_THREADS knob
# end-to-end).
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> determinism contract at LINVAR_THREADS=1 and LINVAR_THREADS=8"
LINVAR_THREADS=1 cargo test -q --test parallel_determinism
LINVAR_THREADS=8 cargo test -q --test parallel_determinism

echo "==> fault matrix (injected failures across the solver stack)"
cargo test -q --test fault_matrix
cargo test -q --test failure_injection

echo "==> no-panic smoke pass (examples must not panic)"
smoke_log=$(mktemp)
trap 'rm -f "$smoke_log"' EXIT
for ex in quickstart variational_rc reduce_deck; do
    echo "    example $ex"
    if ! RUST_BACKTRACE=1 LINVAR_THREADS=2 \
        cargo run --release -q --example "$ex" >"$smoke_log" 2>&1; then
        echo "example $ex failed:" >&2
        cat "$smoke_log" >&2
        exit 1
    fi
    if grep -q "panicked at" "$smoke_log"; then
        echo "example $ex panicked:" >&2
        cat "$smoke_log" >&2
        exit 1
    fi
done

echo "==> ci green"
