//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], and the `prop_assert*`
//! macros.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. Inputs are drawn from a generator seeded by a hash of the
//! test name, so every run of a given test exercises the same case
//! sequence — failures are reproducible by construction, and the failing
//! inputs are printed verbatim before the panic propagates.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The deterministic generator handed to strategies.
pub type TestRng = StdRng;

/// Creates the case generator for a named test: seeded by an FNV-1a hash
/// of the test name, so each test has an independent but fixed stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Run-time configuration of a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it with `f`,
    /// and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.random::<u64>() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.random::<u64>() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random::<u64>()
    }
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// A `Vec` of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` random
/// inputs, printing the failing inputs if a case panics.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                let described: Vec<String> =
                    vec![$( format!("{} = {:?}", stringify!($arg), &$arg) ),*];
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs [{}]",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        described.join(", "),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_has_requested_len(v in prop::collection::vec(0.0f64..1.0, 9)) {
            prop_assert_eq!(v.len(), 9);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn map_and_flat_map_compose(
            w in (2usize..6).prop_flat_map(|n| {
                prop::collection::vec(0.0f64..1.0, n).prop_map(|v| (v.len(), v))
            }),
        ) {
            let (n, v) = w;
            prop_assert_eq!(n, v.len());
            prop_assert!((2..6).contains(&n));
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }
}
