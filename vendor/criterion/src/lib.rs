//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion it uses: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], `bench_function`/`bench_with_input`,
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Measurement is deliberately simple: after one warm-up call, each sample
//! times a batch of iterations sized so a batch takes at least ~1 ms, and
//! the per-iteration min / mean / max over the samples are printed. No
//! statistical outlier analysis, no plots — stable wall-clock numbers good
//! enough for before/after comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration duration of each sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Benchmarks `f`, storing per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch costs at least ~1 ms, so short closures are not dominated
        // by timer resolution.
        let mut batch = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
    );
}

/// A compound benchmark identifier, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&id.id, &b.samples);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Benchmarks a function with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 25).id, "f/25");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains("s"));
    }
}
