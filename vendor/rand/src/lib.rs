//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the narrow slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], here xoshiro256++ seeded by
//! SplitMix64), the [`SeedableRng`] constructor trait, and the [`RngExt`]
//! convenience methods (`random`, `random_range`, `random_bool`).
//!
//! Determinism is the contract that matters to `linvar`: the same seed must
//! produce the same stream on every platform and at every optimization
//! level, forever. Owning the generator means no upstream algorithm change
//! can silently invalidate recorded experiment tables.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — the canonical 64-bit seed mixer (Steele et al., "Fast
/// splittable pseudorandom number generators"). Used both to expand seeds
/// into xoshiro state and by callers that need to derive independent
/// sub-seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
    /// Small state, excellent statistical quality, and — unlike the real
    /// `rand::rngs::StdRng` — a stream we fully control.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through SplitMix64 as the xoshiro authors
            // recommend; guards against the all-zero state.
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a generator.
pub trait Random {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u64 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform integer can be drawn from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws uniformly from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply range reduction (Lemire); the bias at 64-bit word
    // width is < n/2^64, far below anything observable in our sample sizes,
    // and the mapping is deterministic, which is the property we need.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + uniform_below(rng, (hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

/// Convenience drawing methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws a value of type `T` uniformly.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams nearly identical: {same} collisions");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..=4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..20_000).map(|_| rng.random::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
